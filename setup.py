"""Legacy setup shim.

This environment has no network and no `wheel` package, so PEP 517 editable
installs fail; `pip install -e . --no-build-isolation --no-use-pep517` (or
plain `pip install -e .` where wheel is available) uses this shim instead.
"""

from setuptools import setup

setup()
