"""ULFM-style membership agreement: revoke, agree, shrink.

When the :class:`~repro.faults.detector.FailureDetector` suspects a rank,
survivors must converge on *one* failed set before repair can be consistent
— ULFM's ``MPI_Comm_agree`` + ``MPI_Comm_shrink`` pair. This module models
that protocol as engine events:

1. **coalesce** — suspicions raised within a ``grace`` window fold into one
   agreement round (a failure seldom travels alone);
2. **collect** — the leader (lowest-ranked survivor) circulates a token
   around the survivor ring; every hop merges locally-known suspicions, and
   a hop that goes unacknowledged *adds the silent rank to the failed set*
   (agreement doubles as detection, exactly ULFM's behaviour);
3. **distribute** — a second ring pass carries the agreed set back out, and
   the commit installs a new :class:`SurvivorView` with a bumped epoch.

Every decision derives from engine order plus sorted sets — no RNG — so a
seeded fault plan yields a byte-identical sequence of committed views,
which is what the CI determinism check asserts across worker counts.

Simplifications (documented in DESIGN.md S20): the walk survives a leader
death (the token logic is engine-driven, not hosted on the leader's CPU),
with an engine-level watchdog as the safety net for a stalled round; and
per-rank commit *observation* is dispatched at global commit time on each
survivor's own CPU, so a dead rank still never observes a view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.mpi.runtime import MpiWorld


@dataclass(frozen=True)
class SurvivorView:
    """One agreed membership epoch: who is out, who remains."""

    epoch: int
    failed: frozenset[int]
    members: tuple[int, ...]

    def describe(self) -> str:
        return (
            f"epoch={self.epoch} failed={sorted(self.failed)} "
            f"members={len(self.members)}"
        )


# -- pure transition functions -------------------------------------------------
#
# The agreement round, stripped of engine events: the live protocol below
# drives these same functions from timers and control messages, and the
# schedule model checker (repro.verify) steps them directly to prove the
# membership transition system converges for every symbolic kill — no live
# world required.


def merge_suspicions(
    known: frozenset[int], pending: Iterable[int]
) -> frozenset[int]:
    """The failed set a round proposes: already-agreed dead + new suspects."""
    return known | frozenset(pending)


def ring_walk(
    members: Iterable[int],
    proposed: frozenset[int],
    responsive: Iterable[int],
) -> frozenset[int]:
    """The failed set after collect + distribute ring passes.

    The token visits every proposed-live member in ring order twice; a hop
    that goes unanswered (the member is not in ``responsive``) adds that
    member to the failed set mid-walk — agreement doubles as detection,
    exactly the live protocol's silent-hop rule.
    """
    failed = set(proposed)
    alive = set(responsive)
    for _phase in ("collect", "distribute"):
        for hop in members:
            if hop in failed:
                continue
            if hop not in alive:
                failed.add(hop)
    return frozenset(failed)


def agreed_view(
    view: SurvivorView, failed: Iterable[int], nranks: int
) -> SurvivorView:
    """The committed next epoch: bumped counter, survivors = rest."""
    agreed = frozenset(failed)
    return SurvivorView(
        epoch=view.epoch + 1,
        failed=agreed,
        members=tuple(r for r in range(nranks) if r not in agreed),
    )


def has_quorum(failed: Iterable[int], nranks: int) -> bool:
    """True when the survivors of ``failed`` form a strict majority.

    The split-brain gate: during a partition each side's agreement round
    proposes the *other* side as failed, and only the side whose survivor
    count exceeds ``nranks // 2`` may commit. A minority (or an even split)
    parks in ``awaiting-quorum`` instead — it cannot distinguish "everyone
    else died" from "I am cut off", so safety wins over liveness.
    """
    return 2 * (nranks - len(frozenset(failed))) > nranks


def quorum_commit(
    view: SurvivorView, proposed_failed: Iterable[int], nranks: int
) -> Optional[SurvivorView]:
    """The committed next epoch, or ``None`` when quorum is not reached."""
    failed = frozenset(proposed_failed)
    if not has_quorum(failed, nranks):
        return None
    return agreed_view(view, failed, nranks)


def reconcile_views(a: SurvivorView, b: SurvivorView) -> SurvivorView:
    """Heal-time merge: the higher committed epoch wins (epoch precedence).

    The quorum gate guarantees at most one side committed any given epoch,
    so precedence is well-defined: the minority side (which parked) adopts
    the majority's committed epochs, and its stale in-flight completions
    die on the existing epoch guards.
    """
    return a if a.epoch >= b.epoch else b


class MembershipService:
    """Drives agreement rounds over a world's ranks.

    Subscribers receive each committed :class:`SurvivorView`. A subscriber
    registered with a ``rank`` observes commits as work on that rank's CPU
    (a dead rank never observes; a noisy one observes late); a global
    subscriber (``rank=None``) observes via a zero-delay engine event at
    commit time.
    """

    def __init__(
        self,
        world: MpiWorld,
        grace: float = 5e-4,
        hop_timeout: float = 2e-3,
    ):
        self.world = world
        self.grace = grace
        self.hop_timeout = hop_timeout
        self.view = SurvivorView(0, frozenset(), tuple(range(world.nranks)))
        #: Determinism contract: ``(time, kind, detail)`` like the injector's.
        self.timeline: list[tuple[float, str, str]] = []
        #: ``(first_suspect_time, commit_time)`` per committed epoch — the
        #: obs layer's time-to-repair metric reads this.
        self.repair_times: list[tuple[float, float]] = []
        self.rounds_run = 0
        #: Split-brain gate state: True while a proposed view lacks a
        #: survivor majority and the commit is parked (DESIGN.md S22).
        self.awaiting_quorum = False
        self.quorum_parks = 0
        self._pending: set[int] = set()
        self._round_active = False
        self._round_timer = None
        self._watchdog = None
        self._first_suspect_t: Optional[float] = None
        self._subs: list[tuple[Callable[[SurvivorView], None], Optional[int]]] = []
        #: View dispatches that could not cross an active partition; flushed
        #: (latest epoch only) at heal time.
        self._deferred: list[
            tuple[Callable[[SurvivorView], None], Optional[int], SurvivorView]
        ] = []
        world.membership = self
        world.subscribe_failures(self._on_suspect, alive_fn=self._on_retract)

    # -- subscription ---------------------------------------------------------

    def subscribe(
        self, fn: Callable[[SurvivorView], None], rank: Optional[int] = None
    ) -> None:
        self._subs.append((fn, rank))
        if self.view.epoch > 0:
            # Late subscriber: replay the current view (same reasoning as the
            # failure detector's replay — a collective launched after a
            # shrink must still learn of it).
            self._dispatch_one(fn, rank, self.view)

    def _dispatch_one(
        self, fn: Callable[[SurvivorView], None], rank: Optional[int],
        view: SurvivorView,
    ) -> None:
        if rank is not None and self._severed_from_leader(view, rank):
            # The commit cannot reach this rank across an active partition;
            # it adopts the (latest) committed epoch at heal time instead.
            self._deferred.append((fn, rank, view))
            return
        if rank is None:
            self.world.engine.call_after(0.0, fn, view)
        else:
            self.world.ranks[rank].cpu.when_available(fn, view)

    def _severed_from_leader(self, view: SurvivorView, rank: int) -> bool:
        faults = getattr(self.world.fabric, "faults", None)
        if faults is None or not view.members:
            return False
        leader = view.members[0]
        if leader == rank:
            return False
        return faults.severed(leader, rank)

    # -- suspicion intake -----------------------------------------------------

    def _on_suspect(self, rank: int) -> None:
        if rank in self.view.failed or rank in self._pending:
            return
        self._pending.add(rank)
        now = self.world.engine.now
        if self._first_suspect_t is None:
            self._first_suspect_t = now
        self.timeline.append((now, "suspect", f"rank {rank}"))
        if not self._round_active and self._round_timer is None:
            self._round_timer = self.world.engine.call_after(
                self.grace, self._start_round
            )

    def _on_retract(self, rank: int) -> None:
        """The detector un-suspected ``rank``: liveness evidence returned."""
        now = self.world.engine.now
        if rank in self._pending:
            self._pending.discard(rank)
            self.timeline.append((now, "retract", f"rank {rank} alive again"))
            if not self._pending:
                self._first_suspect_t = None
                if self.awaiting_quorum:
                    # Every suspicion that starved us of quorum evaporated;
                    # the parked proposal is void and no epoch was burned.
                    self.awaiting_quorum = False
                    self.timeline.append(
                        (now, "quorum-clear", "all suspicions retracted")
                    )
            return
        if rank in self.view.failed:
            # The rank returned *after* an epoch committed without it.
            # Committed epochs are permanent (the epoch guards already
            # discarded its stale work); re-admission is a future epoch's
            # business, so just note the late arrival.
            self.timeline.append(
                (now, "stale-alive",
                 f"rank {rank} returned after epoch {self.view.epoch} "
                 f"excluded it")
            )

    def on_heal(self) -> None:
        """A partition healed: reconcile parked state across the old cut.

        Deferred view dispatches flush — each parked subscriber adopts only
        the *latest* committed epoch it missed (epoch precedence; earlier
        parked epochs are superseded and their in-flight completions die on
        the epoch guards). If suspicions are still pending (e.g. a round
        parked awaiting quorum), a fresh round is scheduled: post-heal
        evidence retracts the false ones and the rest re-propose.

        Ranks a committed epoch declared failed that turn out to be
        ground-truth alive are *evicted* (the heal-after-deadline fall
        through to the kill path): committed epochs are permanent, so the
        stragglers terminate rather than rejoin — exactly what a ULFM shrink
        does to a process the agreement wrote off. Each eviction is a false
        kill the adaptive detector could not prevent (the partition outlived
        the failure deadline), counted as such.
        """
        now = self.world.engine.now
        evicted = [
            r for r in sorted(self.view.failed)
            if r not in self.world.failed_ranks
        ]
        for r in evicted:
            self.timeline.append(
                (now, "evict",
                 f"rank {r} alive but excluded by epoch {self.view.epoch}; "
                 f"terminated")
            )
            self.world.kill_rank(r)
            detector = self.world.failure_detector
            if detector is not None:
                detector.false_kills += 1
        deferred, self._deferred = self._deferred, []
        if deferred:
            best: dict[tuple[int, Optional[int]],
                       tuple[Callable[[SurvivorView], None], Optional[int],
                             SurvivorView]] = {}
            for fn, rank, view in deferred:
                key = (id(fn), rank)
                if key not in best or view.epoch > best[key][2].epoch:
                    best[key] = (fn, rank, view)
            for fn, rank, view in best.values():
                self.timeline.append(
                    (now, "reconcile",
                     f"rank {rank} adopts epoch {view.epoch}")
                )
                self._dispatch_one(fn, rank, view)
        if self._pending and self._round_timer is None \
                and not self._round_active:
            self._round_timer = self.world.engine.call_after(
                self.grace, self._start_round
            )

    # -- agreement round ------------------------------------------------------

    def _start_round(self) -> None:
        self._round_timer = None
        if self._round_active or not self._pending:
            return
        self._round_active = True
        self.rounds_run += 1
        proposed = set(merge_suspicions(self.view.failed, self._pending))
        live = [r for r in self.view.members if r not in proposed]
        token = {"failed": proposed}
        self.timeline.append(
            (self.world.engine.now, "round",
             f"#{self.rounds_run} proposing {sorted(proposed)}")
        )
        if not live:
            # No survivors to agree among; commit the ground truth directly.
            self._commit(token)
            return
        budget = self.hop_timeout * (2 * len(live) + 4)
        self._watchdog = self.world.engine.call_after(
            budget, self._watchdog_fired
        )
        self._walk(live, 1, token, "collect")

    def _walk(self, ring: list, idx: int, token: dict, phase: str) -> None:
        """Deliver the token to ``ring[idx]``; a silent hop marks it failed."""
        if not self._round_active:
            return  # the watchdog abandoned this round
        if idx >= len(ring):
            if phase == "collect":
                live = [r for r in ring if r not in token["failed"]]
                self._walk(live, 1, token, "distribute")
            else:
                self._commit(token)
            return
        dst = ring[idx]
        if dst in token["failed"]:
            self._walk(ring, idx + 1, token, phase)
            return
        src = ring[idx - 1]
        settled = {"done": False}
        world = self.world

        def process() -> None:
            if settled["done"] or not self._round_active:
                return
            settled["done"] = True
            timer.cancel()
            if phase == "collect":
                # Merge this rank's local suspicions into the token.
                token["failed"] |= {
                    r for r in self._pending if r not in token["failed"]
                }
            self._walk(ring, idx + 1, token, phase)

        def on_arrive() -> None:
            rt = world.ranks[dst]
            if not rt.alive:
                return  # the timeout declares it
            rt.cpu.execute(rt._o, process)

        def on_timeout() -> None:
            if settled["done"] or not self._round_active:
                return
            settled["done"] = True
            token["failed"].add(dst)
            self.timeline.append(
                (world.engine.now, "silent",
                 f"rank {dst} unresponsive during {phase}")
            )
            self._walk(ring, idx + 1, token, phase)

        world.fabric.start_control(
            src, dst, world.config.control_bytes, on_arrive
        )
        timer = world.engine.call_after(self.hop_timeout, on_timeout)

    def _watchdog_fired(self) -> None:
        if not self._round_active:
            return
        self._watchdog = None
        self._round_active = False
        self.timeline.append(
            (self.world.engine.now, "watchdog", "round stalled; restarting")
        )
        self._round_timer = self.world.engine.call_after(
            self.grace, self._start_round
        )

    def _commit(self, token: dict) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        failed = frozenset(token["failed"])
        now_t = self.world.engine.now
        maybe_view = quorum_commit(self.view, failed, self.world.nranks)
        if maybe_view is None:
            # Split-brain gate: the survivors of this proposal are not a
            # strict majority. Park instead of burning an epoch — a minority
            # partition must never install a view the majority side could
            # also install. Pending suspicions are kept: retraction (heal)
            # drains the false ones; on_heal re-rounds for any real deaths.
            self.awaiting_quorum = True
            self.quorum_parks += 1
            self._round_active = False
            self.timeline.append(
                (now_t, "awaiting-quorum",
                 f"proposed failed={sorted(failed)} leaves "
                 f"{self.world.nranks - len(failed)}/{self.world.nranks} "
                 f"survivors; commit parked")
            )
            return
        self.awaiting_quorum = False
        view = maybe_view
        self.view = view
        now = self.world.engine.now
        self.timeline.append((now, "commit", view.describe()))
        if self._first_suspect_t is not None:
            self.repair_times.append((self._first_suspect_t, now))
            obs = self.world.obs
            if obs is not None:
                # One span per repair on a dedicated track: suspicion to
                # commit, labelled with the agreed set (Chrome trace shows
                # time-to-repair as a bar above the rank tracks).
                obs.add(
                    "recovery",
                    f"repair epoch {view.epoch}: failed={sorted(failed)}",
                    ("recovery", "membership"),
                    self._first_suspect_t,
                    now,
                )
                obs.count("membership_commits")
        self._first_suspect_t = None
        self._round_active = False
        self._pending -= set(failed)
        for fn, rank in list(self._subs):
            if rank is not None and rank in failed:
                continue  # dead subscribers never observe the shrink
            self._dispatch_one(fn, rank, view)
        if self._pending and self._round_timer is None:
            # Suspicions raised after the collect pass sampled them.
            self._round_timer = self.world.engine.call_after(
                self.grace, self._start_round
            )

    # -- metrics surface ------------------------------------------------------

    def time_to_repair(self) -> Optional[float]:
        """Worst suspect-to-commit latency across committed epochs."""
        if not self.repair_times:
            return None
        return max(t1 - t0 for t0, t1 in self.repair_times)


def ensure_membership(world: MpiWorld, **kwargs) -> MembershipService:
    """The world's membership service, creating one on first use."""
    existing = getattr(world, "membership", None)
    if existing is not None:
        return existing
    return MembershipService(world, **kwargs)
