"""Epoch-restart recovery: shrink, re-graft, relaunch.

Aggregation collectives cannot always be repaired *in place*: a reduce fold
is not invertible (a dead rank's partial may already be mixed into an
ancestor's accumulator), and a gather adopter that already forwarded its
subtree range upward cannot retroactively splice an orphan's block in. For
these, ULFM's recipe is shrink-and-retry: agree on the failed set
(:mod:`repro.recovery.membership`), rebuild the communication structure
over the survivors, and run the collective again at a bumped epoch.

:class:`EpochRestart` drives that loop for one collective launch:

* **attempt 0** is the original algorithm on the original context — the
  fault-free path is byte-identical to a non-recovering launch;
* each committed :class:`~repro.recovery.membership.SurvivorView` relaunches
  the collective among the survivors on a *fresh* context (fresh tag block,
  so stale attempts can never cross-match) with the original tree re-grafted
  around the dead (:func:`repro.trees.regraft.regraft_tree`);
* stale attempts are never cancelled — their completions are discarded by an
  epoch check, their pending traffic quiesces on its own (rendezvous into a
  corpse is abandoned by the reliable transport, eager into a corpse is
  dropped at arrival);
* a survivor that completed an earlier attempt is *re-marked* with the newer
  attempt's time and payload, so the outer handle always reflects the
  highest committed epoch.

Ring collectives (allgather, reduce-scatter) have no tree to re-graft;
their restart attempts run the survivor-ring variants defined here, which
ring over the member subset while keeping the original P-way block layout
(dead-origin blocks zero-filled / dropped from the fold).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.collectives.base import (
    CollectiveContext,
    CollectiveHandle,
    new_handle,
)
from repro.recovery.membership import SurvivorView, ensure_membership
from repro.trees.regraft import regraft_tree


def _block_ranges(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    base, rem = divmod(nbytes, nparts)
    out, off = [], 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


class EpochRestart:
    """Drives shrink-and-retry recovery for one collective launch.

    ``launch0(ctx)`` runs attempt 0 (the unmodified algorithm);
    ``relaunch(ctx_e, members)`` runs an epoch-``e`` attempt among the
    survivor ``members`` (sorted local ranks) on a fresh context whose tree,
    if any, is the original re-grafted around the agreed-dead ranks.
    ``root_required`` collectives (reduce, gather, allreduce — results
    funnel through ``ctx.root``) are unrecoverable if the root itself dies:
    the driver notes it and excuses the incomplete survivors instead of
    restarting.
    """

    def __init__(
        self,
        ctx: CollectiveContext,
        name: str,
        launch0: Callable[[CollectiveContext], CollectiveHandle],
        relaunch: Callable[[CollectiveContext, list], CollectiveHandle],
        root_required: bool = True,
    ):
        self.ctx = ctx
        self.handle = new_handle(ctx, name)
        self.relaunch = relaunch
        self.root_required = root_required
        #: Epoch whose attempt's completions currently feed the outer handle.
        self.epoch = 0
        self._seen_epoch = 0
        self.attempts = 1
        ms = ensure_membership(ctx.world)
        self.membership = ms
        self._wire(launch0(ctx), 0)
        ms.subscribe(self._on_view)

    # -- attempt plumbing -----------------------------------------------------

    def _wire(self, inner: CollectiveHandle, epoch: int) -> None:
        def forward(local: int, t: float) -> None:
            self._attempt_done(epoch, local, t, inner)

        inner.on_rank_done.append(forward)
        for local, t in list(inner.done_time.items()):
            forward(local, t)

    def _attempt_done(
        self, epoch: int, local: int, t: float, inner: CollectiveHandle
    ) -> None:
        if epoch != self.epoch:
            return  # a stale attempt limping to completion
        out = inner.output.get(local)
        h = self.handle
        if local in h.done_time:
            # Re-mark: the survivor completed an earlier attempt too; the
            # newer epoch's result supersedes it (span callbacks already
            # fired once — not repeated).
            h.done_time[local] = t
            if out is not None:
                h.output[local] = out
        else:
            h.mark_done(local, t, out)

    # -- view handling --------------------------------------------------------

    def _on_view(self, view: SurvivorView) -> None:
        if view.epoch <= self._seen_epoch:
            return
        self._seen_epoch = view.epoch
        ctx = self.ctx
        comm = ctx.comm
        failed_locals = {
            comm.local_rank(w) for w in view.failed if w in comm
        }
        h = self.handle
        rep = h.report
        rep.degraded = True
        rep.failed_ranks |= failed_locals
        rep.agreed_failed = set(failed_locals)
        rep.epoch = view.epoch
        for dead in sorted(failed_locals):
            h.excuse(dead)
        if self.root_required and ctx.root in failed_locals:
            rep.note(
                f"root {ctx.root} failed: result unrecoverable, no restart"
            )
            for local in range(comm.size):
                if local not in h.done_time:
                    h.excuse(local)
            self.epoch = view.epoch
            return
        members = sorted(set(range(comm.size)) - failed_locals)
        if not members:
            self.epoch = view.epoch
            return
        rep.note(
            f"epoch {view.epoch}: restarting among {len(members)} survivors"
        )
        self.epoch = view.epoch
        self.attempts += 1
        self._wire(self.relaunch(self._make_ctx(failed_locals), members),
                   view.epoch)

    def _make_ctx(self, failed_locals: set) -> CollectiveContext:
        ctx = self.ctx
        tree_e = None
        if ctx.tree is not None:
            tree_e = regraft_tree(ctx.tree, failed_locals).survivor
        return CollectiveContext(
            ctx.comm, ctx.root, ctx.nbytes, ctx.config, tree=tree_e,
            data=ctx.data, op=ctx.op, reduce_on_gpu=ctx.reduce_on_gpu,
            host_staging=set(ctx.host_staging),
        )


# -- survivor-ring restart variants -----------------------------------------


def allgather_ring_members(
    ctx: CollectiveContext, members: list
) -> CollectiveHandle:
    """Ring allgather over a survivor subset.

    Keeps the original P-way block layout: member m contributes
    ``ctx.data[m]`` (block m); every member ends with the full ``nbytes``
    buffer, dead-origin blocks zero-filled. Blocks travel the survivor ring
    tagged by origin rank — each origin crosses each edge at most once, so
    ``base + origin`` is collision-free per (src, dst) pair.
    """
    comm = ctx.comm
    P = comm.size
    K = len(members)
    handle = new_handle(ctx, "allgather-ring-members")
    blocks = _block_ranges(ctx.nbytes, P)
    base_tag = ctx.world.allocate_tags(P)
    member_set = set(members)

    if K == 1:
        local = members[0]
        out = _zero_filled(ctx, blocks, {local: _own_block(ctx, local)}, P)
        handle.mark_done(local, ctx.world.engine.now, out)
        return handle

    def start_rank(pos: int) -> None:
        local = members[pos]
        right = members[(pos + 1) % K]
        left = members[(pos - 1) % K]
        have: dict[int, Any] = {local: _own_block(ctx, local)}
        state = {"collected": 1, "sends_done": 0}

        def maybe_done() -> None:
            if state["collected"] == K and state["sends_done"] == K - 1:
                out = _zero_filled(ctx, blocks, have, P)
                handle.mark_done(local, ctx.world.engine.now, out)

        def send_block(origin: int) -> None:
            req = ctx.isend(
                local, right, base_tag + origin, blocks[origin][1],
                have.get(origin),
            )
            req.add_callback(lambda r: (_sent(), None)[1])

        def _sent() -> None:
            state["sends_done"] += 1
            maybe_done()

        def post_recv(origin: int) -> None:
            req = ctx.irecv(local, left, base_tag + origin, blocks[origin][1])

            def on_recv(r, origin=origin) -> None:
                have[origin] = (
                    np.asarray(r.data).reshape(-1).view(np.uint8)
                    if (ctx.carry() and r.data is not None)
                    else None
                )
                state["collected"] += 1
                if origin != right:
                    send_block(origin)
                maybe_done()

            req.add_callback(on_recv)

        for origin in members:
            if origin != local:
                post_recv(origin)
        send_block(local)
        maybe_done()

    for pos in range(K):
        ctx.rt(members[pos]).cpu.when_available(start_rank, pos)
    return handle


def _own_block(ctx: CollectiveContext, local: int) -> Any:
    own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
    return (
        np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
    )


def _zero_filled(
    ctx: CollectiveContext, blocks: list, have: dict, P: int
) -> Any:
    if not ctx.carry():
        return None
    parts = []
    for b in range(P):
        blk = have.get(b)
        parts.append(
            blk if blk is not None else np.zeros(blocks[b][1], dtype=np.uint8)
        )
    return np.concatenate(parts) if parts else None


def reduce_scatter_ring_members(
    ctx: CollectiveContext, members: list
) -> CollectiveHandle:
    """Ring reduce-scatter over a survivor subset.

    Every member contributes its full ``nbytes`` vector; member m ends with
    the original block m of the elementwise reduction *over the survivor
    contributions only* (dead contributions are simply absent from the
    fold). The ring is indexed by member position; block indices stay in the
    original P-way layout.
    """
    comm = ctx.comm
    P = comm.size
    K = len(members)
    handle = new_handle(ctx, "reduce-scatter-ring-members")
    blocks = _block_ranges(ctx.nbytes, P)
    base_tag = ctx.world.allocate_tags(P * P)

    if K == 1:
        local = members[0]
        vec = _own_vec(ctx, local)
        out = None
        if vec is not None:
            off, ln = blocks[local]
            out = vec[off : off + ln].copy()
        handle.mark_done(local, ctx.world.engine.now, out)
        return handle

    def start_rank(pos: int) -> None:
        local = members[pos]
        right = members[(pos + 1) % K]
        left = members[(pos - 1) % K]
        vec = _own_vec(ctx, local)
        state = {"step": 0, "sends_done": 0, "finished": False}

        def block_view(b: int):
            if vec is None:
                return None
            off, ln = blocks[b]
            return vec[off : off + ln]

        def maybe_done() -> None:
            if state["finished"]:
                return
            if state["step"] == K - 1 and state["sends_done"] == K - 1:
                state["finished"] = True
                out = block_view(local)
                handle.mark_done(
                    local, ctx.world.engine.now,
                    out.copy() if out is not None else None,
                )

        def do_step() -> None:
            s = state["step"]
            if s >= K - 1:
                maybe_done()
                return
            # Position arithmetic mirrors the full ring: the final folded
            # block at position i is members[i] — each member's own block.
            send_b = members[(pos - s - 1) % K]
            recv_b = members[(pos - s - 2) % K]
            sreq = ctx.isend(
                local, right, base_tag + P * s + send_b, blocks[send_b][1],
                block_view(send_b),
            )
            sreq.add_callback(lambda r: (_sent(), None)[1])
            rreq = ctx.irecv(
                local, left, base_tag + P * s + recv_b, blocks[recv_b][1]
            )

            def on_recv(r, recv_b=recv_b) -> None:
                if ctx.carry() and vec is not None and r.data is not None:
                    off, ln = blocks[recv_b]
                    vec[off : off + ln] = np.asarray(
                        ctx.op(vec[off : off + ln], np.asarray(r.data))
                    )
                state["step"] += 1
                ctx.charge_reduce(local, blocks[recv_b][1], do_step)

            rreq.add_callback(on_recv)

        def _sent() -> None:
            state["sends_done"] += 1
            maybe_done()

        do_step()

    for pos in range(K):
        ctx.rt(members[pos]).cpu.when_available(start_rank, pos)
    return handle


def _own_vec(ctx: CollectiveContext, local: int) -> Any:
    own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
    return (
        np.asarray(own).reshape(-1).view(np.uint8).copy()
        if own is not None
        else None
    )
