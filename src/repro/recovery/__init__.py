"""Live recovery for ADAPT collectives (DESIGN.md S20).

Three pillars, layered on the PR-2 fault stack:

1. **membership** — ULFM-style agreement: suspicions from the failure
   detector are coalesced, agreed over a survivor ring (a silent hop is
   itself declared failed), and committed as numbered
   :class:`~repro.recovery.membership.SurvivorView` epochs.
2. **repair** — every ADAPT collective completes under mid-flight
   fail-stop: bcast/scatter/barrier/alltoall repair *in place* (tree
   re-grafting / peer excusal inside the running state machines);
   reduce/gather/allreduce/allgather/reduce-scatter restart among the
   survivors at each committed epoch
   (:class:`~repro.recovery.restart.EpochRestart`).
3. **integrity** — per-segment checksums with NACK-triggered retransmit
   live in the transport (:mod:`repro.mpi.runtime`); the ``corrupt`` fault
   kind exercises them.

:func:`launch_recover` is the front door: it arms the membership service
and launches the named collective in its recovering configuration.
"""

from __future__ import annotations

from repro.collectives import (
    allgather_adapt,
    allreduce_adapt,
    alltoall_adapt,
    barrier_adapt,
    bcast_adapt,
    gather_adapt,
    reduce_adapt,
    reduce_scatter_adapt,
    scatter_adapt,
)
from repro.collectives.base import CollectiveContext, CollectiveHandle
from repro.recovery.membership import (
    MembershipService,
    SurvivorView,
    agreed_view,
    ensure_membership,
    merge_suspicions,
    ring_walk,
)
from repro.recovery.restart import (
    EpochRestart,
    allgather_ring_members,
    reduce_scatter_ring_members,
)

__all__ = [
    "MembershipService",
    "SurvivorView",
    "agreed_view",
    "merge_suspicions",
    "ring_walk",
    "ensure_membership",
    "EpochRestart",
    "launch_recover",
    "RECOVERY_MODES",
]

#: How each collective recovers: repaired in place by its own state
#: machine, or shrunk-and-restarted at each membership epoch.
RECOVERY_MODES = {
    "bcast": "in-place",
    "scatter": "in-place",
    "barrier": "in-place",
    "alltoall": "in-place",
    "reduce": "restart",
    "gather": "restart",
    "allreduce": "restart",
    "allgather": "restart",
    "reduce_scatter": "restart",
}

_INPLACE_ALGOS = {
    "bcast": bcast_adapt,
    "scatter": scatter_adapt,
    "barrier": barrier_adapt,
    "alltoall": alltoall_adapt,
}


def launch_recover(name: str, ctx: CollectiveContext) -> CollectiveHandle:
    """Launch collective ``name`` with live recovery armed.

    The fault-free path is byte-identical to the plain launch (attempt 0 is
    the unmodified algorithm; the membership service only acts on
    suspicions). Under fail-stop, in-place collectives keep running through
    the repair and the membership commit back-fills
    ``report.agreed_failed``/``epoch``; restart collectives relaunch among
    the survivors at each committed epoch.
    """
    mode = RECOVERY_MODES.get(name)
    if mode is None:
        raise ValueError(
            f"unknown collective {name!r}; known: {sorted(RECOVERY_MODES)}"
        )
    if mode == "in-place":
        return _launch_inplace(name, ctx)
    return _launch_restart(name, ctx)


def _launch_inplace(name: str, ctx: CollectiveContext) -> CollectiveHandle:
    ms = ensure_membership(ctx.world)
    handle = _INPLACE_ALGOS[name](ctx)
    comm = ctx.comm

    def on_view(view: SurvivorView) -> None:
        failed_locals = {
            comm.local_rank(w) for w in view.failed if w in comm
        }
        rep = handle.report
        if failed_locals:
            rep.degraded = True
            rep.failed_ranks |= failed_locals
        rep.agreed_failed = set(failed_locals)
        rep.epoch = view.epoch
        for dead in sorted(failed_locals):
            handle.excuse(dead)

    ms.subscribe(on_view)
    return handle


def _launch_restart(name: str, ctx: CollectiveContext) -> CollectiveHandle:
    if name == "reduce":
        driver = EpochRestart(
            ctx, "reduce-adapt-recover",
            lambda c: reduce_adapt(c),
            lambda c, members: reduce_adapt(c, ranks=members),
            root_required=True,
        )
    elif name == "gather":
        driver = EpochRestart(
            ctx, "gather-adapt-recover",
            lambda c: gather_adapt(c),
            lambda c, members: gather_adapt(c, ranks=members),
            root_required=True,
        )
    elif name == "allreduce":
        driver = EpochRestart(
            ctx, "allreduce-adapt-recover",
            lambda c: allreduce_adapt(c),
            lambda c, members: allreduce_adapt(c, ranks=members),
            root_required=True,
        )
    elif name == "allgather":
        driver = EpochRestart(
            ctx, "allgather-adapt-recover",
            lambda c: allgather_adapt(c),
            lambda c, members: allgather_ring_members(c, members),
            root_required=False,
        )
    else:  # reduce_scatter
        driver = EpochRestart(
            ctx, "reduce-scatter-adapt-recover",
            lambda c: reduce_scatter_adapt(c),
            lambda c, members: reduce_scatter_ring_members(c, members),
            root_required=False,
        )
    return driver.handle
