"""Verification hooks: how each schedule presents to the model checker.

``repro.verify`` treats a collective as a transition system extracted from
a recorded run. That extraction is only sound for schedules whose *posting
structure* is data-oblivious — which operations get posted, and what gates
them, must not depend on payload bytes (ADAPT's state machines branch on
segment arrival, never on segment content; the baselines are straight-line
proclets). Each schedule the checker accepts declares that contract here,
along with its family and — for the nine ADAPT collectives — the recovery
path the kill-sweep must certify (mirrors ``repro.recovery.RECOVERY_MODES``;
a test asserts the two tables never drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class VerifySpec:
    """One schedule's contract with the model checker."""

    schedule: str
    #: "adapt" | "blocking" | "nonblocking" | "demo"
    family: str
    #: The ``RECOVERY_MODES`` key for ADAPT collectives, else ``None``.
    collective: Optional[str] = None
    #: "in-place" | "restart" | None — how the kill-sweep certifies it.
    recovery: Optional[str] = None
    #: Posting structure independent of payload bytes (extraction soundness).
    data_oblivious: bool = True
    #: The violation kind the checker is *expected* to report (demos only).
    expect: Optional[str] = None


#: The nine ADAPT collectives the acceptance run must certify at 0 violations.
ADAPT_VERIFY: tuple[str, ...] = (
    "bcast-adapt",
    "reduce-adapt",
    "scatter-adapt",
    "gather-adapt",
    "allreduce-adapt",
    "barrier-adapt",
    "allgather-adapt",
    "reduce-scatter-adapt",
    "alltoall-adapt",
)

VERIFY_MODELS: dict[str, VerifySpec] = {
    spec.schedule: spec
    for spec in (
        # ADAPT event-based schedules: deadlock-free and race-free in every
        # ordering; each carries its DESIGN.md S20 recovery path.
        VerifySpec("bcast-adapt", "adapt", "bcast", "in-place"),
        VerifySpec("reduce-adapt", "adapt", "reduce", "restart"),
        VerifySpec("scatter-adapt", "adapt", "scatter", "in-place"),
        VerifySpec("gather-adapt", "adapt", "gather", "restart"),
        VerifySpec("allreduce-adapt", "adapt", "allreduce", "restart"),
        VerifySpec("barrier-adapt", "adapt", "barrier", "in-place"),
        VerifySpec("allgather-adapt", "adapt", "allgather", "restart"),
        VerifySpec("reduce-scatter-adapt", "adapt", "reduce_scatter",
                   "restart"),
        VerifySpec("alltoall-adapt", "adapt", "alltoall", "in-place"),
        # Baselines: models extract fine; the checker documents the orderings
        # they survive (the paper's Figure 2 argument, machine-checked).
        VerifySpec("bcast-blocking", "blocking", "bcast"),
        VerifySpec("reduce-blocking", "blocking", "reduce"),
        VerifySpec("bcast-nonblocking", "nonblocking", "bcast"),
        VerifySpec("reduce-nonblocking", "nonblocking", "reduce"),
        # Intentionally broken demos: the checker must produce the violation.
        VerifySpec("deadlock-demo", "demo", expect="deadlock"),
        VerifySpec("tag-mismatch-demo", "demo", expect="deadlock"),
        VerifySpec("race-demo", "demo", expect="race"),
    )
}
