"""Classic collective algorithms used by the comparison libraries.

These are the documented/textbook algorithms the closed-source libraries in
the paper's evaluation are known to use (DESIGN.md explains why we model
libraries as algorithm families):

* :func:`bcast_scatter_allgather` — van de Geijn large-message broadcast
  (binomial scatter + ring allgather), the pattern Section 2.2.3 uses as its
  non-tree example; also MVAPICH's large-message choice.
* :func:`reduce_rabenseifner` — recursive-halving reduce-scatter + binomial
  gather, one of Intel MPI's reduce algorithms (Figure 8's legend).
* :func:`reduce_shumilin` — Intel MPI's Shumilin reduce, modelled as a
  pipelined binomial-tree reduce with vectorized (4x cheaper) arithmetic —
  the paper attributes its Stampede2 win over ADAPT to exactly that
  vectorization plus Omni-Path-tuned P2P (Section 5.1.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.nonblocking import reduce_nonblocking
from repro.mpi.proclet import Compute, ProcletDriver, WaitAll
from repro.trees.builders import binomial_tree


def _blocks(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``nbytes`` into ``nparts`` (offset, length) block ranges."""
    base = nbytes // nparts
    rem = nbytes % nparts
    out = []
    off = 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


def bcast_scatter_allgather(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Large-message broadcast: binomial scatter then ring allgather.

    Bandwidth-optimal (2x the bytes of a chain per non-root rank) but with a
    strict phase boundary and P-1 synchronous ring steps.
    """
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "bcast-scatter-allgather")
    if P == 1:
        handle.mark_done(0, ctx.world.engine.now, ctx.data if ctx.carry() else None)
        return handle
    blocks = _blocks(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P + P * P)
    base_tag = ctx.scratch
    btree = binomial_tree(P)  # over vranks; vrank 0 == root
    payload = (
        np.asarray(ctx.data).reshape(-1).view(np.uint8)
        if (ctx.carry() and ctx.data is not None)
        else None
    )

    def vrank(local: int) -> int:
        return (local - ctx.root) % P

    def local_of(vr: int) -> int:
        return (vr + ctx.root) % P

    def subtree_span(vr: int) -> int:
        """Number of consecutive vranks in vr's binomial subtree."""
        return 1 + sum(1 for _ in btree.descendants(vr))

    def range_bytes(first_vr: int, count: int) -> int:
        return sum(blocks[b][1] for b in range(first_vr, first_vr + count))

    def program(local: int):
        vr = vrank(local)
        parent_vr = btree.parent[vr]
        have: dict[int, Optional[np.ndarray]] = {}

        # -- scatter phase: receive my subtree's block range, forward halves.
        span = subtree_span(vr)
        if parent_vr is None:
            if payload is not None:
                for b, (off, ln) in enumerate(blocks):
                    have[b] = payload[off : off + ln]
            else:
                for b in range(P):
                    have[b] = None
        else:
            nb = range_bytes(vr, span)
            req = ctx.irecv(local, local_of(parent_vr), base_tag + vr, nb)
            yield req
            if ctx.carry() and req.data is not None:
                flat = np.asarray(req.data).reshape(-1).view(np.uint8)
                off = 0
                for b in range(vr, vr + span):
                    ln = blocks[b][1]
                    have[b] = flat[off : off + ln]
                    off += ln
            else:
                for b in range(vr, vr + span):
                    have[b] = None
        for child_vr in btree.children[vr]:
            cspan = subtree_span(child_vr)
            nb = range_bytes(child_vr, cspan)
            data = None
            if ctx.carry() and all(
                have.get(b) is not None for b in range(child_vr, child_vr + cspan)
            ):
                data = np.concatenate(
                    [have[b] for b in range(child_vr, child_vr + cspan)]
                )
            yield ctx.isend(local, local_of(child_vr), base_tag + child_vr, nb, data)

        # -- ring allgather phase: P-1 steps around the vrank ring.
        right = local_of((vr + 1) % P)
        left = local_of((vr - 1) % P)
        obs = ctx.world.obs
        for step in range(P - 1):
            send_b = (vr - step) % P
            recv_b = (vr - step - 1) % P
            rreq = ctx.irecv(local, left, base_tag + P + P * step + recv_b, blocks[recv_b][1])
            sreq = ctx.isend(
                local, right, base_tag + P + P * step + send_b, blocks[send_b][1],
                have.get(send_b),
            )
            yield WaitAll([rreq, sreq])
            if obs is not None:
                obs.count("classic.sag.ring_steps")
            have[recv_b] = rreq.data

        out = None
        if ctx.carry() and all(have.get(b) is not None for b in range(P)):
            out = np.concatenate([np.asarray(have[b], dtype=np.uint8) for b in range(P)])
        handle.mark_done(local, ctx.world.engine.now, out)

    for local in ranks if ranks is not None else range(P):
        ProcletDriver(ctx.rt(local), program(local))
    return handle


def reduce_rabenseifner(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Rabenseifner reduce: recursive-halving reduce-scatter + binomial gather.

    Bandwidth-optimal for large messages on power-of-two communicators;
    remainder ranks fold their whole vector into a partner first (the
    standard non-power-of-two pre-phase).
    """
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "reduce-rabenseifner")
    if P == 1:
        out = ctx.data.get(0) if (ctx.carry() and ctx.data) else None
        handle.mark_done(0, ctx.world.engine.now, out)
        return handle
    P2 = 1 << (P.bit_length() - 1)
    rem = P - P2
    nbytes = ctx.nbytes
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(4 * P + 4 * P.bit_length())
    base_tag = ctx.scratch
    bw = ctx.world.spec.cpu_reduce_bandwidth

    def vrank(local: int) -> int:
        return (local - ctx.root) % P

    def local_of(vr: int) -> int:
        return (vr + ctx.root) % P

    def program(local: int):
        vr = vrank(local)
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        vec = (
            np.asarray(own).reshape(-1).view(np.uint8).copy()
            if own is not None
            else None
        )

        # Pre-phase: the last `rem` vranks fold into partners vr - P2.
        if vr >= P2:
            yield ctx.isend(local, local_of(vr - P2), base_tag + vr, nbytes, vec)
            # Folded-out ranks receive the final result only if they are not
            # the root (vrank 0 is never folded out), so they are done.
            handle.mark_done(local, ctx.world.engine.now, None)
            return
        if vr < rem:
            req = ctx.irecv(local, local_of(vr + P2), base_tag + vr + P2, nbytes)
            yield req
            yield Compute(nbytes / bw)
            if ctx.carry() and vec is not None and req.data is not None:
                vec = np.asarray(ctx.op(vec, np.asarray(req.data)))

        # Reduce-scatter over the P2 group by recursive halving.
        lo, ln = 0, nbytes
        mask = P2 >> 1
        step = 0
        while mask:
            partner = vr ^ mask
            half = ln // 2
            keep_low = (vr & mask) == 0
            send_off, send_ln = (lo + half, ln - half) if keep_low else (lo, half)
            keep_off, keep_ln = (lo, half) if keep_low else (lo + half, ln - half)
            tag = base_tag + 2 * P + step
            sdata = vec[send_off : send_off + send_ln] if vec is not None else None
            sreq = ctx.isend(local, local_of(partner), tag, send_ln, sdata)
            rreq = ctx.irecv(local, local_of(partner), tag, keep_ln)
            yield WaitAll([sreq, rreq])
            yield Compute(keep_ln / bw)
            if ctx.carry() and vec is not None and rreq.data is not None:
                seg = ctx.op(
                    vec[keep_off : keep_off + keep_ln], np.asarray(rreq.data)
                )
                vec[keep_off : keep_off + keep_ln] = seg
            lo, ln = keep_off, keep_ln
            mask >>= 1
            step += 1

        # Binomial gather of scattered chunks to vrank 0. Each rank owns
        # [lo, lo+ln); senders pass their accumulated range up the binomial
        # tree (built over the P2 group, bit-reversal-free approximation:
        # rank vr sends to vr with its lowest set bit cleared).
        ranges: dict[int, tuple[int, bytes]] = {}
        if vec is not None:
            ranges[lo] = (ln, vec[lo : lo + ln].tobytes())
        mask = 1
        total_ln = ln
        total_lo = lo
        while mask < P2:
            if vr & mask:
                # Send my accumulated range to parent and finish.
                data = None
                if vec is not None:
                    data = vec[total_lo : total_lo + total_ln]
                yield ctx.isend(
                    local, local_of(vr & ~mask), base_tag + 3 * P + vr, total_ln, data
                )
                handle.mark_done(local, ctx.world.engine.now, None)
                return
            partner = vr | mask
            if partner < P2:
                # Receive the partner's accumulated (contiguous) range.
                plo, pln = _gathered_range(partner, P2, nbytes, mask)
                req = ctx.irecv(local, local_of(partner), base_tag + 3 * P + partner, pln)
                yield req
                if vec is not None and req.data is not None:
                    vec[plo : plo + pln] = np.asarray(req.data).reshape(-1).view(np.uint8)
                total_ln += pln
                total_lo = min(total_lo, plo)
            mask <<= 1
        out = vec if (ctx.carry() and vec is not None) else None
        handle.mark_done(local, ctx.world.engine.now, out)

    for local in ranks if ranks is not None else range(P):
        ProcletDriver(ctx.rt(local), program(local))
    return handle


def _gathered_range(vr: int, P2: int, nbytes: int, upto_mask: int) -> tuple[int, int]:
    """(offset, length) of the contiguous range vrank ``vr`` has accumulated
    by the time it sends at gather step ``upto_mask``.

    After reduce-scatter, vrank v owns the range selected by reading its bits
    from the top: bit set -> upper half, clear -> lower half. During the
    gather it has merged the ranges of all vranks ``v | m`` for m < upto_mask.
    """
    lo, ln = 0, nbytes
    mask = P2 >> 1
    while mask >= upto_mask:
        half = ln // 2
        if vr & mask:
            lo, ln = lo + half, ln - half
        else:
            ln = half
        mask >>= 1
    return lo, ln


def reduce_shumilin(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Shumilin-style reduce (Intel MPI model).

    Pipelined binomial-tree reduce whose arithmetic is vectorized (4x the
    scalar reduce throughput) — the property the paper credits for Intel's
    reduce win on Stampede2 (Section 5.1.2).
    """
    if ctx.tree is None:
        ctx.tree = binomial_tree(ctx.comm.size).reroot_relabelled(ctx.root)
    h = reduce_nonblocking(ctx, handle=handle, ranks=ranks, compute_scale=0.25)
    h.name = "reduce-shumilin"
    return h
