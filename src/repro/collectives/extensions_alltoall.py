"""Event-driven all-to-all personalized exchange.

Completes the collective coverage program (Section 2.2.3): alltoall is the
densest pattern — every rank sends a distinct block to every other rank —
and the one where ADAPT's only-data-dependencies structure pays most
visibly. Each (src, dst) pair is an independent send/recv pair; there is no
step structure, no pairwise rounds, no synchronization: a slow (or dead)
peer delays exactly its own blocks.

Degraded mode (DESIGN.md S20): a dead peer is *excused* per edge — the
pending receive from it is cancelled, the send toward it is written off —
so survivors still exchange every survivor block. Dead-origin blocks are
zero-filled in the output.

Layout: ``ctx.nbytes`` is one rank's full send buffer; block ``j`` of
``ctx.data[r]`` travels to rank ``j``. Rank ``r``'s output concatenates
block ``r`` from every source in communicator order (its own included).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle


def _block_ranges(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    base, rem = divmod(nbytes, nparts)
    out, off = [], 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


class _AdaptAlltoallRank:
    """Per-rank state machine: P-1 independent sends, P-1 independent recvs."""

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle,
                 local: int, base_tag: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        self.base_tag = base_tag
        P = ctx.comm.size
        self.P = P
        self.blocks = _block_ranges(ctx.nbytes, P)
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        self.vec = (
            np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        )
        # got[s] = block `local` received from source s (None until arrival);
        # the own block is in hand from the start.
        self.got: dict[int, Any] = {local: self._own_block()}
        self.want: set[int] = {s for s in range(P) if s != local}
        self.sends_open: set[int] = {d for d in range(P) if d != local}
        self._recv_reqs: dict[int, Any] = {}
        self._handled_failures: set[int] = set()
        self.finished = False

    def _own_block(self) -> Any:
        if self.vec is None:
            return None
        off, ln = self.blocks[self.local]
        return self.vec[off : off + ln]

    def _start(self) -> None:
        ctx = self.ctx
        for s in sorted(self.want):
            req = ctx.irecv(
                self.local, s, self.base_tag + s, self.blocks[self.local][1]
            )
            self._recv_reqs[s] = req
            req.add_callback(lambda r, s=s: self._on_recv(s, r.data))
        for d in sorted(self.sends_open):
            block = None
            if self.vec is not None:
                off, ln = self.blocks[d]
                block = self.vec[off : off + ln]
            req = ctx.isend(
                self.local, d, self.base_tag + self.local,
                self.blocks[d][1], block,
            )
            req.add_callback(lambda r, d=d: self._on_send_done(d))
        self._maybe_finish()

    def _on_recv(self, src: int, data: Any) -> None:
        self._recv_reqs.pop(src, None)
        if src not in self.want:
            return  # a post-mortem delivery from an excused peer: absorbed
        self.want.discard(src)
        self.got[src] = (
            np.asarray(data).reshape(-1).view(np.uint8)
            if (self.ctx.carry() and data is not None)
            else None
        )
        self._maybe_finish()

    def _on_send_done(self, dst: int) -> None:
        self.sends_open.discard(dst)
        self._maybe_finish()

    # -- failure handling -----------------------------------------------------

    def on_failure(self, dead: int) -> None:
        """A peer died: excuse both directions of its edge (this rank's CPU)."""
        if dead == self.local or dead in self._handled_failures:
            return
        self._handled_failures.add(dead)
        report = self.handle.report
        report.degraded = True
        report.failed_ranks.add(dead)
        self.handle.excuse(dead)
        if dead in self.want:
            self.want.discard(dead)
            req = self._recv_reqs.pop(dead, None)
            if req is not None and not req.completed:
                self.ctx.rt(self.local).cancel_recv(req)
            report.note(
                f"rank {self.local}: block from dead peer {dead} zero-filled"
            )
        # The send toward the dead peer is written off whether or not its
        # request ever completes (a rendezvous into a corpse never will).
        self.sends_open.discard(dead)
        self._maybe_finish()

    def on_alive(self, back: int) -> None:
        """Alive-after-failed retraction: tolerated, not re-integrated (the
        zero-filled block and written-off send stay excused). Idempotent."""
        if back == self.local or back not in self._handled_failures:
            return
        self.handle.report.retractions.add(back)

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished or self.want or self.sends_open:
            return
        self.finished = True
        out = None
        if self.ctx.carry() and self.vec is not None:
            ln = self.blocks[self.local][1]
            parts = []
            for s in range(self.P):
                blk = self.got.get(s)
                parts.append(
                    blk if blk is not None else np.zeros(ln, dtype=np.uint8)
                )
            out = np.concatenate(parts) if parts else None
        self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def alltoall_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven alltoall: P*(P-1) independent edges, zero rounds."""
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "alltoall-adapt")
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P)
    base_tag = ctx.scratch

    if P == 1:
        own = ctx.data.get(0) if (ctx.carry() and ctx.data) else None
        out = np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        if not handle.done_time:
            handle.mark_done(0, ctx.world.engine.now, out)
        return handle

    for local in ranks if ranks is not None else range(P):
        rank_state = _AdaptAlltoallRank(ctx, handle, local, base_tag)
        ctx.rt(local).cpu.when_available(rank_state._start)
        ctx.subscribe_failures(local, rank_state.on_failure,
                               alive_fn=rank_state.on_alive)
    return handle
