"""Allgather and reduce-scatter on the event-driven framework.

Completes the "extend ADAPT to other collectives" program of Section 2.2.3:
both are ring algorithms whose steps are driven entirely by completion
callbacks — a rank forwards block ``b`` the moment it arrives, without
waiting for any other block, so a delayed rank stalls only the blocks that
must pass through it (the data dependency) and never its ring-distant peers'
other traffic.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle


def _block_ranges(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    base, rem = divmod(nbytes, nparts)
    out, off = [], 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


def allgather_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven ring allgather.

    ``ctx.nbytes`` is the assembled size; rank r contributes ``ctx.data[r]``
    (its block, in data mode) and every rank ends with all blocks in
    communicator order. Each of the P-1 ring steps is posted from the
    previous step's receive callback; sends never wait for the local step
    counter of the receiver.
    """
    tree = None  # ring algorithm: tree-free by design
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "allgather-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P * P)
    base_tag = ctx.scratch

    if P == 1:
        own = ctx.data.get(0) if (ctx.carry() and ctx.data) else None
        out = (
            np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        )
        if not handle.done_time:
            handle.mark_done(0, ctx.world.engine.now, out)
        return handle

    def start_rank(local: int) -> None:
        right = (local + 1) % P
        left = (local - 1) % P
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        have: dict[int, Any] = {
            local: np.asarray(own).reshape(-1).view(np.uint8)
            if own is not None
            else None
        }
        state = {"collected": 1, "sends_done": 0}

        def maybe_done() -> None:
            if state["collected"] == P and state["sends_done"] == P - 1:
                out = None
                if ctx.carry() and all(have.get(b) is not None for b in range(P)):
                    out = np.concatenate([have[b] for b in range(P)])
                handle.mark_done(local, ctx.world.engine.now, out)

        def send_block(b: int) -> None:
            req = ctx.isend(local, right, base_tag + P * local + b, blocks[b][1],
                            have.get(b))
            req.add_callback(lambda r: (_sent(), None)[1])

        def _sent() -> None:
            state["sends_done"] += 1
            maybe_done()

        def post_recv(b: int) -> None:
            req = ctx.irecv(local, left, base_tag + P * left + b, blocks[b][1])

            def on_recv(r, b=b) -> None:
                have[b] = (
                    np.asarray(r.data).reshape(-1).view(np.uint8)
                    if (ctx.carry() and r.data is not None)
                    else None
                )
                state["collected"] += 1
                # Forward it onward unless the right neighbour originated it
                # (it already has it; it never travels the full ring).
                if b != right:
                    send_block(b)
                maybe_done()

            req.add_callback(on_recv)

        # Pre-post recvs for every block that will arrive from the left
        # (all blocks except my own and my left neighbour originates the
        # rest in sequence — post them all, event-driven).
        for step in range(P - 1):
            b = (left - step) % P
            post_recv(b)
        send_block(local)

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle


def reduce_scatter_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven ring reduce-scatter.

    Every rank contributes a full ``ctx.nbytes`` vector (``ctx.data[r]``);
    rank r ends with block r of the elementwise reduction. The classic ring:
    at step s, rank r sends the partial for block (r-s) and folds the
    incoming partial for block (r-s-1); each step is triggered by the
    previous receive's completion callback plus the local reduction.
    """
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "reduce-scatter-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P * P)
    base_tag = ctx.scratch

    if P == 1:
        own = ctx.data.get(0) if (ctx.carry() and ctx.data) else None
        out = np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        if not handle.done_time:
            handle.mark_done(0, ctx.world.engine.now, out)
        return handle

    def start_rank(local: int) -> None:
        right = (local + 1) % P
        left = (local - 1) % P
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        vec = (
            np.asarray(own).reshape(-1).view(np.uint8).copy()
            if own is not None
            else None
        )
        state = {"step": 0, "sends_done": 0, "finished": False}

        def block_view(b: int):
            if vec is None:
                return None
            off, ln = blocks[b]
            return vec[off : off + ln]

        def maybe_done() -> None:
            # Idempotent: `step` is incremented in on_recv but re-checked only
            # after the charge_reduce delay, so a rendezvous-send completion
            # landing inside that window would otherwise observe both counters
            # terminal and mark the rank done a second time.
            if state["finished"]:
                return
            if state["step"] == P - 1 and state["sends_done"] == P - 1:
                state["finished"] = True
                out = block_view(local)
                handle.mark_done(
                    local, ctx.world.engine.now,
                    out.copy() if out is not None else None,
                )

        def do_step() -> None:
            s = state["step"]
            if s >= P - 1:
                maybe_done()
                return
            # Schedule shifted so the final received block is `local`: at
            # step s, send the partial of (local-s-1), fold (local-s-2).
            send_b = (local - s - 1) % P
            recv_b = (local - s - 2) % P
            sreq = ctx.isend(
                local, right, base_tag + P * s + send_b, blocks[send_b][1],
                block_view(send_b),
            )
            sreq.add_callback(lambda r: (_sent(), None)[1])
            rreq = ctx.irecv(local, left, base_tag + P * s + recv_b, blocks[recv_b][1])

            def on_recv(r, recv_b=recv_b) -> None:
                # Fold the incoming partial into my accumulator and charge
                # the arithmetic before the next step fires.
                if ctx.carry() and vec is not None and r.data is not None:
                    off, ln = blocks[recv_b]
                    vec[off : off + ln] = np.asarray(
                        ctx.op(vec[off : off + ln], np.asarray(r.data))
                    )
                state["step"] += 1
                ctx.charge_reduce(local, blocks[recv_b][1], do_step)

            rreq.add_callback(on_recv)

        def _sent() -> None:
            state["sends_done"] += 1
            maybe_done()

        do_step()

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle
