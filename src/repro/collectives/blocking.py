"""Blocking P2P collectives — the paper's Algorithm 1 / Figure 1 baseline.

Every send and receive fully completes before the next one is posted, so
segments are strictly ordered and children are serviced strictly in tree
order: both the data dependencies *and* the synchronization dependencies of
Section 2.1.1 are present. This is the MPICH/MVAPICH-style pattern the paper
analyzes first.

All frameworks in this package share one calling convention: the public
function launches every rank of ``ctx.comm`` and returns the handle; passing
``ranks=`` launches only a subset (a later call with the same ``handle`` adds
the rest) — hierarchical compositions use this to let each rank enter a phase
at its own time, as real multi-level collectives do.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import (
    assemble_payload,
    segment_sizes,
    slice_payload,
)
from repro.mpi.proclet import Compute, ProcletDriver


def _reduce_seconds(ctx: CollectiveContext, nbytes: int) -> float:
    return nbytes / ctx.world.spec.cpu_reduce_bandwidth


def bcast_blocking(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Pipelined tree broadcast with blocking sends/recvs (Figure 1)."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    sizes = segment_sizes(ctx.nbytes, ctx.config)
    handle = handle or new_handle(ctx, "bcast-blocking")
    obs = ctx.world.obs

    def program(local: int):
        children = tree.children[local]
        parent = tree.parent[local]
        received = [None] * len(sizes)
        if parent is None:
            slices = slice_payload(ctx.data if ctx.carry() else None, sizes)
            for i, nb in enumerate(sizes):
                for child in children:
                    # MPI_Send: post, then wait for completion before the
                    # next child (synchronization dependency).
                    yield ctx.isend(local, child, ctx.seg_tag(i), nb, slices[i])
                    if obs is not None:
                        obs.count("blocking.bcast.segments_forwarded")
            out = ctx.data
        else:
            for i, nb in enumerate(sizes):
                req = ctx.irecv(local, parent, ctx.seg_tag(i), nb)
                yield req
                if obs is not None:
                    obs.count("blocking.bcast.segments_received")
                received[i] = req.data
                for child in children:
                    yield ctx.isend(local, child, ctx.seg_tag(i), nb, req.data)
                    if obs is not None:
                        obs.count("blocking.bcast.segments_forwarded")
            out = assemble_payload(received) if ctx.carry() else None
        handle.mark_done(local, ctx.world.engine.now, out if ctx.carry() else None)

    for local in ranks if ranks is not None else range(ctx.comm.size):
        ProcletDriver(ctx.rt(local), program(local))
    return handle


def reduce_blocking(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Pipelined tree reduce with blocking P2P (Algorithm 1 mirrored).

    Each rank receives a segment from every child in tree order, folds it
    into its accumulator (CPU arithmetic, like the CPU-bound reductions of
    the libraries Section 4.2 criticizes), then forwards the result up.
    """
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    sizes = segment_sizes(ctx.nbytes, ctx.config)
    handle = handle or new_handle(ctx, "reduce-blocking")
    obs = ctx.world.obs

    def program(local: int):
        children = tree.children[local]
        parent = tree.parent[local]
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        acc = list(slice_payload(own, sizes))
        for i, nb in enumerate(sizes):
            seg_acc = acc[i]
            for child in children:
                req = ctx.irecv(local, child, ctx.seg_tag(i), nb)
                yield req
                yield Compute(_reduce_seconds(ctx, nb))
                if obs is not None:
                    obs.count("blocking.reduce.contributions_folded")
                if ctx.carry():
                    seg_acc = ctx.combine(seg_acc, req.data)
            acc[i] = seg_acc
            if parent is not None:
                yield ctx.isend(local, parent, ctx.seg_tag(i), nb, seg_acc)
        out = assemble_payload(acc) if (ctx.carry() and parent is None) else None
        handle.mark_done(local, ctx.world.engine.now, out)

    for local in ranks if ranks is not None else range(ctx.comm.size):
        ProcletDriver(ctx.rt(local), program(local))
    return handle
