"""Shared plumbing for collective implementations.

A collective *launch* registers work (proclets or callbacks) for every rank
of a communicator at the current simulated time and returns a
:class:`CollectiveHandle`; driving the world (``world.run()``) then populates
per-rank completion times and, in data mode, per-rank output payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig
from repro.mpi.communicator import Communicator
from repro.mpi.ops import ReduceOp
from repro.mpi.request import Request
from repro.mpi.runtime import RankRuntime
from repro.network.fabric import MemSpace
from repro.trees.base import Tree


@dataclass
class CompletionReport:
    """How a collective completed — degraded-mode bookkeeping (DESIGN.md S17).

    A clean run leaves the report untouched (``degraded`` False). Fault-aware
    collectives record the failures they routed around: which local ranks
    died, which live ranks adopted which orphans (bcast), and which subtree
    roots' contributions were lost (reduce — data a dead rank had not yet
    forwarded cannot be recovered; contributions it *had* already folded and
    sent stay in the result).
    """

    degraded: bool = False
    failed_ranks: set[int] = field(default_factory=set)
    adoptions: list[tuple[int, int]] = field(default_factory=list)  # (adopter, orphan)
    lost_subtrees: list[int] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    # Live recovery (DESIGN.md S20): the failed set *agreed* by the
    # membership protocol (vs ``failed_ranks``, raw detector observations
    # this collective routed around) and the epoch of the view the final
    # results belong to (0 = the original launch, never shrunk).
    agreed_failed: set[int] = field(default_factory=set)
    epoch: int = 0
    # Partition tolerance (DESIGN.md S22): local ranks the detector declared
    # failed and later *retracted* (alive-after-failed). The repair already
    # routed around them and is not undone — these are the "false kills" a
    # binary detector would have made permanent.
    retractions: set[int] = field(default_factory=set)
    # Relaxed quorum collectives (DESIGN.md S25): the local ranks whose
    # contributions made the quorum (the result's provenance), the
    # staleness-frontier epoch this operation ran as (0 = exact, no
    # frontier), and the fate of every straggler contribution as
    # ``(rank, from_epoch, into_epoch)`` — ``into_epoch`` is the epoch that
    # absorbed the late merge, or ``-1`` for an explicitly discarded
    # contribution (outside the staleness window).
    contributed_ranks: set[int] = field(default_factory=set)
    staleness_epoch: int = 0
    late_merges: list[tuple[int, int, int]] = field(default_factory=list)

    def note(self, text: str) -> None:
        if text not in self.notes:
            self.notes.append(text)

    def summary(self) -> str:
        if not self.degraded:
            return "clean"
        parts = [f"degraded: failed={sorted(self.failed_ranks)}"]
        if self.epoch:
            parts.append(
                f"epoch={self.epoch} agreed={sorted(self.agreed_failed)}"
            )
        if self.adoptions:
            parts.append(f"adoptions={self.adoptions}")
        if self.lost_subtrees:
            parts.append(f"lost_subtrees={sorted(set(self.lost_subtrees))}")
        if self.retractions:
            parts.append(f"retracted={sorted(self.retractions)}")
        parts.extend(self.notes)
        return "; ".join(parts)

    def quorum_summary(self) -> str:
        """One line of quorum accounting (empty for exact operations)."""
        if not self.staleness_epoch:
            return ""
        merged = [m for m in self.late_merges if m[2] >= 0]
        discarded = [m for m in self.late_merges if m[2] < 0]
        parts = [
            f"epoch={self.staleness_epoch}",
            f"contributed={sorted(self.contributed_ranks)}",
        ]
        if merged:
            parts.append(f"late_merged={merged}")
        if discarded:
            parts.append(f"discarded={[m[0] for m in discarded]}")
        return "; ".join(parts)


@dataclass
class CollectiveHandle:
    """Observable outcome of one collective operation."""

    name: str
    start_time: float
    size: int
    done_time: dict[int, float] = field(default_factory=dict)
    output: dict[int, Any] = field(default_factory=dict)
    # Fired as each rank finishes — the hook hierarchical compositions use to
    # chain the next level's participation (Section 3.1 semantics).
    on_rank_done: list[Callable[[int, float], None]] = field(default_factory=list)
    # Degraded-mode outcome: dead ranks are excused from completion and the
    # report records what the survivors did about them.
    excused: set[int] = field(default_factory=set)
    report: CompletionReport = field(default_factory=CompletionReport)

    def mark_done(self, local: int, time: float, output: Any = None) -> None:
        if local in self.done_time:
            raise RuntimeError(f"rank {local} finished {self.name!r} twice")
        self.done_time[local] = time
        if output is not None:
            self.output[local] = output
        for cb in list(self.on_rank_done):
            cb(local, time)

    def excuse(self, local: int) -> None:
        """Release a (dead) rank from the completion set. Idempotent."""
        self.excused.add(local)

    def mark_late(self, local: int, time: float) -> None:
        """A quorum-excused straggler finished after the operation sealed.

        Fires the chaining callbacks (so the rank proceeds into its next
        iteration, obs records its span) without touching ``done_time`` —
        the operation's timing was fixed at quorum close and a straggler's
        eventual completion must not inflate it (DESIGN.md S25).
        """
        if local in self.done_time:
            return
        for cb in list(self.on_rank_done):
            cb(local, time)

    @property
    def done(self) -> bool:
        if len(self.done_time) == self.size:
            return True
        return all(
            local in self.done_time or local in self.excused
            for local in range(self.size)
        )

    def elapsed(self) -> float:
        """Wall time from launch to the last (surviving) rank's completion."""
        if not self.done:
            raise RuntimeError(
                f"collective {self.name!r} incomplete: "
                f"{len(self.done_time)}/{self.size} ranks finished"
            )
        if not self.done_time:
            raise RuntimeError(f"collective {self.name!r}: no rank completed")
        return max(self.done_time.values()) - self.start_time

    def rank_elapsed(self, local: int) -> float:
        return self.done_time[local] - self.start_time


class CollectiveContext:
    """Everything one collective launch needs, bundled.

    ``data``: for bcast, the root payload (numpy array); for reduce, a dict
    mapping local rank to that rank's contribution. Ignored unless the world
    carries data.

    ``host_staging``: local ranks that send/recv through an explicit CPU
    buffer instead of their GPU memory (Section 4.1's optimization).
    """

    def __init__(
        self,
        comm: Communicator,
        root: int,
        nbytes: int,
        config: CollectiveConfig = DEFAULT_COLLECTIVE,
        tree: Optional[Tree] = None,
        data: Any = None,
        op: Optional[ReduceOp] = None,
        reduce_on_gpu: bool = False,
        host_staging: Optional[set[int]] = None,
    ):
        self.comm = comm
        self.root = root
        self.nbytes = nbytes
        self.config = config
        self.tree = tree
        self.data = data
        self.op = op
        self.reduce_on_gpu = reduce_on_gpu
        self.host_staging = host_staging or set()
        self.world = comm.world
        self.base_tag = self.world.allocate_tags(
            max(1, len(config.segments_for(nbytes))) * max(2, comm.size)
        )
        # Algorithm-private state that must survive partial-rank launches
        # (e.g. scatter-allgather's extra tag block).
        self.scratch: Any = None

    def rt(self, local: int) -> RankRuntime:
        return self.comm.runtime(local)

    def carry(self) -> bool:
        return self.world.carry_data

    def seg_tag(self, seg: int) -> int:
        return self.base_tag + seg

    # -- space-aware p2p helpers -------------------------------------------------

    def _spaces(self, src_local: int, dst_local: int) -> tuple[Optional[MemSpace], Optional[MemSpace]]:
        src_space = MemSpace.HOST if src_local in self.host_staging else None
        dst_space = MemSpace.HOST if dst_local in self.host_staging else None
        return src_space, dst_space

    def isend(self, src_local: int, dst_local: int, tag: int, nbytes: int, data=None) -> Request:
        src_space, dst_space = self._spaces(src_local, dst_local)
        return self.rt(src_local).isend(
            self.comm.world_rank(dst_local), tag, nbytes, data=data,
            space=src_space, dst_space=dst_space,
        )

    def irecv(self, dst_local: int, src_local: int, tag: int, nbytes: int) -> Request:
        return self.rt(dst_local).irecv(self.comm.world_rank(src_local), tag, nbytes)

    # -- fault surface -------------------------------------------------------------

    def subscribe_failures(
        self,
        local: int,
        fn: Callable[[int], None],
        alive_fn: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Route failure-detector events to a rank's state machine.

        Inert in the default fault-free configuration (no detector ever
        appears, the buffered subscription is never exercised) — collectives
        then behave exactly as before. Works regardless of launch order: a
        detector created later adopts earlier subscriptions. Notifications
        arrive as *local* ranks of this communicator, dispatch on
        ``local``'s CPU (so a dead or noisy rank learns never or late), and
        include failures declared before subscription.

        ``alive_fn`` hears *retractions*: the adaptive detector un-declaring
        a rank whose liveness evidence returned (a partitioned or stalled
        process, not a dead one). It may fire after ``fn`` reported the same
        rank failed and must tolerate that ordering.
        """
        comm = self.comm

        def on_fail(world_rank: int) -> None:
            if world_rank in comm:
                fn(comm.local_rank(world_rank))

        on_alive: Optional[Callable[[int], None]] = None
        if alive_fn is not None:

            def on_alive(world_rank: int) -> None:
                if world_rank in comm:
                    alive_fn(comm.local_rank(world_rank))

        self.world.subscribe_failures(
            on_fail, cpu=self.rt(local).cpu, alive_fn=on_alive
        )

    # -- reduction helpers ----------------------------------------------------------

    def combine(self, acc: Any, operand: Any) -> Any:
        """Numerically combine two payloads (data mode only)."""
        assert self.op is not None
        if acc is None or operand is None:
            return None
        return self.op(np.asarray(acc), np.asarray(operand))

    def charge_reduce(
        self,
        local: int,
        nbytes: int,
        fn: Optional[Callable] = None,
        *args,
        tag: Optional[int] = None,
    ) -> None:
        """Charge the arithmetic cost of reducing one segment.

        ``tag`` labels the reduced segment for the dependency analyzer; it
        has no runtime effect.
        """
        self.rt(local).reduce_local(nbytes, fn, *args, on_gpu=self.reduce_on_gpu, tag=tag)


def new_handle(ctx: CollectiveContext, name: str) -> CollectiveHandle:
    handle = CollectiveHandle(
        name=name, start_time=ctx.world.engine.now, size=ctx.comm.size
    )
    obs = ctx.world.obs
    if obs is not None:
        # One span per rank spanning launch -> that rank's completion, on the
        # rank's own track; recorded through the same on_rank_done hook the
        # hierarchical compositions use, so it costs nothing when detached.
        start = handle.start_time
        comm = ctx.comm

        def record_span(local: int, t: float) -> None:
            obs.add(
                "collective", name, ("rank", comm.world_rank(local)), start, t
            )

        handle.on_rank_done.append(record_span)
    return handle
