"""Shared plumbing for collective implementations.

A collective *launch* registers work (proclets or callbacks) for every rank
of a communicator at the current simulated time and returns a
:class:`CollectiveHandle`; driving the world (``world.run()``) then populates
per-rank completion times and, in data mode, per-rank output payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig
from repro.mpi.communicator import Communicator
from repro.mpi.ops import ReduceOp
from repro.mpi.request import Request
from repro.mpi.runtime import RankRuntime
from repro.network.fabric import MemSpace
from repro.trees.base import Tree


@dataclass
class CollectiveHandle:
    """Observable outcome of one collective operation."""

    name: str
    start_time: float
    size: int
    done_time: dict[int, float] = field(default_factory=dict)
    output: dict[int, Any] = field(default_factory=dict)
    # Fired as each rank finishes — the hook hierarchical compositions use to
    # chain the next level's participation (Section 3.1 semantics).
    on_rank_done: list[Callable[[int, float], None]] = field(default_factory=list)

    def mark_done(self, local: int, time: float, output: Any = None) -> None:
        if local in self.done_time:
            raise RuntimeError(f"rank {local} finished {self.name!r} twice")
        self.done_time[local] = time
        if output is not None:
            self.output[local] = output
        for cb in list(self.on_rank_done):
            cb(local, time)

    @property
    def done(self) -> bool:
        return len(self.done_time) == self.size

    def elapsed(self) -> float:
        """Wall time from launch to the last rank's completion."""
        if not self.done:
            raise RuntimeError(
                f"collective {self.name!r} incomplete: "
                f"{len(self.done_time)}/{self.size} ranks finished"
            )
        return max(self.done_time.values()) - self.start_time

    def rank_elapsed(self, local: int) -> float:
        return self.done_time[local] - self.start_time


class CollectiveContext:
    """Everything one collective launch needs, bundled.

    ``data``: for bcast, the root payload (numpy array); for reduce, a dict
    mapping local rank to that rank's contribution. Ignored unless the world
    carries data.

    ``host_staging``: local ranks that send/recv through an explicit CPU
    buffer instead of their GPU memory (Section 4.1's optimization).
    """

    def __init__(
        self,
        comm: Communicator,
        root: int,
        nbytes: int,
        config: CollectiveConfig = DEFAULT_COLLECTIVE,
        tree: Optional[Tree] = None,
        data: Any = None,
        op: Optional[ReduceOp] = None,
        reduce_on_gpu: bool = False,
        host_staging: Optional[set[int]] = None,
    ):
        self.comm = comm
        self.root = root
        self.nbytes = nbytes
        self.config = config
        self.tree = tree
        self.data = data
        self.op = op
        self.reduce_on_gpu = reduce_on_gpu
        self.host_staging = host_staging or set()
        self.world = comm.world
        self.base_tag = self.world.allocate_tags(
            max(1, len(config.segments_for(nbytes))) * max(2, comm.size)
        )
        # Algorithm-private state that must survive partial-rank launches
        # (e.g. scatter-allgather's extra tag block).
        self.scratch: Any = None

    def rt(self, local: int) -> RankRuntime:
        return self.comm.runtime(local)

    def carry(self) -> bool:
        return self.world.carry_data

    def seg_tag(self, seg: int) -> int:
        return self.base_tag + seg

    # -- space-aware p2p helpers -------------------------------------------------

    def _spaces(self, src_local: int, dst_local: int) -> tuple[Optional[MemSpace], Optional[MemSpace]]:
        src_space = MemSpace.HOST if src_local in self.host_staging else None
        dst_space = MemSpace.HOST if dst_local in self.host_staging else None
        return src_space, dst_space

    def isend(self, src_local: int, dst_local: int, tag: int, nbytes: int, data=None) -> Request:
        src_space, dst_space = self._spaces(src_local, dst_local)
        return self.rt(src_local).isend(
            self.comm.world_rank(dst_local), tag, nbytes, data=data,
            space=src_space, dst_space=dst_space,
        )

    def irecv(self, dst_local: int, src_local: int, tag: int, nbytes: int) -> Request:
        return self.rt(dst_local).irecv(self.comm.world_rank(src_local), tag, nbytes)

    # -- reduction helpers ----------------------------------------------------------

    def combine(self, acc: Any, operand: Any) -> Any:
        """Numerically combine two payloads (data mode only)."""
        assert self.op is not None
        if acc is None or operand is None:
            return None
        return self.op(np.asarray(acc), np.asarray(operand))

    def charge_reduce(
        self,
        local: int,
        nbytes: int,
        fn: Optional[Callable] = None,
        *args,
        tag: Optional[int] = None,
    ) -> None:
        """Charge the arithmetic cost of reducing one segment.

        ``tag`` labels the reduced segment for the dependency analyzer; it
        has no runtime effect.
        """
        self.rt(local).reduce_local(nbytes, fn, *args, on_gpu=self.reduce_on_gpu, tag=tag)


def new_handle(ctx: CollectiveContext, name: str) -> CollectiveHandle:
    return CollectiveHandle(
        name=name, start_time=ctx.world.engine.now, size=ctx.comm.size
    )
