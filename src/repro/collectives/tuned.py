"""Open MPI ``tuned``-style collectives: a fixed decision function picks the
algorithm from message size and communicator size.

This models the "OMPI-default" baseline of the evaluation: the tuned
module's decision tree (visible in Figure 9a as the algorithm switch at
256 KB) chooses among non-pipelined binomial, segmented binomial, and a
pipelined binary tree for large messages — all built on the non-blocking +
Waitall framework, and none topology-aware. The paper notes the decision
tree was never tuned for GPUs, so the same (wrong for GPUs) choices apply on
GPU communicators (Section 5.2.2).
"""

from __future__ import annotations

from typing import Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle
from repro.collectives.nonblocking import bcast_nonblocking, reduce_nonblocking
from repro.trees.builders import binary_tree, binomial_tree, chain_tree

_SMALL = 8 * 1024
_LARGE = 256 * 1024


def _decide_bcast(nbytes: int, size: int) -> tuple[str, str, Optional[int]]:
    """(algorithm label, tree shape, forced segment size or None)."""
    if nbytes <= _SMALL or size <= 2:
        return "binomial", "binomial", None  # single segment, no pipeline
    if nbytes <= _LARGE:
        return "segmented-binomial", "binomial", 32 * 1024
    return "pipelined-binary", "binary", 128 * 1024


def _decide_reduce(nbytes: int, size: int) -> tuple[str, str, Optional[int]]:
    if nbytes <= _SMALL or size <= 2:
        return "binomial", "binomial", None
    if nbytes <= _LARGE:
        return "segmented-binomial", "binomial", 32 * 1024
    return "pipelined-binary", "binary", 128 * 1024


def _tree_for(shape: str, size: int, root: int):
    builder = {"binomial": binomial_tree, "binary": binary_tree, "chain": chain_tree}[shape]
    tree = builder(size)
    return tree.reroot_relabelled(root) if root else tree


def _apply_decision(ctx: CollectiveContext, shape: str, seg: Optional[int]) -> None:
    if getattr(ctx, "_tuned_applied", False):
        return
    ctx._tuned_applied = True
    if ctx.tree is None:
        ctx.tree = _tree_for(shape, ctx.comm.size, ctx.root)
    if seg is None:
        ctx.config = ctx.config.with_(segment_size=max(ctx.nbytes, 1))
    else:
        ctx.config = ctx.config.with_(segment_size=seg)
    # The segment count changed: reserve a fresh tag range wide enough for it
    # so concurrent collectives can never collide.
    ctx.base_tag = ctx.world.allocate_tags(
        len(ctx.config.segments_for(ctx.nbytes)) * max(2, ctx.comm.size)
    )


def bcast_tuned(
    ctx: CollectiveContext, handle: Optional[CollectiveHandle] = None, ranks=None
) -> CollectiveHandle:
    """Broadcast via the tuned decision function."""
    label, shape, seg = _decide_bcast(ctx.nbytes, ctx.comm.size)
    _apply_decision(ctx, shape, seg)
    h = bcast_nonblocking(ctx, handle=handle, ranks=ranks)
    h.name = f"bcast-tuned[{label}]"
    return h


def reduce_tuned(
    ctx: CollectiveContext, handle: Optional[CollectiveHandle] = None, ranks=None
) -> CollectiveHandle:
    """Reduce via the tuned decision function."""
    label, shape, seg = _decide_reduce(ctx.nbytes, ctx.comm.size)
    _apply_decision(ctx, shape, seg)
    h = reduce_nonblocking(ctx, handle=handle, ranks=ranks)
    h.name = f"reduce-tuned[{label}]"
    return h
