"""Collective communication frameworks.

Three implementations of the same tree-based pipelined collectives, matching
the paper's Algorithms 1-3:

* :mod:`repro.collectives.blocking` — blocking P2P (Figure 1): every send and
  recv completes before the next is posted. Synchronization dependencies
  order all children and all segments.
* :mod:`repro.collectives.nonblocking` — non-blocking P2P + ``Waitall``
  (Figure 3): children progress concurrently within a segment, but the
  ``Waitall`` re-synchronizes every segment boundary.
* :mod:`repro.collectives.adapt` — **ADAPT** (Figure 4): completion callbacks
  post follow-on operations; only true data dependencies remain. Per child,
  ``N`` sends are in flight; ``M > N`` recvs are pre-posted.

Plus the classic algorithms the comparison libraries use
(:mod:`repro.collectives.classic`), the Section 3.1 multi-communicator
hierarchical composition (:mod:`repro.collectives.hierarchical`), and an
Open MPI ``tuned``-style decision function (:mod:`repro.collectives.tuned`).
"""

from repro.collectives.base import CollectiveHandle, CollectiveContext
from repro.collectives.blocking import bcast_blocking, reduce_blocking
from repro.collectives.nonblocking import bcast_nonblocking, reduce_nonblocking
from repro.collectives.adapt import bcast_adapt, reduce_adapt
from repro.collectives.classic import (
    bcast_scatter_allgather,
    reduce_rabenseifner,
    reduce_shumilin,
)
from repro.collectives.hierarchical import bcast_hierarchical, reduce_hierarchical
from repro.collectives.tuned import bcast_tuned, reduce_tuned
from repro.collectives.extensions import (
    allreduce_adapt,
    barrier_adapt,
    gather_adapt,
    scatter_adapt,
)
from repro.collectives.extensions_allgather import (
    allgather_adapt,
    reduce_scatter_adapt,
)
from repro.collectives.extensions_alltoall import alltoall_adapt
from repro.collectives.models import ADAPT_VERIFY, VERIFY_MODELS, VerifySpec

__all__ = [
    "ADAPT_VERIFY",
    "VERIFY_MODELS",
    "VerifySpec",
    "CollectiveHandle",
    "CollectiveContext",
    "bcast_blocking",
    "reduce_blocking",
    "bcast_nonblocking",
    "reduce_nonblocking",
    "bcast_adapt",
    "reduce_adapt",
    "bcast_scatter_allgather",
    "reduce_rabenseifner",
    "reduce_shumilin",
    "bcast_hierarchical",
    "reduce_hierarchical",
    "bcast_tuned",
    "reduce_tuned",
    "scatter_adapt",
    "gather_adapt",
    "allreduce_adapt",
    "barrier_adapt",
    "allgather_adapt",
    "reduce_scatter_adapt",
    "alltoall_adapt",
]
