"""ADAPT event-driven collectives — the paper's core contribution
(Algorithm 3 / Figure 4).

No rank ever waits. Completion callbacks attached to low-level non-blocking
operations post the next operations, keeping, per rank:

* **segment independence** — up to ``N`` sends in flight per child, refilled
  from the segment pool as each completes; ``M > N`` receives pre-posted from
  the parent so segments never arrive unexpected (Section 2.2.1);
* **child independence** — every child has its own ready-queue and in-flight
  window, so a slow child never throttles its siblings (Section 2.2.2).

A collective is "complete" on a rank when its recvs, sends, reductions and
(GPU runs) staging flushes have all drained — mirroring the single Open MPI
request ADAPT keeps per collective.

GPU extensions (Section 4): ranks in ``ctx.host_staging`` (node leaders and
the root) receive and send through an explicit CPU buffer, so one PCIe
device-to-host pull serves all outgoing copies, and the segment is flushed to
the leader's own GPU by an asynchronous copy that overlaps with forwarding.
Reductions may be offloaded to simulated CUDA streams
(``ctx.reduce_on_gpu``), freeing the host CPU (Section 4.2).

Degraded mode (DESIGN.md S17): when a failure detector is attached to the
world, every rank state machine subscribes to it. The event-driven structure
is what makes recovery local: completion state is per-segment and per-child,
so routing around a dead rank means editing a child list and replaying a
``have``-set — no global restart.

* **bcast**: the dead rank's parent adopts its live descendants (walking
  through consecutive dead ranks) and replays every segment it holds to
  them; each orphan cancels its receives from the dead parent and re-posts
  the full segment range from its nearest live ancestor, its ``have`` set
  suppressing re-forwarding of segments that arrived twice.
* **reduce**: the dead rank's parent drops it from the contribution count
  (partial contributions already folded stay); the dead rank's children
  abandon their upward sends and complete locally — that subtree's
  contribution is lost, and the handle's :class:`CompletionReport` says so.

Blocking and ``Waitall``-based schedules have no such hook: a dead rank
leaves them waiting forever, which is the comparison the fault harness
(``repro chaos``) demonstrates.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import (
    assemble_payload,
    segment_sizes,
    slice_payload,
)
from repro.network.fabric import MemSpace


class _AdaptBcastRank:
    """Per-rank state machine for the event-driven broadcast."""

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle, local: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        tree = ctx.tree
        assert tree is not None
        self.children = list(tree.children[local])
        self.parent = tree.parent[local]
        self.sizes = segment_sizes(ctx.nbytes, ctx.config)
        self.nseg = len(self.sizes)
        self.is_root = self.parent is None
        self.staged = local in ctx.host_staging
        self.payloads: list[Any] = [None] * self.nseg

        # Segments this rank holds (received, or owned by the root).
        self.have: set[int] = set()

        # Child-independent send state (Section 2.2.2). ``sent_done`` counts
        # completed sends per child: completion is per child (quota nseg),
        # not a static product, so the child list may change under faults.
        self.ready: dict[int, list[int]] = {c: [] for c in self.children}
        self.inflight: dict[int, int] = {c: 0 for c in self.children}
        self.sent_done: dict[int, int] = {c: 0 for c in self.children}

        # Receive state: a window of M pre-posted recvs from the parent.
        self.next_recv = 0
        self.recvs_out = 0
        self._recv_pending: dict[int, Any] = {}  # seg -> Request

        # GPU staging flush state (non-root leaders must land data in their
        # own GPU; the root's data already lives there). Dynamic: one flush
        # per first receipt of a segment.
        self.flushes_done = 0
        self.flushes_started = 0

        self._handled_failures: set[int] = set()
        self.finished = False
        self._obs = ctx.world.obs  # cached: the hot callbacks test one local

    # -- helpers -------------------------------------------------------------

    def _gpu_world(self) -> bool:
        return self.ctx.world.gpu_bound

    def _start(self) -> None:
        ctx = self.ctx
        if self.is_root:
            slices = slice_payload(ctx.data if ctx.carry() else None, self.sizes)
            self.payloads = list(slices)
            if self.staged and self._gpu_world():
                # Section 4.1: the root caches segments into CPU memory
                # first; sends are fed from the cache as each pull lands.
                self._root_stage_pulls()
            else:
                for i in range(self.nseg):
                    self._own_segment(i)
        else:
            for _ in range(min(ctx.config.posted_recvs, self.nseg)):
                self._post_recv()
        self._maybe_finish()  # degenerate trees (single rank) finish here

    # -- root GPU caching ------------------------------------------------------

    def _root_stage_pulls(self) -> None:
        """Pull segments GPU -> explicit CPU buffer, window M at a time."""
        self._next_pull = 0
        for _ in range(min(self.ctx.config.posted_recvs, self.nseg)):
            self._post_pull()

    def _post_pull(self) -> None:
        if self._next_pull >= self.nseg:
            return
        seg = self._next_pull
        self._next_pull += 1
        world_rank = self.ctx.comm.world_rank(self.local)

        def on_pulled(flow, seg=seg) -> None:
            rt = self.ctx.rt(self.local)
            rt.cpu.when_available(lambda: (self._post_pull(), self._own_segment(seg)))

        self.ctx.world.fabric.start_transfer(
            world_rank, world_rank, self.sizes[seg], on_pulled,
            MemSpace.GPU, MemSpace.HOST,
        )

    # -- receive path -------------------------------------------------------------

    def _post_recv(self) -> None:
        if self.parent is None or self.next_recv >= self.nseg:
            return
        seg = self.next_recv
        self.next_recv += 1
        req = self.ctx.irecv(
            self.local, self.parent, self.ctx.seg_tag(seg), self.sizes[seg]
        )
        self.recvs_out += 1
        self._recv_pending[seg] = req
        req.add_callback(lambda r, seg=seg: self._on_recv(seg, r.data))

    def _on_recv(self, seg: int, data: Any) -> None:
        self.recvs_out -= 1
        self._recv_pending.pop(seg, None)
        self._post_recv()  # keep M outstanding
        if self._obs is not None:
            self._obs.count("adapt.bcast.segments_received")
        if seg not in self.have:
            self.payloads[seg] = data
            if self.staged and self._gpu_world() and not self.is_root:
                self.flushes_started += 1
                self._flush_to_gpu(seg)
            self._own_segment(seg)
        # else: a recovery re-send of a segment the dead parent already
        # delivered — absorbed, not re-forwarded.
        self._maybe_finish()

    def _flush_to_gpu(self, seg: int) -> None:
        """Asynchronously copy a cached segment host -> own GPU."""
        world_rank = self.ctx.comm.world_rank(self.local)

        def on_flushed(flow) -> None:
            self.flushes_done += 1
            self._maybe_finish()

        self.ctx.world.fabric.start_transfer(
            world_rank, world_rank, self.sizes[seg], on_flushed,
            MemSpace.HOST, MemSpace.GPU,
        )

    # -- send path -----------------------------------------------------------------

    def _own_segment(self, seg: int) -> None:
        self.have.add(seg)
        for child in list(self.children):
            self.ready[child].append(seg)
            self._try_send(child)

    def _try_send(self, child: int) -> None:
        ctx = self.ctx
        while self.inflight[child] < ctx.config.inflight_sends and self.ready[child]:
            seg = self.ready[child].pop(0)
            self.inflight[child] += 1
            self._check_window(child)
            req = ctx.isend(
                self.local, child, ctx.seg_tag(seg), self.sizes[seg], self.payloads[seg]
            )
            req.add_callback(lambda r, child=child: self._on_send_done(child))

    def _check_window(self, child: int) -> None:
        sanitizer = self.ctx.world.sanitizer
        if sanitizer is not None:
            sanitizer.window(
                self.local, child, self.inflight[child],
                self.ctx.config.inflight_sends,
            )

    def _on_send_done(self, child: int) -> None:
        if self._obs is not None:
            self._obs.count("adapt.bcast.segments_forwarded")
        if child in self.inflight:
            self.inflight[child] -= 1
            self.sent_done[child] += 1
            self._check_window(child)
            self._try_send(child)
        self._maybe_finish()

    # -- failure handling ---------------------------------------------------------

    def on_failure(self, dead: int) -> None:
        """A comm-member rank was declared failed (runs on this rank's CPU)."""
        if dead == self.local or dead in self._handled_failures:
            return
        self._handled_failures.add(dead)
        report = self.handle.report
        report.degraded = True
        report.failed_ranks.add(dead)
        self.handle.excuse(dead)
        if dead in self.children:
            self._adopt_orphans_of(dead)
        if self.parent is not None and dead == self.parent:
            self._reparent()

    def on_alive(self, back: int) -> None:
        """A failed-then-retracted rank: the detector withdrew its verdict.

        Tolerated, not re-integrated: the repair (excusal/adoption) already
        re-routed around ``back`` and stays in force; only the retraction is
        recorded. A heal that beats the detection deadline never reaches
        on_failure at all, so the original tree resumes untouched.
        Idempotent — alive-after-failed and alive-without-failed both land
        here safely.
        """
        if back == self.local or back not in self._handled_failures:
            return
        self.handle.report.retractions.add(back)

    def _failed_locals(self) -> set[int]:
        detector = self.ctx.world.failure_detector
        if detector is None:
            return set()
        comm = self.ctx.comm
        return {comm.local_rank(w) for w in detector.failed if w in comm}

    def _live_descendants(self, dead: int) -> list[int]:
        """Live orphans below ``dead``, walking through dead intermediates."""
        tree = self.ctx.tree
        failed = self._failed_locals()
        out: list[int] = []
        stack = list(tree.children[dead])
        while stack:
            r = stack.pop()
            if r in failed:
                stack.extend(tree.children[r])
            else:
                out.append(r)
        return sorted(out)

    def _adopt_orphans_of(self, dead: int) -> None:
        self.children.remove(dead)
        self.ready.pop(dead, None)
        self.inflight.pop(dead, None)
        self.sent_done.pop(dead, None)
        for orphan in self._live_descendants(dead):
            if orphan in self.children:
                continue
            self.children.append(orphan)
            # Replay everything held so far; segments received later are
            # forwarded by the normal path, so the orphan's quota is nseg.
            self.ready[orphan] = sorted(self.have)
            self.inflight[orphan] = 0
            self.sent_done[orphan] = 0
            self.handle.report.adoptions.append((self.local, orphan))
            self._try_send(orphan)
        self._maybe_finish()

    def _reparent(self) -> None:
        """Parent died: re-post the full segment range from the nearest live
        ancestor (who, symmetrically, adopted this rank)."""
        rt = self.ctx.rt(self.local)
        for seg, req in list(self._recv_pending.items()):
            if req.completed:
                continue  # its callback is already queued on this CPU
            rt.cancel_recv(req)
            self.recvs_out -= 1
            del self._recv_pending[seg]
        tree = self.ctx.tree
        failed = self._failed_locals()
        ancestor = tree.parent[self.local]
        while ancestor is not None and ancestor in failed:
            ancestor = tree.parent[ancestor]
        if ancestor is None:
            # The root chain is dead: the data source is gone. Nothing can
            # complete this rank's receive set; excuse it and say so.
            self.parent = None
            self.handle.report.note(
                f"rank {self.local}: no live ancestor, broadcast data lost"
            )
            if not self.finished:
                self.handle.excuse(self.local)
            return
        self.parent = ancestor
        # Re-post the full range: the adopter replays all segments (it
        # cannot know which ones the dead parent delivered), and the ``have``
        # set absorbs the duplicates.
        self.next_recv = 0
        for _ in range(min(self.ctx.config.posted_recvs, self.nseg)):
            self._post_recv()

    # -- completion ---------------------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        if len(self.have) < self.nseg:
            return
        if self.recvs_out > 0:
            return
        if self.flushes_done < self.flushes_started:
            return
        for child in self.children:
            if self.sent_done[child] < self.nseg:
                return
        self.finished = True
        if self.ctx.carry():
            out = self.ctx.data if self.is_root else assemble_payload(self.payloads)
        else:
            out = None
        self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def bcast_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Event-driven pipelined tree broadcast (Figure 4)."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "bcast-adapt")
    for local in ranks if ranks is not None else range(ctx.comm.size):
        rank_state = _AdaptBcastRank(ctx, handle, local)
        # Kick-off happens on the rank's CPU, like entering MPI_Bcast.
        ctx.rt(local).cpu.when_available(rank_state._start)
        # Degraded mode: learn of crashes after the kick-off is queued.
        ctx.subscribe_failures(local, rank_state.on_failure,
                               alive_fn=rank_state.on_alive)
    return handle


class _AdaptReduceRank:
    """Per-rank state machine for the event-driven reduce.

    Mirrors the broadcast: per-child receive windows of ``M`` segments,
    reduction work charged per contribution (CPU, or CUDA streams when
    offloaded — Section 4.2), a per-parent send window of ``N``. A segment
    closes when every *current* child contributed, so a child's death
    reopens nothing and closes whatever it alone was holding up.
    """

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle, local: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        tree = ctx.tree
        assert tree is not None
        self.children = list(tree.children[local])
        self.parent = tree.parent[local]
        self.sizes = segment_sizes(ctx.nbytes, ctx.config)
        self.nseg = len(self.sizes)
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        self.acc: list[Any] = list(slice_payload(own, self.sizes))

        self.contributions = [0] * self.nseg
        self.seg_closed = [False] * self.nseg
        self.next_recv = {c: 0 for c in self.children}
        self._recv_pending: dict[tuple[int, int], Any] = {}  # (child, seg) -> Request
        self.sends_done = 0
        self.inflight_up = 0
        self.ready_up: list[int] = []
        self.segments_reduced = 0
        self.parent_lost = False
        self._handled_failures: set[int] = set()
        self.finished = False
        self._obs = ctx.world.obs

    def _start(self) -> None:
        for child in self.children:
            for _ in range(min(self.ctx.config.posted_recvs, self.nseg)):
                self._post_recv(child)
        # Leaves (no children) close every segment immediately and stream
        # them up, window N; the single-rank root completes here.
        for seg in range(self.nseg):
            self._check_seg(seg)

    def _post_recv(self, child: int) -> None:
        if child not in self.next_recv:
            return  # child died and was dropped
        seg = self.next_recv[child]
        if seg >= self.nseg:
            return
        self.next_recv[child] += 1
        req = self.ctx.irecv(self.local, child, self.ctx.seg_tag(seg), self.sizes[seg])
        self._recv_pending[(child, seg)] = req
        req.add_callback(lambda r, child=child, seg=seg: self._on_recv(child, seg, r.data))

    def _on_recv(self, child: int, seg: int, data: Any) -> None:
        self._recv_pending.pop((child, seg), None)
        self._post_recv(child)
        # Fold this contribution into the accumulator; arithmetic cost is
        # charged to the CPU or offloaded to a CUDA stream.
        if self.ctx.carry():
            self.acc[seg] = self.ctx.combine(self.acc[seg], data)
        self.ctx.charge_reduce(
            self.local, self.sizes[seg], self._on_reduced, seg,
            tag=self.ctx.seg_tag(seg),
        )

    def _on_reduced(self, seg: int) -> None:
        if self._obs is not None:
            self._obs.count("adapt.reduce.contributions_folded")
        self.contributions[seg] += 1
        self._check_seg(seg)

    def _check_seg(self, seg: int) -> None:
        if self.seg_closed[seg] or self.contributions[seg] < len(self.children):
            return
        self.seg_closed[seg] = True
        self.segments_reduced += 1
        if self._obs is not None:
            self._obs.count("adapt.reduce.segments_closed")
        if self.parent is not None and not self.parent_lost:
            self.ready_up.append(seg)
            self._try_send_up()
        self._maybe_finish()

    def _try_send_up(self) -> None:
        ctx = self.ctx
        assert self.parent is not None
        while self.inflight_up < ctx.config.inflight_sends and self.ready_up:
            seg = self.ready_up.pop(0)
            self.inflight_up += 1
            self._check_window()
            req = ctx.isend(
                self.local, self.parent, ctx.seg_tag(seg), self.sizes[seg], self.acc[seg]
            )
            req.add_callback(lambda r: self._on_send_done())

    def _check_window(self) -> None:
        sanitizer = self.ctx.world.sanitizer
        if sanitizer is not None:
            sanitizer.window(
                self.local, self.parent, self.inflight_up,
                self.ctx.config.inflight_sends,
            )

    def _on_send_done(self) -> None:
        self.inflight_up -= 1
        self.sends_done += 1
        self._check_window()
        if not self.parent_lost:
            self._try_send_up()
        self._maybe_finish()

    # -- failure handling ---------------------------------------------------------

    def on_failure(self, dead: int) -> None:
        """A comm-member rank was declared failed (runs on this rank's CPU)."""
        if dead == self.local or dead in self._handled_failures:
            return
        self._handled_failures.add(dead)
        report = self.handle.report
        report.degraded = True
        report.failed_ranks.add(dead)
        self.handle.excuse(dead)
        if dead in self.children:
            self._drop_child(dead)
        if self.parent is not None and dead == self.parent:
            self._abandon_upward(dead)

    def on_alive(self, back: int) -> None:
        """Alive-after-failed retraction: tolerated, not re-integrated (the
        dropped child / abandoned parent repair stays in force). Idempotent."""
        if back == self.local or back not in self._handled_failures:
            return
        self.handle.report.retractions.add(back)

    def _drop_child(self, dead: int) -> None:
        """Skip the dead subtree: contributions it already delivered stay
        folded; segments it was holding up close without it."""
        self.children.remove(dead)
        self.next_recv.pop(dead, None)
        rt = self.ctx.rt(self.local)
        for (child, seg), req in list(self._recv_pending.items()):
            if child != dead or req.completed:
                continue
            rt.cancel_recv(req)
            del self._recv_pending[(child, seg)]
        self.handle.report.note(
            f"rank {self.local}: dead child {dead}'s remaining contribution skipped"
        )
        for seg in range(self.nseg):
            self._check_seg(seg)

    def _abandon_upward(self, dead: int) -> None:
        """Parent died: this subtree's contribution has nowhere to go. Finish
        collecting from the children (their sends need draining) and complete
        locally, like a root without a result."""
        self.parent_lost = True
        self.ready_up.clear()
        self.handle.report.lost_subtrees.append(self.local)
        self.handle.report.note(
            f"rank {self.local}: parent {dead} died, subtree contribution lost"
        )
        self._maybe_finish()

    # -- completion ---------------------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        if self.parent is not None and not self.parent_lost:
            done = self.sends_done >= self.nseg
        else:
            done = self.segments_reduced >= self.nseg
        if done:
            self.finished = True
            out = (
                assemble_payload(self.acc)
                if (self.ctx.carry() and self.parent is None)
                else None
            )
            self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def reduce_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Event-driven pipelined tree reduce."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "reduce-adapt")
    for local in ranks if ranks is not None else range(ctx.comm.size):
        rank_state = _AdaptReduceRank(ctx, handle, local)
        ctx.rt(local).cpu.when_available(rank_state._start)
        ctx.subscribe_failures(local, rank_state.on_failure,
                               alive_fn=rank_state.on_alive)
    return handle
