"""ADAPT event-driven collectives — the paper's core contribution
(Algorithm 3 / Figure 4).

No rank ever waits. Completion callbacks attached to low-level non-blocking
operations post the next operations, keeping, per rank:

* **segment independence** — up to ``N`` sends in flight per child, refilled
  from the segment pool as each completes; ``M > N`` receives pre-posted from
  the parent so segments never arrive unexpected (Section 2.2.1);
* **child independence** — every child has its own ready-queue and in-flight
  window, so a slow child never throttles its siblings (Section 2.2.2).

A collective is "complete" on a rank when its recvs, sends, reductions and
(GPU runs) staging flushes have all drained — mirroring the single Open MPI
request ADAPT keeps per collective.

GPU extensions (Section 4): ranks in ``ctx.host_staging`` (node leaders and
the root) receive and send through an explicit CPU buffer, so one PCIe
device-to-host pull serves all outgoing copies, and the segment is flushed to
the leader's own GPU by an asynchronous copy that overlaps with forwarding.
Reductions may be offloaded to simulated CUDA streams
(``ctx.reduce_on_gpu``), freeing the host CPU (Section 4.2).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import (
    assemble_payload,
    segment_sizes,
    slice_payload,
)
from repro.network.fabric import MemSpace


class _AdaptBcastRank:
    """Per-rank state machine for the event-driven broadcast."""

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle, local: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        tree = ctx.tree
        assert tree is not None
        self.children = tree.children[local]
        self.parent = tree.parent[local]
        self.sizes = segment_sizes(ctx.nbytes, ctx.config)
        self.nseg = len(self.sizes)
        self.is_root = self.parent is None
        self.staged = local in ctx.host_staging
        self.payloads: list[Any] = [None] * self.nseg

        # Child-independent send state (Section 2.2.2).
        self.ready: dict[int, list[int]] = {c: [] for c in self.children}
        self.inflight: dict[int, int] = {c: 0 for c in self.children}
        self.sends_done = 0
        self.sends_total = self.nseg * len(self.children)

        # Receive state.
        self.recvs_done = 0
        self.next_recv = 0

        # GPU staging flush state (non-root leaders must land data in their
        # own GPU; the root's data already lives there).
        self.flushes_done = 0
        self.flushes_total = (
            self.nseg if (self.staged and self._gpu_world() and not self.is_root) else 0
        )

        self.finished = False

    # -- helpers -------------------------------------------------------------

    def _gpu_world(self) -> bool:
        return self.ctx.world.gpu_bound

    def _start(self) -> None:
        ctx = self.ctx
        if self.is_root:
            slices = slice_payload(ctx.data if ctx.carry() else None, self.sizes)
            self.payloads = list(slices)
            if self.staged and self._gpu_world():
                # Section 4.1: the root caches segments into CPU memory
                # first; sends are fed from the cache as each pull lands.
                self._root_stage_pulls()
            else:
                for i in range(self.nseg):
                    self._segment_ready(i)
        else:
            for _ in range(min(ctx.config.posted_recvs, self.nseg)):
                self._post_recv()
        self._maybe_finish()  # degenerate trees (single rank) finish here

    # -- root GPU caching ------------------------------------------------------

    def _root_stage_pulls(self) -> None:
        """Pull segments GPU -> explicit CPU buffer, window M at a time."""
        self._next_pull = 0
        for _ in range(min(self.ctx.config.posted_recvs, self.nseg)):
            self._post_pull()

    def _post_pull(self) -> None:
        if self._next_pull >= self.nseg:
            return
        seg = self._next_pull
        self._next_pull += 1
        world_rank = self.ctx.comm.world_rank(self.local)

        def on_pulled(flow, seg=seg) -> None:
            rt = self.ctx.rt(self.local)
            rt.cpu.when_available(lambda: (self._post_pull(), self._segment_ready(seg)))

        self.ctx.world.fabric.start_transfer(
            world_rank, world_rank, self.sizes[seg], on_pulled,
            MemSpace.GPU, MemSpace.HOST,
        )

    # -- receive path -------------------------------------------------------------

    def _post_recv(self) -> None:
        if self.next_recv >= self.nseg:
            return
        seg = self.next_recv
        self.next_recv += 1
        assert self.parent is not None
        req = self.ctx.irecv(self.local, self.parent, self.ctx.seg_tag(seg), self.sizes[seg])
        req.add_callback(lambda r, seg=seg: self._on_recv(seg, r.data))

    def _on_recv(self, seg: int, data: Any) -> None:
        self.recvs_done += 1
        self.payloads[seg] = data
        self._post_recv()  # keep M outstanding
        if self.staged and self._gpu_world():
            self._flush_to_gpu(seg)
        self._segment_ready(seg)
        self._maybe_finish()

    def _flush_to_gpu(self, seg: int) -> None:
        """Asynchronously copy a cached segment host -> own GPU."""
        world_rank = self.ctx.comm.world_rank(self.local)

        def on_flushed(flow) -> None:
            self.flushes_done += 1
            self._maybe_finish()

        self.ctx.world.fabric.start_transfer(
            world_rank, world_rank, self.sizes[seg], on_flushed,
            MemSpace.HOST, MemSpace.GPU,
        )

    # -- send path -----------------------------------------------------------------

    def _segment_ready(self, seg: int) -> None:
        for child in self.children:
            self.ready[child].append(seg)
            self._try_send(child)

    def _try_send(self, child: int) -> None:
        ctx = self.ctx
        while self.inflight[child] < ctx.config.inflight_sends and self.ready[child]:
            seg = self.ready[child].pop(0)
            self.inflight[child] += 1
            self._check_window(child)
            req = ctx.isend(
                self.local, child, ctx.seg_tag(seg), self.sizes[seg], self.payloads[seg]
            )
            req.add_callback(lambda r, child=child: self._on_send_done(child))

    def _check_window(self, child: int) -> None:
        sanitizer = self.ctx.world.sanitizer
        if sanitizer is not None:
            sanitizer.window(
                self.local, child, self.inflight[child],
                self.ctx.config.inflight_sends,
            )

    def _on_send_done(self, child: int) -> None:
        self.inflight[child] -= 1
        self.sends_done += 1
        self._check_window(child)
        self._try_send(child)
        self._maybe_finish()

    # -- completion ---------------------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        recvs_needed = 0 if self.is_root else self.nseg
        if (
            self.recvs_done >= recvs_needed
            and self.sends_done >= self.sends_total
            and self.flushes_done >= self.flushes_total
        ):
            self.finished = True
            if self.ctx.carry():
                out = self.ctx.data if self.is_root else assemble_payload(self.payloads)
            else:
                out = None
            self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def bcast_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Event-driven pipelined tree broadcast (Figure 4)."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "bcast-adapt")
    for local in ranks if ranks is not None else range(ctx.comm.size):
        rank_state = _AdaptBcastRank(ctx, handle, local)
        # Kick-off happens on the rank's CPU, like entering MPI_Bcast.
        ctx.rt(local).cpu.when_available(rank_state._start)
    return handle


class _AdaptReduceRank:
    """Per-rank state machine for the event-driven reduce.

    Mirrors the broadcast: per-child receive windows of ``M`` segments,
    reduction work charged per contribution (CPU, or CUDA streams when
    offloaded — Section 4.2), a per-parent send window of ``N``.
    """

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle, local: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        tree = ctx.tree
        assert tree is not None
        self.children = tree.children[local]
        self.parent = tree.parent[local]
        self.sizes = segment_sizes(ctx.nbytes, ctx.config)
        self.nseg = len(self.sizes)
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        self.acc: list[Any] = list(slice_payload(own, self.sizes))

        self.contributions = [0] * self.nseg
        self.next_recv = {c: 0 for c in self.children}
        self.sends_done = 0
        self.inflight_up = 0
        self.ready_up: list[int] = []
        self.segments_reduced = 0
        self.finished = False

    def _start(self) -> None:
        if not self.children:
            if self.parent is None:
                # Single-rank communicator: nothing to reduce.
                self.segments_reduced = self.nseg
                self._maybe_finish()
                return
            # Leaf: stream own segments to the parent, window N.
            for seg in range(self.nseg):
                self.ready_up.append(seg)
            self._try_send_up()
            return
        for child in self.children:
            for _ in range(min(self.ctx.config.posted_recvs, self.nseg)):
                self._post_recv(child)

    def _post_recv(self, child: int) -> None:
        seg = self.next_recv[child]
        if seg >= self.nseg:
            return
        self.next_recv[child] += 1
        req = self.ctx.irecv(self.local, child, self.ctx.seg_tag(seg), self.sizes[seg])
        req.add_callback(lambda r, child=child, seg=seg: self._on_recv(child, seg, r.data))

    def _on_recv(self, child: int, seg: int, data: Any) -> None:
        self._post_recv(child)
        # Fold this contribution into the accumulator; arithmetic cost is
        # charged to the CPU or offloaded to a CUDA stream.
        if self.ctx.carry():
            self.acc[seg] = self.ctx.combine(self.acc[seg], data)
        self.ctx.charge_reduce(
            self.local, self.sizes[seg], self._on_reduced, seg,
            tag=self.ctx.seg_tag(seg),
        )

    def _on_reduced(self, seg: int) -> None:
        self.contributions[seg] += 1
        if self.contributions[seg] == len(self.children):
            self.segments_reduced += 1
            if self.parent is not None:
                self.ready_up.append(seg)
                self._try_send_up()
            self._maybe_finish()

    def _try_send_up(self) -> None:
        ctx = self.ctx
        assert self.parent is not None
        while self.inflight_up < ctx.config.inflight_sends and self.ready_up:
            seg = self.ready_up.pop(0)
            self.inflight_up += 1
            self._check_window()
            req = ctx.isend(
                self.local, self.parent, ctx.seg_tag(seg), self.sizes[seg], self.acc[seg]
            )
            req.add_callback(lambda r: self._on_send_done())

    def _check_window(self) -> None:
        sanitizer = self.ctx.world.sanitizer
        if sanitizer is not None:
            sanitizer.window(
                self.local, self.parent, self.inflight_up,
                self.ctx.config.inflight_sends,
            )

    def _on_send_done(self) -> None:
        self.inflight_up -= 1
        self.sends_done += 1
        self._check_window()
        self._try_send_up()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        if self.parent is not None:
            done = self.sends_done >= self.nseg
        else:
            done = self.segments_reduced >= self.nseg
        if done:
            self.finished = True
            out = (
                assemble_payload(self.acc)
                if (self.ctx.carry() and self.parent is None)
                else None
            )
            self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def reduce_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
) -> CollectiveHandle:
    """Event-driven pipelined tree reduce."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "reduce-adapt")
    for local in ranks if ranks is not None else range(ctx.comm.size):
        rank_state = _AdaptReduceRank(ctx, handle, local)
        ctx.rt(local).cpu.when_available(rank_state._start)
    return handle
