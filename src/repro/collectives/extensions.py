"""Additional collectives on the ADAPT event-driven framework.

The paper's Section 2.2.3 argues the event-driven basic building block
(Algorithm 3) extends to any collective built from send-to-children /
receive-from-parent patterns, and Section 7 lists "increasing the collective
communications coverage" as future work. This module implements that
extension: scatter, gather, allreduce and barrier, all callback-driven on
the same trees and runtime.

* **scatter** — each tree edge carries the subtree's block range; forwarding
  to a child starts the moment the child's range is available (no sibling
  ordering).
* **gather** — the reverse: a rank forwards its subtree's assembled range
  upward as contributions drain in.
* **allreduce** — an ADAPT reduce chained into an ADAPT broadcast at the
  root, both pipelined, with the broadcast of a segment starting as soon as
  that segment is fully reduced (segment-level overlap the two-phase
  composition of Section 3.1 could not achieve).
* **barrier** — a zero-byte gather-release over the tree.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.collectives.adapt import bcast_adapt, reduce_adapt
from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import segment_sizes


def _block_ranges(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    base, rem = divmod(nbytes, nparts)
    out, off = [], 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


def _subtree(tree, rank: int) -> list[int]:
    return [rank] + list(tree.descendants(rank))


class _AdaptScatterRank:
    """Per-rank state machine for the event-driven scatter.

    Degraded mode (DESIGN.md S20): a dead child's live descendants are
    adopted — their subtree ranges re-sliced out of this rank's buffer and
    re-sent; an orphan cancels its receive from the dead parent and re-posts
    the full range from its nearest live ancestor. Ranges are computed on
    the *original* tree on both sides, so adopter and orphan always agree on
    sizes regardless of when each learns of a death.
    """

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle,
                 local: int, base_tag: int, blocks: list):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        self.base_tag = base_tag
        self.blocks = blocks
        tree = ctx.tree
        assert tree is not None
        self.tree = tree
        self.children = list(tree.children[local])
        self.parent = tree.parent[local]
        self.received = self.parent is None
        self.buf: Any = None
        self.sent_to: set[int] = set()
        self.sends_open: set[int] = set()
        self._recv_req: Any = None
        self._handled_failures: set[int] = set()
        self.finished = False

    # -- range helpers --------------------------------------------------------

    def _subtree_bytes(self, r: int) -> int:
        return sum(self.blocks[m][1] for m in _subtree(self.tree, r))

    def _own_block(self) -> Any:
        if self.buf is None:
            return None
        off = 0
        for m in sorted(_subtree(self.tree, self.local)):
            if m == self.local:
                return self.buf[off : off + self.blocks[m][1]]
            off += self.blocks[m][1]
        raise AssertionError  # pragma: no cover

    def _range_of(self, target: int) -> Any:
        """Slice ``target``'s subtree range out of my (member-ordered) buffer."""
        if self.buf is None:
            return None
        wanted = set(_subtree(self.tree, target))
        chunks, off = [], 0
        for m in sorted(_subtree(self.tree, self.local)):
            ln = self.blocks[m][1]
            if m in wanted:
                chunks.append(self.buf[off : off + ln])
            off += ln
        return np.concatenate(chunks) if chunks else None

    def _failed_locals(self) -> set[int]:
        detector = self.ctx.world.failure_detector
        if detector is None:
            return set()
        comm = self.ctx.comm
        return {comm.local_rank(w) for w in detector.failed if w in comm}

    # -- data flow ------------------------------------------------------------

    def _start(self) -> None:
        ctx = self.ctx
        if self.parent is None:
            payload = (
                np.asarray(ctx.data).reshape(-1).view(np.uint8)
                if (ctx.carry() and ctx.data is not None)
                else None
            )
            if payload is not None:
                self.buf = np.concatenate([
                    payload[self.blocks[m][0] : self.blocks[m][0] + self.blocks[m][1]]
                    for m in sorted(_subtree(self.tree, self.local))
                ])
        else:
            self._post_recv(self.parent)
        self._flush_sends()
        self._maybe_finish()

    def _post_recv(self, src: int) -> None:
        req = self.ctx.irecv(
            self.local, src, self.base_tag + self.local,
            self._subtree_bytes(self.local),
        )
        self._recv_req = req
        req.add_callback(self._on_recv)

    def _on_recv(self, r) -> None:
        self._recv_req = None
        if self.received:
            return  # a recovery replay of a range the dead parent delivered
        self.buf = (
            np.asarray(r.data).reshape(-1).view(np.uint8)
            if (self.ctx.carry() and r.data is not None)
            else None
        )
        self.received = True
        self._flush_sends()
        self._maybe_finish()

    def _flush_sends(self) -> None:
        if not self.received:
            return
        for child in list(self.children):
            if child in self.sent_to:
                continue
            self.sent_to.add(child)
            self.sends_open.add(child)
            req = self.ctx.isend(
                self.local, child, self.base_tag + child,
                self._subtree_bytes(child), self._range_of(child),
            )
            req.add_callback(lambda r, child=child: self._on_send_done(child))

    def _on_send_done(self, child: int) -> None:
        self.sends_open.discard(child)
        self._maybe_finish()

    # -- failure handling -----------------------------------------------------

    def on_failure(self, dead: int) -> None:
        """A comm-member rank was declared failed (runs on this rank's CPU)."""
        if dead == self.local or dead in self._handled_failures:
            return
        self._handled_failures.add(dead)
        report = self.handle.report
        report.degraded = True
        report.failed_ranks.add(dead)
        self.handle.excuse(dead)
        failed = self._failed_locals()
        if dead in self.children:
            self.children.remove(dead)
            self.sends_open.discard(dead)
            for orphan in self._live_descendants(dead, failed):
                if orphan in self.children or orphan in self.sent_to:
                    continue
                self.children.append(orphan)
                report.adoptions.append((self.local, orphan))
            self._flush_sends()
        if self.parent is not None and dead == self.parent:
            self._reparent(failed)
        if self.tree.root in failed and not self.received and not self.finished:
            # The distribution source is gone: nothing upstream can ever
            # deliver this subtree's range.
            report.note(f"rank {self.local}: root dead, scatter range lost")
            self.handle.excuse(self.local)
        self._maybe_finish()

    def on_alive(self, back: int) -> None:
        """Alive-after-failed retraction: tolerated, not re-integrated (the
        adoption/re-parenting repair stays in force). Idempotent."""
        if back == self.local or back not in self._handled_failures:
            return
        self.handle.report.retractions.add(back)

    def _live_descendants(self, dead: int, failed: set[int]) -> list[int]:
        out: list[int] = []
        stack = list(self.tree.children[dead])
        while stack:
            r = stack.pop()
            if r in failed:
                stack.extend(self.tree.children[r])
            else:
                out.append(r)
        return sorted(out)

    def _reparent(self, failed: set[int]) -> None:
        if self._recv_req is not None and not self._recv_req.completed:
            self.ctx.rt(self.local).cancel_recv(self._recv_req)
            self._recv_req = None
        ancestor = self.tree.parent[self.local]
        while ancestor is not None and ancestor in failed:
            ancestor = self.tree.parent[ancestor]
        if ancestor is None:
            self.parent = None
            self.handle.report.note(
                f"rank {self.local}: no live ancestor, scatter range lost"
            )
            if not self.finished:
                self.handle.excuse(self.local)
            return
        self.parent = ancestor
        # Post the replay receive even if the range already arrived — the
        # adopter replays unconditionally, and an unmatched rendezvous send
        # would strand it; the `received` guard absorbs the duplicate.
        self._post_recv(ancestor)

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished or not self.received or self.sends_open:
            return
        self.finished = True
        out = self._own_block() if self.ctx.carry() else None
        self.handle.mark_done(self.local, self.ctx.world.engine.now, out)


def scatter_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven tree scatter: ``ctx.nbytes`` is the total payload; rank r
    ends up with block r (communicator order). ``ctx.data`` (data mode) is
    the root's full buffer."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "scatter-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P)
    base_tag = ctx.scratch

    for local in ranks if ranks is not None else range(P):
        rank_state = _AdaptScatterRank(ctx, handle, local, base_tag, blocks)
        ctx.rt(local).cpu.when_available(rank_state._start)
        ctx.subscribe_failures(local, rank_state.on_failure,
                               alive_fn=rank_state.on_alive)
    return handle


def gather_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven tree gather: rank r contributes ``ctx.data[r]`` (data
    mode); the root assembles blocks in communicator order."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "gather-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P)
    base_tag = ctx.scratch

    def subtree_bytes(r: int) -> int:
        return sum(blocks[m][1] for m in _subtree(tree, r))

    def start_rank(local: int) -> None:
        children = tree.children[local]
        parent = tree.parent[local]
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        pieces: dict[int, Any] = {
            local: np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        }
        pending = {"children": len(children)}

        def assembled() -> Any:
            members = sorted(_subtree(tree, local))
            if not ctx.carry() or any(pieces.get(m) is None for m in members):
                return None
            return np.concatenate([pieces[m] for m in members])

        def finish_or_forward() -> None:
            if pending["children"] > 0:
                return
            if parent is None:
                handle.mark_done(local, ctx.world.engine.now, assembled())
                return
            req = ctx.isend(
                local, parent, base_tag + local, subtree_bytes(local), assembled()
            )
            req.add_callback(
                lambda r: handle.mark_done(local, ctx.world.engine.now, None)
            )

        for child in children:
            req = ctx.irecv(local, child, base_tag + child, subtree_bytes(child))

            def on_recv(r, child=child) -> None:
                if ctx.carry() and r.data is not None:
                    buf = np.asarray(r.data).reshape(-1).view(np.uint8)
                    off = 0
                    for m in sorted(_subtree(tree, child)):
                        ln = blocks[m][1]
                        pieces[m] = buf[off : off + ln]
                        off += ln
                pending["children"] -= 1
                finish_or_forward()

            req.add_callback(on_recv)
        finish_or_forward()

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle


def allreduce_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven allreduce: pipelined reduce to the root chained into a
    pipelined broadcast, overlapping at segment granularity."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "allreduce-adapt")
    handle.name = "allreduce-adapt"

    reduce_handle = reduce_adapt(ctx, ranks=ranks)
    nseg = len(segment_sizes(ctx.nbytes, ctx.config))

    def on_reduce_done(local: int, _time: float) -> None:
        if local != ctx.root:
            return
        # Root holds the full reduction: broadcast it back down the same
        # tree. A fresh context keeps tags distinct.
        bctx = CollectiveContext(
            ctx.comm, ctx.root, ctx.nbytes, ctx.config, tree=tree,
            data=reduce_handle.output.get(ctx.root),
            host_staging=ctx.host_staging,
        )
        bhandle = bcast_adapt(bctx)
        bhandle.on_rank_done.append(
            lambda l, t: handle.mark_done(l, t, bhandle.output.get(l))
        )
        for l, t in list(bhandle.done_time.items()):
            handle.mark_done(l, t, bhandle.output.get(l))

    reduce_handle.on_rank_done.append(on_reduce_done)
    for l, t in list(reduce_handle.done_time.items()):
        on_reduce_done(l, t)
    return handle


class _AdaptBarrierRank:
    """Per-rank state machine for the tree barrier.

    Degraded mode (DESIGN.md S20): a dead child is dropped from the up-count
    and its live descendants adopted (their up-recvs re-posted here, release
    owed to them); an orphan re-sends its up-notification to the nearest
    live ancestor and re-posts the release recv from it. A rank whose whole
    ancestor chain died acts as its own subtree root. All messages are
    zero-byte (always eager), so sends complete locally and need no
    write-off accounting.
    """

    def __init__(self, ctx: CollectiveContext, handle: CollectiveHandle,
                 local: int, base_tag: int):
        self.ctx = ctx
        self.handle = handle
        self.local = local
        self.base_tag = base_tag
        self.P = ctx.comm.size
        tree = ctx.tree
        assert tree is not None
        self.tree = tree
        self.children = list(tree.children[local])
        self.parent = tree.parent[local]
        self.up_pending: set[int] = set(self.children)
        self.sent_up = False
        self.released = False
        self._up_reqs: dict[int, Any] = {}
        self._release_req: Any = None
        self._handled_failures: set[int] = set()

    def _start(self) -> None:
        if self.parent is not None:
            # Pre-post the release recv at entry (Section 2.2.1): it can
            # never arrive unexpected, and the release phase carries no
            # synchronization dependency on the gather phase.
            self._post_release_recv(self.parent)
        for child in list(self.children):
            self._post_up_recv(child)
        self._check_up()

    def _post_release_recv(self, src: int) -> None:
        req = self.ctx.irecv(
            self.local, src, self.base_tag + self.P + self.local, 0
        )
        self._release_req = req
        req.add_callback(lambda r: self._release())

    def _post_up_recv(self, child: int) -> None:
        req = self.ctx.irecv(self.local, child, self.base_tag + child, 0)
        self._up_reqs[child] = req
        req.add_callback(lambda r, child=child: self._on_up(child))

    def _on_up(self, child: int) -> None:
        self._up_reqs.pop(child, None)
        self.up_pending.discard(child)
        self._check_up()

    def _check_up(self) -> None:
        if self.up_pending:
            return
        if self.parent is None:
            self._release()
        elif not self.sent_up:
            self.sent_up = True
            self.ctx.isend(self.local, self.parent, self.base_tag + self.local, 0)

    def _release(self) -> None:
        if self.released:
            return
        self.released = True
        for child in self.children:
            self.ctx.isend(self.local, child, self.base_tag + self.P + child, 0)
        self.handle.mark_done(self.local, self.ctx.world.engine.now)

    # -- failure handling -----------------------------------------------------

    def _failed_locals(self) -> set[int]:
        detector = self.ctx.world.failure_detector
        if detector is None:
            return set()
        comm = self.ctx.comm
        return {comm.local_rank(w) for w in detector.failed if w in comm}

    def on_failure(self, dead: int) -> None:
        """A comm-member rank was declared failed (runs on this rank's CPU)."""
        if dead == self.local or dead in self._handled_failures:
            return
        self._handled_failures.add(dead)
        report = self.handle.report
        report.degraded = True
        report.failed_ranks.add(dead)
        self.handle.excuse(dead)
        failed = self._failed_locals()
        if dead in self.children:
            self.children.remove(dead)
            self.up_pending.discard(dead)
            req = self._up_reqs.pop(dead, None)
            if req is not None and not req.completed:
                self.ctx.rt(self.local).cancel_recv(req)
            for orphan in self._live_descendants(dead, failed):
                if orphan in self.children:
                    continue
                self.children.append(orphan)
                report.adoptions.append((self.local, orphan))
                if not self.released:
                    # The orphan may re-send an up-notification here; it is
                    # NOT added to up_pending — its arrival at the dead
                    # parent is unknowable, so the barrier's semantics weaken
                    # to "every survivor entered" rather than "every
                    # survivor's subtree entered", which degraded mode
                    # accepts. The recv absorbs the resend either way.
                    self._post_up_recv(orphan)
                else:
                    # Already released: the orphan only needs its exit.
                    self.ctx.isend(
                        self.local, orphan, self.base_tag + self.P + orphan, 0
                    )
            self._check_up()
        if self.parent is not None and dead == self.parent:
            self._reparent(failed)

    def on_alive(self, back: int) -> None:
        """Alive-after-failed retraction: tolerated, not re-integrated (the
        weakened-barrier repair stays in force). Idempotent."""
        if back == self.local or back not in self._handled_failures:
            return
        self.handle.report.retractions.add(back)

    def _live_descendants(self, dead: int, failed: set[int]) -> list[int]:
        out: list[int] = []
        stack = list(self.tree.children[dead])
        while stack:
            r = stack.pop()
            if r in failed:
                stack.extend(self.tree.children[r])
            else:
                out.append(r)
        return sorted(out)

    def _reparent(self, failed: set[int]) -> None:
        if self._release_req is not None and not self._release_req.completed:
            self.ctx.rt(self.local).cancel_recv(self._release_req)
            self._release_req = None
        ancestor = self.tree.parent[self.local]
        while ancestor is not None and ancestor in failed:
            ancestor = self.tree.parent[ancestor]
        self.parent = ancestor
        if ancestor is None:
            # Whole ancestor chain is dead: act as this subtree's root.
            self.handle.report.note(
                f"rank {self.local}: no live ancestor, completing barrier as "
                f"subtree root"
            )
            self._check_up()
            return
        if not self.released:
            self._post_release_recv(ancestor)
        if self.sent_up:
            # The up-notification went into a corpse; replay it to the
            # adopter (which posted a matching recv at adoption time).
            self.ctx.isend(
                self.local, ancestor, self.base_tag + self.local, 0
            )
        else:
            self._check_up()


def barrier_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Tree barrier: zero-byte gather up, zero-byte release down."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "barrier-adapt")
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(2 * P)
    base_tag = ctx.scratch

    for local in ranks if ranks is not None else range(P):
        rank_state = _AdaptBarrierRank(ctx, handle, local, base_tag)
        ctx.rt(local).cpu.when_available(rank_state._start)
        ctx.subscribe_failures(local, rank_state.on_failure,
                               alive_fn=rank_state.on_alive)
    return handle
