"""Additional collectives on the ADAPT event-driven framework.

The paper's Section 2.2.3 argues the event-driven basic building block
(Algorithm 3) extends to any collective built from send-to-children /
receive-from-parent patterns, and Section 7 lists "increasing the collective
communications coverage" as future work. This module implements that
extension: scatter, gather, allreduce and barrier, all callback-driven on
the same trees and runtime.

* **scatter** — each tree edge carries the subtree's block range; forwarding
  to a child starts the moment the child's range is available (no sibling
  ordering).
* **gather** — the reverse: a rank forwards its subtree's assembled range
  upward as contributions drain in.
* **allreduce** — an ADAPT reduce chained into an ADAPT broadcast at the
  root, both pipelined, with the broadcast of a segment starting as soon as
  that segment is fully reduced (segment-level overlap the two-phase
  composition of Section 3.1 could not achieve).
* **barrier** — a zero-byte gather-release over the tree.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.collectives.adapt import bcast_adapt, reduce_adapt
from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import segment_sizes


def _block_ranges(nbytes: int, nparts: int) -> list[tuple[int, int]]:
    base, rem = divmod(nbytes, nparts)
    out, off = [], 0
    for i in range(nparts):
        ln = base + (1 if i < rem else 0)
        out.append((off, ln))
        off += ln
    return out


def _subtree(tree, rank: int) -> list[int]:
    return [rank] + list(tree.descendants(rank))


def scatter_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven tree scatter: ``ctx.nbytes`` is the total payload; rank r
    ends up with block r (communicator order). ``ctx.data`` (data mode) is
    the root's full buffer."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "scatter-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P)
    base_tag = ctx.scratch
    payload = (
        np.asarray(ctx.data).reshape(-1).view(np.uint8)
        if (ctx.carry() and ctx.data is not None)
        else None
    )

    def subtree_bytes(r: int) -> int:
        return sum(blocks[m][1] for m in _subtree(tree, r))

    def subtree_slice(r: int, buf) -> Any:
        if buf is None:
            return None
        members = sorted(_subtree(tree, r))
        return np.concatenate(
            [buf[blocks[m][0] : blocks[m][0] + blocks[m][1]] for m in members]
        )

    def start_rank(local: int) -> None:
        children = tree.children[local]
        parent = tree.parent[local]
        state = {"forwarded": 0, "have": None, "received": parent is None}

        def own_block(buf) -> Any:
            if buf is None:
                return None
            members = sorted(_subtree(tree, local))
            off = 0
            for m in members:
                if m == local:
                    return buf[off : off + blocks[m][1]]
                off += blocks[m][1]
            raise AssertionError  # pragma: no cover

        def maybe_done() -> None:
            if state["received"] and state["forwarded"] == len(children):
                out = own_block(state["have"]) if ctx.carry() else None
                handle.mark_done(local, ctx.world.engine.now, out)

        def forward(buf) -> None:
            for child in children:
                # Re-slice this child's subtree range out of my range. My
                # range is ordered by ascending member rank.
                def child_range(buf=buf, child=child):
                    if buf is None:
                        return None
                    members = sorted(_subtree(tree, local))
                    target = set(_subtree(tree, child))
                    chunks = []
                    off = 0
                    for m in members:
                        ln = blocks[m][1]
                        if m in target:
                            chunks.append(buf[off : off + ln])
                        off += ln
                    return np.concatenate(chunks) if chunks else None

                req = ctx.isend(
                    local, child, base_tag + child, subtree_bytes(child),
                    child_range(),
                )
                req.add_callback(lambda r: (_sent(), None)[1])

        def _sent() -> None:
            state["forwarded"] += 1
            maybe_done()

        if parent is None:
            if payload is not None:
                members = sorted(_subtree(tree, local))
                state["have"] = np.concatenate(
                    [payload[blocks[m][0] : blocks[m][0] + blocks[m][1]] for m in members]
                )
            forward(state["have"])
            maybe_done()
        else:
            req = ctx.irecv(local, parent, base_tag + local, subtree_bytes(local))

            def on_recv(r) -> None:
                buf = (
                    np.asarray(r.data).reshape(-1).view(np.uint8)
                    if (ctx.carry() and r.data is not None)
                    else None
                )
                state["have"] = buf
                state["received"] = True
                forward(buf)
                maybe_done()

            req.add_callback(on_recv)

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle


def gather_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven tree gather: rank r contributes ``ctx.data[r]`` (data
    mode); the root assembles blocks in communicator order."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "gather-adapt")
    blocks = _block_ranges(ctx.nbytes, P)
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(P)
    base_tag = ctx.scratch

    def subtree_bytes(r: int) -> int:
        return sum(blocks[m][1] for m in _subtree(tree, r))

    def start_rank(local: int) -> None:
        children = tree.children[local]
        parent = tree.parent[local]
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        pieces: dict[int, Any] = {
            local: np.asarray(own).reshape(-1).view(np.uint8) if own is not None else None
        }
        pending = {"children": len(children)}

        def assembled() -> Any:
            members = sorted(_subtree(tree, local))
            if not ctx.carry() or any(pieces.get(m) is None for m in members):
                return None
            return np.concatenate([pieces[m] for m in members])

        def finish_or_forward() -> None:
            if pending["children"] > 0:
                return
            if parent is None:
                handle.mark_done(local, ctx.world.engine.now, assembled())
                return
            req = ctx.isend(
                local, parent, base_tag + local, subtree_bytes(local), assembled()
            )
            req.add_callback(
                lambda r: handle.mark_done(local, ctx.world.engine.now, None)
            )

        for child in children:
            req = ctx.irecv(local, child, base_tag + child, subtree_bytes(child))

            def on_recv(r, child=child) -> None:
                if ctx.carry() and r.data is not None:
                    buf = np.asarray(r.data).reshape(-1).view(np.uint8)
                    off = 0
                    for m in sorted(_subtree(tree, child)):
                        ln = blocks[m][1]
                        pieces[m] = buf[off : off + ln]
                        off += ln
                pending["children"] -= 1
                finish_or_forward()

            req.add_callback(on_recv)
        finish_or_forward()

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle


def allreduce_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Event-driven allreduce: pipelined reduce to the root chained into a
    pipelined broadcast, overlapping at segment granularity."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    handle = handle or new_handle(ctx, "allreduce-adapt")
    handle.name = "allreduce-adapt"

    reduce_handle = reduce_adapt(ctx, ranks=ranks)
    nseg = len(segment_sizes(ctx.nbytes, ctx.config))

    def on_reduce_done(local: int, _time: float) -> None:
        if local != ctx.root:
            return
        # Root holds the full reduction: broadcast it back down the same
        # tree. A fresh context keeps tags distinct.
        bctx = CollectiveContext(
            ctx.comm, ctx.root, ctx.nbytes, ctx.config, tree=tree,
            data=reduce_handle.output.get(ctx.root),
            host_staging=ctx.host_staging,
        )
        bhandle = bcast_adapt(bctx)
        bhandle.on_rank_done.append(
            lambda l, t: handle.mark_done(l, t, bhandle.output.get(l))
        )
        for l, t in list(bhandle.done_time.items()):
            handle.mark_done(l, t, bhandle.output.get(l))

    reduce_handle.on_rank_done.append(on_reduce_done)
    for l, t in list(reduce_handle.done_time.items()):
        on_reduce_done(l, t)
    return handle


def barrier_adapt(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks=None,
) -> CollectiveHandle:
    """Tree barrier: zero-byte gather up, zero-byte release down."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    comm = ctx.comm
    P = comm.size
    first_call = handle is None
    handle = handle or new_handle(ctx, "barrier-adapt")
    if first_call:
        ctx.scratch = ctx.world.allocate_tags(2 * P)
    base_tag = ctx.scratch

    def start_rank(local: int) -> None:
        children = tree.children[local]
        parent = tree.parent[local]
        state = {"up": len(children)}

        def release() -> None:
            for child in children:
                ctx.isend(local, child, base_tag + P + child, 0)
            handle.mark_done(local, ctx.world.engine.now)

        def arrived_up() -> None:
            if state["up"] > 0:
                return
            if parent is None:
                release()
                return
            ctx.isend(local, parent, base_tag + local, 0)

        if parent is not None:
            # Pre-post the release recv at entry (Section 2.2.1): it can
            # never arrive unexpected, and the release phase carries no
            # synchronization dependency on the gather phase.
            down = ctx.irecv(local, parent, base_tag + P + local, 0)
            down.add_callback(lambda r: release())
        for child in children:
            req = ctx.irecv(local, child, base_tag + child, 0)

            def on_up(r) -> None:
                state["up"] -= 1
                arrived_up()

            req.add_callback(on_up)
        arrived_up()

    for local in ranks if ranks is not None else range(P):
        ctx.rt(local).cpu.when_available(start_rank, local)
    return handle
