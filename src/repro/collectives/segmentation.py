"""Message segmentation for pipelined collectives.

Big messages split into segments that flow through the tree independently
(paper Section 2.1.1's pipelining); these helpers also slice/reassemble real
numpy payloads in data mode so correctness tests can check end-to-end bytes.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.config import CollectiveConfig


def segment_sizes(nbytes: int, config: CollectiveConfig) -> list[int]:
    """Pipeline segment sizes for a message of ``nbytes``."""
    return config.segments_for(nbytes)


def segment_offsets(sizes: Sequence[int]) -> list[int]:
    """Byte offset of each segment."""
    offs = [0]
    for s in sizes[:-1]:
        offs.append(offs[-1] + s)
    return offs


def slice_payload(data: Optional[np.ndarray], sizes: Sequence[int]) -> list[Any]:
    """Split a payload array into per-segment views (None stays None)."""
    if data is None:
        return [None] * len(sizes)
    flat = data.reshape(-1).view(np.uint8)
    if flat.nbytes != sum(sizes):
        raise ValueError(
            f"payload is {flat.nbytes} bytes but segments sum to {sum(sizes)}"
        )
    out = []
    off = 0
    for s in sizes:
        out.append(flat[off : off + s])
        off += s
    return out


def assemble_payload(segments: Sequence[Any]) -> Optional[np.ndarray]:
    """Concatenate received segment payloads back into one byte array."""
    if any(s is None for s in segments):
        return None
    return np.concatenate([np.asarray(s, dtype=np.uint8).reshape(-1) for s in segments])
