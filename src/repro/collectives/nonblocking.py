"""Non-blocking P2P + Waitall collectives — Algorithm 2 / Figure 3.

The Open MPI ``tuned``-style pattern: sends to all children of one segment
are posted together and progressed concurrently, but a ``Waitall`` at each
segment boundary re-synchronizes them — the slowest child throttles every
sibling (the dependency Section 2.1.2 and Section 3.2.2 analyze). Non-root
ranks keep two receives pre-posted to tolerate out-of-order segments, as the
paper describes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle, new_handle
from repro.collectives.segmentation import (
    assemble_payload,
    segment_sizes,
    slice_payload,
)
from repro.mpi.proclet import Compute, ProcletDriver, WaitAll

_PREPOST = 2  # Figure 3: non-root posts two Irecvs before waiting the first.


def bcast_nonblocking(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
    compute_scale: float = 1.0,
) -> CollectiveHandle:
    """Pipelined tree broadcast with Isend/Irecv + Waitall (Figure 3)."""
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    sizes = segment_sizes(ctx.nbytes, ctx.config)
    nseg = len(sizes)
    handle = handle or new_handle(ctx, "bcast-nonblocking")

    def program(local: int):
        children = tree.children[local]
        parent = tree.parent[local]
        received = [None] * nseg
        if parent is None:
            slices = slice_payload(ctx.data if ctx.carry() else None, sizes)
            for i, nb in enumerate(sizes):
                sends = [
                    ctx.isend(local, child, ctx.seg_tag(i), nb, slices[i])
                    for child in children
                ]
                yield WaitAll(sends)  # the synchronization ADAPT removes
            out = ctx.data
        else:
            recvs = [
                ctx.irecv(local, parent, ctx.seg_tag(i), sizes[i])
                for i in range(min(_PREPOST, nseg))
            ]
            for i, nb in enumerate(sizes):
                yield recvs[i]
                received[i] = recvs[i].data
                nxt = i + _PREPOST
                if nxt < nseg:
                    recvs.append(ctx.irecv(local, parent, ctx.seg_tag(nxt), sizes[nxt]))
                if children:
                    sends = [
                        ctx.isend(local, child, ctx.seg_tag(i), nb, recvs[i].data)
                        for child in children
                    ]
                    yield WaitAll(sends)
            out = assemble_payload(received) if ctx.carry() else None
        handle.mark_done(local, ctx.world.engine.now, out if ctx.carry() else None)

    for local in ranks if ranks is not None else range(ctx.comm.size):
        ProcletDriver(ctx.rt(local), program(local))
    return handle


def reduce_nonblocking(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
    compute_scale: float = 1.0,
) -> CollectiveHandle:
    """Pipelined tree reduce with Irecv-batch + Waitall per segment.

    Non-leaf ranks pre-post the receives of two segments from all children;
    each segment then Waitalls its batch, folds all contributions on the CPU,
    and forwards the partial result up the tree.

    ``compute_scale`` scales reduction arithmetic cost — used by the
    Shumilin-style Intel model, whose vectorized reduction the paper credits
    for beating ADAPT's unvectorized one (Section 5.1.2).
    """
    tree = ctx.tree
    assert tree is not None and tree.root == ctx.root
    sizes = segment_sizes(ctx.nbytes, ctx.config)
    nseg = len(sizes)
    handle = handle or new_handle(ctx, "reduce-nonblocking")

    def program(local: int):
        children = tree.children[local]
        parent = tree.parent[local]
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        acc = list(slice_payload(own, sizes))

        if not children:
            for i, nb in enumerate(sizes):
                if parent is not None:
                    yield ctx.isend(local, parent, ctx.seg_tag(i), nb, acc[i])
        else:
            batches: list[list] = [
                [ctx.irecv(local, child, ctx.seg_tag(i), sizes[i]) for child in children]
                for i in range(min(_PREPOST, nseg))
            ]
            for i, nb in enumerate(sizes):
                yield WaitAll(batches[i])
                nxt = i + _PREPOST
                if nxt < nseg:
                    batches.append(
                        [
                            ctx.irecv(local, child, ctx.seg_tag(nxt), sizes[nxt])
                            for child in children
                        ]
                    )
                yield Compute(
                    compute_scale
                    * len(children)
                    * nb
                    / ctx.world.spec.cpu_reduce_bandwidth
                )
                if ctx.carry():
                    seg = acc[i]
                    for req in batches[i]:
                        seg = ctx.combine(seg, req.data)
                    acc[i] = seg
                if parent is not None:
                    yield WaitAll([ctx.isend(local, parent, ctx.seg_tag(i), nb, acc[i])])
        out = assemble_payload(acc) if (ctx.carry() and parent is None) else None
        handle.mark_done(local, ctx.world.engine.now, out)

    for local in ranks if ranks is not None else range(ctx.comm.size):
        ProcletDriver(ctx.rt(local), program(local))
    return handle
