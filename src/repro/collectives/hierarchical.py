"""Multi-communicator hierarchical collectives — the Section 3.1 baseline.

The approach ADAPT's single topology-aware tree replaces: ranks are grouped
by node, a leader communicator spans the node leaders, and the collective
runs as two *chained phases* — for broadcast, the leader-level operation
first, then each leader's intra-node operation **only after its own
leader-level part finished**. The phases never overlap on a given rank,
which is exactly the deficit Section 3.2's single-tree design removes.

This models Intel MPI's "SHM-based" algorithm family and MVAPICH's two-level
collectives (Figure 8's legends): the ``outer``/``inner`` shapes select the
leader-level and intra-node trees.

Both operations are exposed as classes with a ``launch(ranks)`` method so
the IMB-style runner can chain iterations per rank; for broadcast only the
*leaders* are self-starting (``chain_ranks``) — every other rank's
participation is launched by its leader's phase boundary, as in real
multi-communicator implementations where the intra-node bcast is entered
when the rank calls the collective but only progresses once the leader has
the data.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle
from repro.collectives.nonblocking import bcast_nonblocking, reduce_nonblocking
from repro.machine.spec import CommLevel
from repro.mpi.communicator import Communicator
from repro.trees.base import Tree
from repro.trees.builders import (
    binary_tree,
    binomial_tree,
    chain_tree,
    flat_tree,
    kary_tree,
    knomial_tree,
)

_SHAPES = {
    "chain": chain_tree,
    "flat": flat_tree,
    "binary": binary_tree,
    "binomial": binomial_tree,
    "kary4": lambda n: kary_tree(n, 4),
    "knomial4": lambda n: knomial_tree(n, 4),
}


def _shape(name: str, n: int, root_local: int) -> Tree:
    tree = _SHAPES[name](n)
    return tree.reroot_relabelled(root_local) if root_local else tree


def _node_groups(ctx: CollectiveContext) -> tuple[list[list[int]], list[int]]:
    """Group communicator-local ranks by node; pick leaders (root preferred)."""
    topo = ctx.world.topology
    groups: dict[tuple, list[int]] = {}
    for local in range(ctx.comm.size):
        key = topo.group_key(ctx.comm.world_rank(local), CommLevel.INTER_SOCKET)
        groups.setdefault(key, []).append(local)
    ordered = [sorted(g) for g in groups.values()]
    ordered.sort(key=lambda g: g[0])
    leaders = [ctx.root if ctx.root in g else g[0] for g in ordered]
    return ordered, leaders


class HierarchicalBcast:
    """Leader-level bcast chained into per-node bcasts."""

    def __init__(
        self,
        ctx: CollectiveContext,
        outer: str = "binomial",
        inner: str = "knomial4",
        name: Optional[str] = None,
    ):
        self.ctx = ctx
        self.outer = outer
        self.inner = inner
        self.groups, self.leaders = _node_groups(ctx)
        self.handle = CollectiveHandle(
            name=name or f"bcast-hier({outer}/{inner})",
            start_time=ctx.world.engine.now,
            size=ctx.comm.size,
        )
        self.chain_ranks = set(self.leaders)
        self._inner_launched: set[int] = set()
        self._outer_ctx: Optional[CollectiveContext] = None
        self._outer_handle: Optional[CollectiveHandle] = None
        if len(self.leaders) > 1:
            leader_comm = Communicator(
                ctx.world, [ctx.comm.world_rank(l) for l in self.leaders]
            )
            root_pos = self.leaders.index(ctx.root)
            self._outer_ctx = CollectiveContext(
                leader_comm, root_pos, ctx.nbytes, ctx.config,
                tree=_shape(outer, len(self.leaders), root_pos),
                data=ctx.data,
            )
            self._outer_handle = CollectiveHandle(
                name="hier-outer", start_time=ctx.world.engine.now,
                size=len(self.leaders),
            )
            self._outer_handle.on_rank_done.append(self._leader_done)

    def launch(self, ranks: Optional[Iterable[int]] = None) -> CollectiveHandle:
        ctx = self.ctx
        targets = set(self.leaders) if ranks is None else (
            set(ranks) & set(self.leaders)
        )
        if ctx.comm.size == 1:
            if targets and 0 not in self._inner_launched:
                self._inner_launched.add(0)
                self.handle.mark_done(0, ctx.world.engine.now,
                                      ctx.data if ctx.carry() else None)
            return self.handle
        if len(self.leaders) == 1:
            if targets:
                self._launch_inner(0, ctx.data if ctx.carry() else None)
            return self.handle
        if targets:
            positions = [self.leaders.index(l) for l in sorted(targets)]
            bcast_nonblocking(self._outer_ctx, handle=self._outer_handle,
                              ranks=positions)
        return self.handle

    def _leader_done(self, outer_local: int, time: float) -> None:
        assert self._outer_handle is not None
        self._launch_inner(outer_local, self._outer_handle.output.get(outer_local))

    def _launch_inner(self, group_index: int, data) -> None:
        if group_index in self._inner_launched:
            return
        self._inner_launched.add(group_index)
        ctx = self.ctx
        group = self.groups[group_index]
        leader = self.leaders[group_index]
        if len(group) == 1:
            self.handle.mark_done(leader, ctx.world.engine.now, data)
            return
        inner_comm = Communicator(ctx.world, [ctx.comm.world_rank(l) for l in group])
        root_local = group.index(leader)
        inner_ctx = CollectiveContext(
            inner_comm, root_local, ctx.nbytes, ctx.config,
            tree=_shape(self.inner, len(group), root_local),
            data=data,
        )
        inner_handle = bcast_nonblocking(inner_ctx)

        def inner_rank_done(inner_local: int, time: float) -> None:
            self.handle.mark_done(
                group[inner_local], time, inner_handle.output.get(inner_local)
            )

        inner_handle.on_rank_done.append(inner_rank_done)
        for inner_local, t in list(inner_handle.done_time.items()):
            inner_rank_done(inner_local, t)


class HierarchicalReduce:
    """Per-node reduces chained into a leader-level reduce."""

    def __init__(
        self,
        ctx: CollectiveContext,
        outer: str = "binomial",
        inner: str = "knomial4",
        name: Optional[str] = None,
    ):
        self.ctx = ctx
        self.outer = outer
        self.inner = inner
        self.groups, self.leaders = _node_groups(ctx)
        self.handle = CollectiveHandle(
            name=name or f"reduce-hier({outer}/{inner})",
            start_time=ctx.world.engine.now,
            size=ctx.comm.size,
        )
        self.chain_ranks = set(range(ctx.comm.size))
        self._outer_data: dict[int, object] = {}
        self._entered_outer: set[int] = set()
        self._inner: list[Optional[tuple[CollectiveContext, CollectiveHandle, int]]] = []

        leader_comm = Communicator(
            ctx.world, [ctx.comm.world_rank(l) for l in self.leaders]
        )
        root_pos = self.leaders.index(ctx.root)
        self._outer_ctx = CollectiveContext(
            leader_comm, root_pos, ctx.nbytes, ctx.config,
            tree=_shape(outer, len(self.leaders), root_pos),
            data=self._outer_data, op=ctx.op,
        )
        self._outer_handle = CollectiveHandle(
            name="hier-outer", start_time=ctx.world.engine.now, size=len(self.leaders)
        )
        self._outer_handle.on_rank_done.append(self._outer_rank_done)

        for gi, group in enumerate(self.groups):
            if len(group) == 1:
                self._inner.append(None)
                continue
            leader = self.leaders[gi]
            inner_comm = Communicator(
                ctx.world, [ctx.comm.world_rank(l) for l in group]
            )
            root_local = group.index(leader)
            inner_data = (
                {il: ctx.data.get(ol) for il, ol in enumerate(group)}
                if (ctx.carry() and ctx.data)
                else {}
            )
            inner_ctx = CollectiveContext(
                inner_comm, root_local, ctx.nbytes, ctx.config,
                tree=_shape(inner, len(group), root_local),
                data=inner_data, op=ctx.op,
            )
            inner_handle = CollectiveHandle(
                name="hier-inner", start_time=ctx.world.engine.now, size=len(group)
            )
            inner_handle.on_rank_done.append(
                lambda il, t, gi=gi: self._inner_rank_done(gi, il, t)
            )
            self._inner.append((inner_ctx, inner_handle, root_local))

    def launch(self, ranks: Optional[Iterable[int]] = None) -> CollectiveHandle:
        ctx = self.ctx
        if ctx.comm.size == 1:
            out = ctx.data.get(0) if (ctx.carry() and ctx.data) else None
            self.handle.mark_done(0, ctx.world.engine.now, out)
            return self.handle
        targets = range(ctx.comm.size) if ranks is None else ranks
        for local in targets:
            gi = next(i for i, g in enumerate(self.groups) if local in g)
            entry = self._inner[gi]
            if entry is None:
                own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
                self._enter_outer(gi, own)
                continue
            inner_ctx, inner_handle, _root_local = entry
            inner_local = self.groups[gi].index(local)
            reduce_nonblocking(inner_ctx, handle=inner_handle, ranks=[inner_local])
        return self.handle

    def _inner_rank_done(self, gi: int, inner_local: int, time: float) -> None:
        group = self.groups[gi]
        entry = self._inner[gi]
        assert entry is not None
        inner_ctx, inner_handle, root_local = entry
        if inner_local == root_local:
            self._enter_outer(gi, inner_handle.output.get(inner_local))
        else:
            self.handle.mark_done(group[inner_local], time, None)

    def _enter_outer(self, gi: int, contribution) -> None:
        if gi in self._entered_outer:
            return
        self._entered_outer.add(gi)
        self._outer_data[gi] = contribution
        if len(self.leaders) == 1:
            self._outer_handle.mark_done(gi, self.ctx.world.engine.now, contribution)
            return
        reduce_nonblocking(self._outer_ctx, handle=self._outer_handle, ranks=[gi])

    def _outer_rank_done(self, outer_local: int, time: float) -> None:
        leader = self.leaders[outer_local]
        self.handle.mark_done(leader, time, self._outer_handle.output.get(outer_local))


def bcast_hierarchical(
    ctx: CollectiveContext,
    outer: str = "binomial",
    inner: str = "knomial4",
    name: Optional[str] = None,
) -> CollectiveHandle:
    """One-shot hierarchical broadcast (launches every rank)."""
    return HierarchicalBcast(ctx, outer, inner, name).launch()


def reduce_hierarchical(
    ctx: CollectiveContext,
    outer: str = "binomial",
    inner: str = "knomial4",
    name: Optional[str] = None,
) -> CollectiveHandle:
    """One-shot hierarchical reduce (launches every rank)."""
    return HierarchicalReduce(ctx, outer, inner, name).launch()
