"""Bounded-staleness quorum collectives (DESIGN.md S25).

The relaxed operation family beside the nine exact ADAPT collectives:
complete-at-quorum allreduce/bcast/reduce with straggler late-merge against
a per-world staleness frontier, and double-entry contribution accounting
enforced by the sanitizer's conservation rule.
"""

from repro.relaxed.frontier import (
    DISCARDED,
    LATE,
    ON_TIME,
    OPEN,
    ContributionLedger,
    StalenessFrontier,
    ensure_frontier,
)
from repro.relaxed.policy import QuorumPolicy
from repro.relaxed.quorum import (
    RELAXED_OPERATIONS,
    allreduce_quorum,
    bcast_quorum,
    reduce_quorum,
)

__all__ = [
    "DISCARDED",
    "LATE",
    "ON_TIME",
    "OPEN",
    "ContributionLedger",
    "QuorumPolicy",
    "RELAXED_OPERATIONS",
    "StalenessFrontier",
    "allreduce_quorum",
    "bcast_quorum",
    "ensure_frontier",
    "reduce_quorum",
]
