"""The staleness frontier: epoch bookkeeping for relaxed collectives.

One :class:`StalenessFrontier` per world (created on first use, like
``ensure_membership``). Every quorum-collective launch opens a numbered
*epoch*; contributions are judged against the frontier:

* arrive before the epoch closes — **merged on time** (counted toward the
  quorum, listed in ``CompletionReport.contributed_ranks``);
* arrive after the close but while a later epoch within the straggler's
  ``staleness_window`` is still open — **merged late** into that epoch's
  reduction (an SSP-style stale gradient);
* arrive with no eligible open epoch — **explicitly discarded**.

The :class:`ContributionLedger` is the double-entry book behind the
sanitizer's conservation rule: every contribution that was ever opened must
end in exactly one of those three states (dead ranks excepted — their
contribution never arrives, and the failure detector explains why). The
ledger keeps both per-entry states and aggregate counters so a code path
that updates one book but not the other is caught at drain.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

#: Ledger entry states. ``open`` entries at drain are leaks unless the
#: owning rank is dead or confirmed-failed.
OPEN = "open"
ON_TIME = "on-time"
LATE = "late"
DISCARDED = "discarded"

_CLOSED_STATES = (ON_TIME, LATE, DISCARDED)


class LateSink(Protocol):  # pragma: no cover - typing aid
    """An open epoch that may absorb a straggler's contribution."""

    def accept_late(self, local: int, from_epoch: int, payload: Any) -> bool: ...


class ContributionLedger:
    """Every contribution's fate, kept as entries *and* counters."""

    def __init__(self) -> None:
        self.entries: dict[tuple[int, int], str] = {}  # (epoch, world_rank)
        self.opened = 0
        self.on_time = 0
        self.late = 0
        self.discarded = 0

    def open(self, epoch: int, world_rank: int) -> None:
        key = (epoch, world_rank)
        if key in self.entries:
            raise RuntimeError(
                f"contribution (epoch={epoch}, rank={world_rank}) opened twice"
            )
        self.entries[key] = OPEN
        self.opened += 1

    def close(self, epoch: int, world_rank: int, state: str) -> None:
        if state not in _CLOSED_STATES:
            raise ValueError(f"unknown ledger state {state!r}")
        key = (epoch, world_rank)
        if self.entries.get(key) != OPEN:
            raise RuntimeError(
                f"contribution (epoch={epoch}, rank={world_rank}) closed as "
                f"{state!r} but was {self.entries.get(key)!r}"
            )
        self.entries[key] = state
        if state == ON_TIME:
            self.on_time += 1
        elif state == LATE:
            self.late += 1
        else:
            self.discarded += 1

    def open_entries(self) -> list[tuple[int, int]]:
        return sorted(k for k, st in self.entries.items() if st == OPEN)


class _Pending:
    """A straggler contribution parked between epochs.

    The window is judged against epoch *numbers*, not wall time, so a
    contribution arriving in the gap between epoch ``k`` sealing and epoch
    ``k+1`` opening waits here instead of being discarded — the common case
    for a mildly slow rank in a chained epoch loop.
    """

    __slots__ = ("local", "world_rank", "from_epoch", "payload", "window",
                 "report")

    def __init__(self, local, world_rank, from_epoch, payload, window, report):
        self.local = local
        self.world_rank = world_rank
        self.from_epoch = from_epoch
        self.payload = payload
        self.window = window
        self.report = report


class StalenessFrontier:
    """Per-world epoch counter, open-sink registry, and ledger."""

    def __init__(self, world: Any) -> None:
        self.world = world
        self.ledger = ContributionLedger()
        self._next_epoch = 1
        self._sinks: dict[int, LateSink] = {}
        self._opened_at: dict[int, float] = {}
        self._pending: list[_Pending] = []
        # Aggregate accounting surfaced by ``repro chaos --quorum``.
        self.epochs_closed = 0
        self.late_merged = 0
        self.late_discarded = 0

    # -- epoch lifecycle -----------------------------------------------------

    def open_epoch(self, sink: Optional[LateSink] = None) -> int:
        """Allocate the next epoch; mergeable ops register their sink."""
        epoch = self._next_epoch
        self._next_epoch += 1
        if sink is not None:
            self._sinks[epoch] = sink
        self._opened_at[epoch] = self.world.engine.now
        self.drain_pending()
        return epoch

    def close_epoch(
        self,
        epoch: int,
        *,
        name: str = "quorum",
        contributed: int = 0,
        excluded: int = 0,
    ) -> None:
        """Seal an epoch: no further on-time merges; record its obs span."""
        self._sinks.pop(epoch, None)
        opened = self._opened_at.pop(epoch, None)
        self.epochs_closed += 1
        obs = getattr(self.world, "obs", None)
        if obs is not None and opened is not None:
            obs.add(
                "staleness",
                f"{name} epoch {epoch}",
                ("staleness", "frontier"),
                opened,
                self.world.engine.now,
                {"epoch": epoch, "contributed": contributed,
                 "excluded": excluded},
            )
        # A parked straggler whose last eligible epoch just sealed expires.
        self.drain_pending()

    # -- straggler routing ---------------------------------------------------

    def _resolve(self, p: _Pending, into: int) -> None:
        """Book a parked/arriving contribution's final fate."""
        obs = getattr(self.world, "obs", None)
        state = LATE if into >= 0 else DISCARDED
        self.ledger.close(p.from_epoch, p.world_rank, state)
        if p.report is not None:
            p.report.late_merges.append((p.local, p.from_epoch, into))
        if into >= 0:
            self.late_merged += 1
            if obs is not None:
                obs.count("quorum.late_merges")
        else:
            self.late_discarded += 1
            if obs is not None:
                obs.count("quorum.discarded")

    def _try_merge(self, p: _Pending) -> int:
        """Offer to every eligible open sink, oldest-first (least stale)."""
        for epoch in sorted(self._sinks):
            if epoch <= p.from_epoch or epoch - p.from_epoch > p.window:
                continue
            if self._sinks[epoch].accept_late(p.local, p.from_epoch, p.payload):
                return epoch
        return -1

    def _still_possible(self, p: _Pending) -> bool:
        """Could a not-yet-opened (or not-yet-started) epoch still merge it?"""
        last = p.from_epoch + p.window
        if self._next_epoch <= last:
            return True  # an eligible epoch number is still unallocated
        return any(
            p.from_epoch < e <= last for e in self._sinks
        )  # allocated, open, but its root hasn't started ingesting yet

    def route_late(
        self, local: int, world_rank: int, from_epoch: int, payload: Any,
        window: int, report: Any = None,
    ) -> int:
        """Merge a straggler contribution forward, park it, or discard it.

        Returns the epoch that absorbed the merge, ``0`` when parked for a
        future epoch inside the window, or ``-1`` for an immediate discard.
        Parked contributions resolve at the next ``open_epoch``/
        ``drain_pending`` — their fate lands in ``report.late_merges`` then.
        """
        p = _Pending(local, world_rank, from_epoch, payload, window, report)
        into = self._try_merge(p)
        if into < 0 and self._still_possible(p):
            self._pending.append(p)
            return 0
        self._resolve(p, into)
        return into

    def drain_pending(self) -> None:
        """Re-offer every parked contribution; expire the hopeless ones."""
        keep: list[_Pending] = []
        for p in self._pending:
            into = self._try_merge(p)
            if into >= 0:
                self._resolve(p, into)
            elif self._still_possible(p):
                keep.append(p)
            else:
                self._resolve(p, -1)
        self._pending = keep

    def flush_pending(self) -> None:
        """End of run: every still-parked contribution becomes an
        explicit, accounted discard (no future epoch will open)."""
        pending, self._pending = self._pending, []
        for p in pending:
            into = self._try_merge(p)
            self._resolve(p, into)


def ensure_frontier(world: Any) -> StalenessFrontier:
    """The world's frontier, created on first use (``ensure_membership``
    pattern); the sanitizer discovers it by attribute at drain."""
    frontier = getattr(world, "staleness_frontier", None)
    if frontier is None:
        frontier = StalenessFrontier(world)
        world.staleness_frontier = frontier
    return frontier
