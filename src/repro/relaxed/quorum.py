"""Bounded-staleness quorum collectives (DESIGN.md S25).

Three relaxed operations beside the nine exact ADAPT collectives:

* :func:`reduce_quorum` — flat contribution ingest at the root: every rank
  streams its segments straight to the root, which folds whole
  contributions in arrival order and **closes the quorum** the moment
  enough ranks have fully contributed. Stragglers keep running; their
  contributions either merge into a later epoch's reduction (within the
  staleness window) or are discarded with an accounting entry.
* :func:`bcast_quorum` — the exact ADAPT tree broadcast wrapped in a quorum
  watcher: the operation completes at the q-th delivery; the remaining
  deliveries still happen (nothing is lost) and are booked as late.
* :func:`allreduce_quorum` — quorum ingest chained into an exact ADAPT
  broadcast of the partial reduction, with the completion quorum applied to
  the deliveries as well.

The ingest is deliberately a star, not a tree: a tree cannot complete at a
quorum without timeouts (a slow interior rank gates its whole subtree),
while flat ingest lets a straggler simply arrive late. Fold order is
arrival order — exact for the carried ``uint8`` SUM (mod-256) and MAX
payloads, so with ``quorum=1.0`` and no faults every operation is
bit-identical to its exact ADAPT counterpart.

Robustness composition: fail-stop ranks and phi-detector (false)
confirmations *shrink* the quorum target instead of hanging the operation
or triggering recovery; retractions restore it. ``min_quorum`` is the floor
below which the op stops trading completeness for latency and degrades to
the PR 5 semantics — complete with every live contribution, ``degraded``
set on the report.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.collectives.adapt import bcast_adapt
from repro.collectives.base import (
    CollectiveContext,
    CollectiveHandle,
    new_handle,
)
from repro.collectives.segmentation import (
    assemble_payload,
    segment_sizes,
    slice_payload,
)
from repro.relaxed.frontier import (
    DISCARDED,
    LATE,
    ON_TIME,
    OPEN,
    StalenessFrontier,
    ensure_frontier,
)
from repro.relaxed.policy import QuorumPolicy
from repro.trees import Tree

#: The relaxed operation family, beside ``ADAPT_OPERATIONS``.
RELAXED_OPERATIONS = ("bcast_quorum", "reduce_quorum", "allreduce_quorum")


class _QuorumDriver:
    """Shared quorum bookkeeping: target, failures, epoch, close notes."""

    def __init__(
        self, ctx: CollectiveContext, handle: CollectiveHandle,
        policy: QuorumPolicy, name: str,
    ):
        self.ctx = ctx
        self.handle = handle
        self.policy = policy
        self.name = name
        self.P = ctx.comm.size
        self.root = ctx.root
        self.frontier: StalenessFrontier = ensure_frontier(ctx.world)
        self.closed = False
        self.launched: set[int] = set()
        self.contributed: set[int] = set()
        self.failed: set[int] = set()
        self.degraded_floor = False
        self._obs = ctx.world.obs
        # Failure events are subscribed on *every* rank's CPU (first
        # delivery wins, handling is idempotent): the quorum decision must
        # survive the completion point itself being the dead or stalled
        # rank.
        for local in range(self.P):
            ctx.subscribe_failures(local, self._on_failure,
                                   alive_fn=self._on_alive)

    def _wrank(self, local: int) -> int:
        return self.ctx.comm.world_rank(local)

    def _target(self) -> int:
        """Contributions needed to close, under the current failed set."""
        alive = self.P - len(self.failed)
        floor = self.policy.floor(self.P)
        if alive < floor:
            if not self.degraded_floor:
                self.degraded_floor = True
                rep = self.handle.report
                rep.degraded = True
                rep.note(
                    f"{self.name}: {alive} live rank(s) below min_quorum "
                    f"{floor}; degraded to all-live completion"
                )
            return max(alive, 1)
        return max(min(self.policy.resolve(self.P), alive), 1)

    def _seal(self) -> None:
        """Common close bookkeeping: provenance, excusals, epoch span."""
        rep = self.handle.report
        rep.contributed_ranks = set(self.contributed)
        excluded = sorted(
            local for local in range(self.P)
            if local not in self.contributed
        )
        if excluded:
            rep.note(
                f"{self.name}: quorum {len(self.contributed)}/{self.P} "
                f"closed; excluded {excluded}"
            )
        for local in range(self.P):
            if local not in self.handle.done_time:
                self.handle.excuse(local)
        self.frontier.close_epoch(
            self.epoch, name=self.name,
            contributed=len(self.contributed), excluded=len(excluded),
        )
        if self._obs is not None:
            self._obs.count("quorum.epochs_closed")

    # -- failure surface -----------------------------------------------------

    def _on_failure(self, dead: int) -> None:
        """Idempotent; may run on any rank's CPU (first delivery wins)."""
        if dead in self.failed or self.closed:
            if dead not in self.failed:
                self.failed.add(dead)
            return
        self.failed.add(dead)
        rep = self.handle.report
        rep.degraded = True
        rep.failed_ranks.add(dead)
        self.handle.excuse(dead)
        if dead == self.root:
            self._on_root_death()
            return
        self._on_quorum_shrunk()

    def _on_alive(self, back: int) -> None:
        """Retraction: restore the quorum target; repair stays in force."""
        if back not in self.failed:
            return
        self.failed.discard(back)
        self.handle.report.retractions.add(back)

    def _abandon(self, why: str) -> None:
        """The completion point is gone: account and release everything.

        Contributions still open in this epoch can never merge (their
        destination died), so they are explicitly discarded — the
        conservation rule holds even for an unrecoverable operation.
        """
        self.closed = True
        rep = self.handle.report
        rep.note(f"{self.name}: {why}")
        ledger = self.frontier.ledger
        for local in sorted(self.launched):
            w = self._wrank(local)
            if ledger.entries.get((self.epoch, w)) == OPEN and local not in self.failed:
                ledger.close(self.epoch, w, DISCARDED)
                rep.late_merges.append((local, self.epoch, -1))
        for local in range(self.P):
            if local not in self.handle.done_time:
                self.handle.excuse(local)
        self.frontier.close_epoch(
            self.epoch, name=self.name,
            contributed=len(self.contributed),
            excluded=self.P - len(self.contributed),
        )

    # Subclass hooks.

    def _on_root_death(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _on_quorum_shrunk(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class _QuorumSenderRank:
    """Non-root rank of the flat ingest: stream segments to the root."""

    def __init__(self, ingest: "_QuorumIngest", local: int):
        self.ingest = ingest
        self.local = local
        ctx = ingest.ctx
        own = ctx.data.get(local) if (ctx.carry() and ctx.data) else None
        self.segs: list[Any] = list(slice_payload(own, ingest.sizes))
        self.next_seg = 0
        self.inflight = 0
        self.sends_done = 0

    def _start(self) -> None:
        self._fill()

    def _fill(self) -> None:
        ctx = self.ingest.ctx
        while (
            self.inflight < ctx.config.inflight_sends
            and self.next_seg < self.ingest.nseg
        ):
            seg = self.next_seg
            self.next_seg += 1
            self.inflight += 1
            self._check_window()
            req = ctx.isend(
                self.local, self.ingest.root, ctx.seg_tag(seg),
                self.ingest.sizes[seg], self.segs[seg],
            )
            req.add_callback(lambda r: self._on_send_done())

    def _check_window(self) -> None:
        sanitizer = self.ingest.ctx.world.sanitizer
        if sanitizer is not None:
            sanitizer.window(
                self.local, self.ingest.root, self.inflight,
                self.ingest.ctx.config.inflight_sends,
            )

    def _on_send_done(self) -> None:
        self.inflight -= 1
        self.sends_done += 1
        self._check_window()
        self._fill()
        if self.sends_done >= self.ingest.nseg:
            self.ingest._on_sender_finished(self.local)


class _QuorumIngest(_QuorumDriver):
    """Root-side flat ingest shared by reduce_quorum and allreduce_quorum.

    A contribution is *atomic*: the root buffers a rank's segments and folds
    them in one charged step only once all have arrived, so the result's
    provenance (``contributed_ranks``) is exact — no rank is half-included.
    """

    #: Whether a sender's local completion marks it done on the handle
    #: (reduce: yes, like exact ADAPT; allreduce: delivery marks instead).
    sender_completes = True

    def __init__(self, ctx, handle, policy, name):
        super().__init__(ctx, handle, policy, name)
        self.sizes = segment_sizes(ctx.nbytes, ctx.config)
        self.nseg = len(self.sizes)
        self.root_started = False
        self.root_lost = False
        self.acc: list[Any] = [None] * self.nseg
        self._buffers: dict[int, dict[int, Any]] = {}
        self._next_recv: dict[int, int] = {}
        # Last: registering the sink re-offers parked stragglers to it.
        self.epoch = self.frontier.open_epoch(sink=self)
        handle.report.staleness_epoch = self.epoch

    # -- launch ---------------------------------------------------------------

    def launch(self, locals: Iterable[int]) -> None:
        ctx = self.ctx
        for local in locals:
            if local in self.launched:
                continue
            self.launched.add(local)
            w = self._wrank(local)
            self.frontier.ledger.open(self.epoch, w)
            if self.closed and local not in self.failed:
                # Joined after the epoch was sealed (or abandoned): the
                # contribution can only be late from the start.
                pass  # routed when (if) it completes; abandonment discards
            if self.root_lost and local not in self.failed:
                self.frontier.ledger.close(self.epoch, w, DISCARDED)
                self.handle.report.late_merges.append((local, self.epoch, -1))
            if local == self.root:
                ctx.rt(local).cpu.when_available(self._start_root)
            else:
                sender = _QuorumSenderRank(self, local)
                ctx.rt(local).cpu.when_available(sender._start)

    def _start_root(self) -> None:
        ctx = self.ctx
        self.root_started = True
        own = ctx.data.get(self.root) if (ctx.carry() and ctx.data) else None
        self.acc = list(slice_payload(own, self.sizes))
        if not self.closed:
            self._contribute(self.root)
        for src in range(self.P):
            if src == self.root:
                continue
            self._buffers[src] = {}
            self._next_recv[src] = 0
            for _ in range(min(ctx.config.posted_recvs, self.nseg)):
                self._post_recv(src)
        # Stragglers parked while this epoch's root was still warming up
        # can merge now that the accumulator exists.
        self.frontier.drain_pending()

    # -- receive + fold -------------------------------------------------------

    def _post_recv(self, src: int) -> None:
        seg = self._next_recv[src]
        if seg >= self.nseg:
            return
        self._next_recv[src] += 1
        req = self.ctx.irecv(
            self.root, src, self.ctx.seg_tag(seg), self.sizes[seg]
        )
        req.add_callback(
            lambda r, src=src, seg=seg: self._on_recv(src, seg, r.data)
        )

    def _on_recv(self, src: int, seg: int, data: Any) -> None:
        self._post_recv(src)
        buf = self._buffers[src]
        buf[seg] = data
        if len(buf) == self.nseg:
            # Whole contribution present: one charged, provenance-atomic fold.
            self.ctx.charge_reduce(
                self.root, sum(self.sizes), self._on_folded, src
            )

    def _on_folded(self, src: int) -> None:
        if self._obs is not None:
            self._obs.count("quorum.contributions_folded")
        if self.closed:
            self.frontier.route_late(
                src, self._wrank(src), self.epoch, self._buffers[src],
                self.policy.staleness_window, report=self.handle.report,
            )
            return
        if self.ctx.carry():
            for seg, data in sorted(self._buffers[src].items()):
                self.acc[seg] = self.ctx.combine(self.acc[seg], data)
        self._contribute(src)

    def _contribute(self, local: int) -> None:
        self.contributed.add(local)
        self.frontier.ledger.close(self.epoch, self._wrank(local), ON_TIME)
        self._check_close()

    # -- late-merge sink (contributions straggling from older epochs) --------

    def accept_late(self, local: int, from_epoch: int, payload: Any) -> bool:
        if self.closed or not self.root_started:
            return False
        if self.ctx.carry() and payload is not None:
            for seg, data in sorted(payload.items()):
                self.acc[seg] = self.ctx.combine(self.acc[seg], data)
        # Charge the stale fold's arithmetic without gating the close on it.
        self.ctx.charge_reduce(self.root, sum(self.sizes))
        self.handle.report.note(
            f"{self.name}: absorbed rank {local}'s epoch-{from_epoch} "
            f"contribution into epoch {self.epoch}"
        )
        return True

    # -- close ----------------------------------------------------------------

    def _check_close(self) -> None:
        if self.closed or not self.root_started:
            return
        if len(self.contributed) < self._target():
            return
        self.closed = True
        self._seal()
        self._emit()

    def _on_quorum_shrunk(self) -> None:
        self._check_close()

    def _on_root_death(self) -> None:
        self.root_lost = True
        self._abandon(f"root {self.root} died; quorum completion point lost")

    def _on_sender_finished(self, local: int) -> None:
        now = self.ctx.world.engine.now
        if not self.sender_completes:
            return
        if self.closed or local in self.handle.excused:
            self.handle.mark_late(local, now)
        else:
            self.handle.mark_done(local, now)

    def _result(self) -> Any:
        return assemble_payload(self.acc) if self.ctx.carry() else None

    def _emit(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class _QuorumReduce(_QuorumIngest):
    """reduce_quorum: emit = the root completes with the partial fold."""

    sender_completes = True

    def _emit(self) -> None:
        self.handle.mark_done(
            self.root, self.ctx.world.engine.now, self._result()
        )


class _QuorumAllreduce(_QuorumIngest):
    """allreduce_quorum: emit = ADAPT-broadcast the partial reduction, with
    the completion quorum applied to deliveries as well.

    The down-phase deliberately uses a *flat* (star) tree rather than the
    topology-aware one: quorum semantics require deliveries to be mutually
    independent, and an interior straggler in a deep tree would block every
    rank beneath it — turning one slow rank back into a barrier, exactly
    what the relaxed family exists to avoid.
    """

    sender_completes = False

    def __init__(self, ctx, handle, policy, name):
        super().__init__(ctx, handle, policy, name)
        self.delivered = 0
        self.down_closed = False
        self._inner: Optional[CollectiveHandle] = None

    def _emit(self) -> None:
        ctx = self.ctx
        tree = Tree.from_parents(
            [None if r == self.root else self.root for r in range(self.P)],
            self.root, name="flat",
        )
        bctx = CollectiveContext(
            ctx.comm, self.root, ctx.nbytes, ctx.config, tree=tree,
            data=self._result(), host_staging=ctx.host_staging,
        )
        inner = CollectiveHandle(
            name=f"{self.name}-down",
            start_time=ctx.world.engine.now, size=self.P,
        )
        inner.report = self.handle.report
        inner.on_rank_done.append(self._on_delivery)
        self._inner = inner
        bcast_adapt(bctx, handle=inner)
        for local, t in list(inner.done_time.items()):
            self._on_delivery(local, t)

    def _on_delivery(self, local: int, t: float) -> None:
        assert self._inner is not None
        if self.down_closed:
            self.handle.mark_late(local, t)
            return
        if local in self.handle.done_time:
            return
        self.handle.mark_done(local, t, self._inner.output.get(local))
        self.delivered += 1
        self._check_down_close()

    def _check_down_close(self) -> None:
        if self.down_closed or self._inner is None:
            return
        if self.delivered < self._target():
            return
        self.down_closed = True
        for local in range(self.P):
            if local not in self.handle.done_time:
                self.handle.excuse(local)

    def _on_quorum_shrunk(self) -> None:
        self._check_close()
        if self.closed:
            self._check_down_close()


class _QuorumBcast(_QuorumDriver):
    """bcast_quorum: exact ADAPT broadcast + a quorum completion watcher.

    Deliveries after the close still happen — a broadcast straggler loses
    nothing — and are booked as ``merged late`` into the same epoch (the
    data arrived, just after the operation sealed).
    """

    def __init__(self, ctx, handle, policy, name):
        super().__init__(ctx, handle, policy, name)
        self.epoch = self.frontier.open_epoch()
        handle.report.staleness_epoch = self.epoch
        inner = CollectiveHandle(
            name="bcast-adapt", start_time=ctx.world.engine.now, size=self.P
        )
        inner.report = handle.report
        inner.on_rank_done.append(self._on_delivery)
        self.inner = inner

    def launch(self, locals: Iterable[int]) -> None:
        fresh = [local for local in sorted(locals)
                 if local not in self.launched]
        if not fresh:
            return
        for local in fresh:
            self.launched.add(local)
            self.frontier.ledger.open(self.epoch, self._wrank(local))
        bcast_adapt(self.ctx, handle=self.inner, ranks=fresh)

    def _on_delivery(self, local: int, t: float) -> None:
        ledger = self.frontier.ledger
        w = self._wrank(local)
        if self.closed:
            if ledger.entries.get((self.epoch, w)) == OPEN:
                ledger.close(self.epoch, w, LATE)
                self.frontier.late_merged += 1
                self.handle.report.late_merges.append(
                    (local, self.epoch, self.epoch)
                )
                if self._obs is not None:
                    self._obs.count("quorum.late_merges")
            self.handle.mark_late(local, t)
            return
        ledger.close(self.epoch, w, ON_TIME)
        self.contributed.add(local)
        self.handle.mark_done(local, t, self.inner.output.get(local))
        self._check_close()

    def _check_close(self) -> None:
        if self.closed:
            return
        if len(self.contributed) < self._target():
            return
        self.closed = True
        self._seal()

    def _on_quorum_shrunk(self) -> None:
        self._check_close()

    def _on_root_death(self) -> None:
        # The inner broadcast's repair already excused the unreachable
        # ranks; without a data source the undelivered contributions are
        # gone for good.
        self._abandon(f"root {self.root} died; broadcast data lost")


def _launch(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle],
    ranks: Optional[Iterable[int]],
    policy: Optional[QuorumPolicy],
    driver_cls,
    name: str,
) -> CollectiveHandle:
    if handle is None:
        handle = new_handle(ctx, name)
        ctx.scratch = driver_cls(ctx, handle, policy or QuorumPolicy(), name)
    driver = ctx.scratch
    driver.launch(ranks if ranks is not None else range(ctx.comm.size))
    return handle


def reduce_quorum(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
    policy: Optional[QuorumPolicy] = None,
) -> CollectiveHandle:
    """Complete-at-quorum reduce: flat ingest, arrival-order fold."""
    return _launch(ctx, handle, ranks, policy, _QuorumReduce, "reduce-quorum")


def bcast_quorum(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
    policy: Optional[QuorumPolicy] = None,
) -> CollectiveHandle:
    """Complete-at-quorum broadcast over the exact ADAPT tree."""
    return _launch(ctx, handle, ranks, policy, _QuorumBcast, "bcast-quorum")


def allreduce_quorum(
    ctx: CollectiveContext,
    handle: Optional[CollectiveHandle] = None,
    ranks: Optional[Iterable[int]] = None,
    policy: Optional[QuorumPolicy] = None,
) -> CollectiveHandle:
    """Complete-at-quorum allreduce: quorum ingest + ADAPT broadcast down."""
    return _launch(
        ctx, handle, ranks, policy, _QuorumAllreduce, "allreduce-quorum"
    )
