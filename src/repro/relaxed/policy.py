"""Quorum policy: how many contributions an operation waits for.

A :class:`QuorumPolicy` is pure data — picklable, hashable, and carried by
:class:`~repro.parallel.jobs.SimJob` cells — describing the relaxation of a
collective (DESIGN.md S25):

* ``quorum`` — the completion threshold. An ``int`` is an absolute
  contribution count; a ``float`` in ``(0, 1]`` is a fraction of the
  communicator (rounded up). ``1.0`` (the default) is full participation:
  the operation is then bit-identical to its exact ADAPT counterpart.
* ``min_quorum`` — the floor below which the operation stops trading
  completeness for latency and degrades to the PR 5 recovery semantics:
  complete with *every* live contribution, ``degraded`` set on the report.
* ``staleness_window`` — how many epochs a straggler contribution may lag
  behind the frontier and still merge into a later epoch's reduction; a
  contribution older than the window is discarded with an accounting entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class QuorumPolicy:
    """Completion threshold + staleness bound for one relaxed collective."""

    quorum: Union[int, float] = 1.0
    min_quorum: int = 1
    staleness_window: int = 1

    def __post_init__(self) -> None:
        q = self.quorum
        if isinstance(q, bool) or not isinstance(q, (int, float)):
            raise ValueError(f"quorum must be an int count or float fraction, got {q!r}")
        if isinstance(q, int):
            if q < 1:
                raise ValueError(f"quorum count must be >= 1, got {q}")
        elif not 0.0 < q <= 1.0:
            raise ValueError(f"quorum fraction must be in (0, 1], got {q}")
        if self.min_quorum < 1:
            raise ValueError(f"min_quorum must be >= 1, got {self.min_quorum}")
        if self.staleness_window < 0:
            raise ValueError(
                f"staleness_window must be >= 0, got {self.staleness_window}"
            )

    def resolve(self, size: int) -> int:
        """The contribution count this policy demands of a ``size``-rank op."""
        if isinstance(self.quorum, int):
            count = self.quorum
        else:
            count = math.ceil(self.quorum * size)
        return max(1, min(count, size))

    def floor(self, size: int) -> int:
        """The ``min_quorum`` floor, clamped to the communicator."""
        return max(1, min(self.min_quorum, size))
