"""Fabric: instantiates the links of a machine and routes transfers.

Link inventory built from a :class:`~repro.machine.spec.MachineSpec`:

* per socket: one aggregate memory link (intra-socket flows contend here;
  capacity = ``shm.bandwidth * shm_concurrency``),
* per node and direction: one QPI link,
* per node and direction: one NIC link (all inter-node flows of a node share
  it — one NIC per node unless ``nics_per_node`` says otherwise),
* per socket (GPU machines): PCIe host-to-device, device-to-host and
  GPU-to-GPU peer (CUDA IPC) links, each a separate set of lanes.

Routing returns the ordered link path, the summed path latency, and the
per-flow rate cap (the narrowest level's pair bandwidth), for any combination
of host/GPU endpoints. The data-path rules are the paper's Section 4 rules:
same-socket GPU pairs use PCIe peer-to-peer; cross-socket GPU pairs stage
through CPU memory; inter-node GPU pairs either use GPUDirect (D2H PCIe ->
NIC -> PCIe H2D) or stage through host buffers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.machine.spec import CommLevel, MachineSpec
from repro.machine.topology import Topology
from repro.network.fairshare import FairShareNetwork
from repro.network.flows import Flow
from repro.network.links import Link
from repro.sim.engine import Engine


class MemSpace(enum.Enum):
    """Which memory an endpoint buffer lives in."""

    HOST = "host"
    GPU = "gpu"

    # Members are singletons with identity equality, so identity hashing is
    # equivalent — and C-speed, unlike Enum.__hash__, which shows up in
    # profiles via the route/channel cache keys built around these members.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class Route:
    """Resolved path for one transfer."""

    links: tuple[Link, ...]
    latency: float
    rate_cap: float

    def uncontended_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.rate_cap


class Fabric:
    """Link inventory + routing for one simulated machine."""

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        topology: Topology,
        shm_concurrency: Optional[int] = None,
        gpudirect: bool = True,
        nic_shares_gpu_pcie: bool = False,
    ):
        # Socket memory aggregate defaults to one pair-bandwidth share per
        # core: a fully pipelined intra-socket chain is then uncontended,
        # keeping the inter-node fabric the slowest level — the paper's
        # stated regime (Section 3.2.2).
        if shm_concurrency is None:
            shm_concurrency = max(4, spec.node.cores_per_socket)
        self.engine = engine
        self.spec = spec
        self.topology = topology
        self.network = FairShareNetwork(engine)
        self.gpudirect = gpudirect
        self.nic_shares_gpu_pcie = nic_shares_gpu_pcie
        self._links: dict[str, Link] = {}
        self._shm_concurrency = shm_concurrency
        self._route_cache: dict[tuple, Route] = {}
        # In-order data channels: one data transfer at a time per
        # (src, dst, spaces) connection, like an MPI BTL queue pair. Control
        # messages (RTS/CTS) bypass, so handshakes overlap data — the overlap
        # ADAPT's in-flight window exploits.
        self._channel_busy: dict[tuple, bool] = {}
        self._channel_queue: dict[tuple, list] = {}
        # Fault filter (repro.faults.FabricFaults): consulted per data-plane
        # transfer when installed; may swallow a delivery (message drop) or
        # request a duplicate copy. None costs one test per transfer.
        self.faults = None

    # -- link inventory ------------------------------------------------------

    def _link(self, name: str, capacity: float) -> Link:
        link = self._links.get(name)
        if link is None:
            link = Link(name, capacity)
            self._links[name] = link
        return link

    def socket_mem_link(self, node: int, socket: int) -> Link:
        cap = self.spec.shm.bandwidth * self._shm_concurrency
        return self._link(f"shm:n{node}.s{socket}", cap)

    def qpi_link(self, node: int, src_socket: int, dst_socket: int) -> Link:
        direction = f"{src_socket}->{dst_socket}"
        return self._link(f"qpi:n{node}:{direction}", self.spec.qpi.bandwidth)

    def nic_out_link(self, node: int) -> Link:
        cap = self.spec.fabric.bandwidth * self.spec.nics_per_node
        return self._link(f"nic-out:n{node}", cap)

    def nic_in_link(self, node: int) -> Link:
        cap = self.spec.fabric.bandwidth * self.spec.nics_per_node
        return self._link(f"nic-in:n{node}", cap)

    def _inter_node_leg(self, ps, pd) -> tuple[list[Link], float, float]:
        """The node-to-node segment of a route: links, latency, rate cap.

        The flat model: the source node's NIC injection lane and the
        destination's ejection lane, one fabric latency. Compiled
        topologies (:class:`~repro.network.topofabric.TopoFabric`) override
        this with the multi-tier switch path of the machine model.
        """
        return (
            [self.nic_out_link(ps.node), self.nic_in_link(pd.node)],
            self.spec.fabric.alpha,
            self.spec.fabric.bandwidth,
        )

    def _gpu_params(self):
        gpu = self.spec.node.gpu
        if gpu is None:
            raise ValueError(f"machine {self.spec.name!r} has no GPUs")
        return gpu

    def gpu_out_link(self, node: int, socket: int, gpu: int) -> Link:
        """One GPU's PCIe egress lane — shared by D2H copies, peer-to-peer
        sends and GPUDirect sends from that GPU (the congestion of the
        paper's Figure 6a)."""
        return self._link(
            f"pcie-out:n{node}.s{socket}.g{gpu}", self._gpu_params().pcie.bandwidth
        )

    def gpu_in_link(self, node: int, socket: int, gpu: int) -> Link:
        """One GPU's PCIe ingress lane (H2D copies, peer receives)."""
        return self._link(
            f"pcie-in:n{node}.s{socket}.g{gpu}", self._gpu_params().pcie.bandwidth
        )

    def links(self) -> dict[str, Link]:
        """All links instantiated so far (lazily created on first route)."""
        return dict(self._links)

    def utilization_report(self, elapsed: float) -> list[tuple[str, float, float]]:
        """Per-link traffic over ``elapsed`` seconds.

        Returns ``(link name, bytes carried, mean utilization fraction)``
        sorted by utilization — how the tests and examples show which level
        is the bottleneck (e.g. the NIC under a topology-aware chain).
        """
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        rows = [
            (
                link.name,
                link.bytes_carried,
                link.bytes_carried / (link.capacity * elapsed),
            )
            for link in self._links.values()
        ]
        rows.sort(key=lambda r: -r[2])
        return rows

    # -- routing --------------------------------------------------------------

    def route(
        self,
        src: int,
        dst: int,
        src_space: MemSpace = MemSpace.HOST,
        dst_space: MemSpace = MemSpace.HOST,
    ) -> Route:
        """Resolve the link path between two ranks' buffers."""
        key = (src, dst, src_space, dst_space)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        route = self._route_uncached(src, dst, src_space, dst_space)
        self._route_cache[key] = route
        return route

    def _route_uncached(
        self, src: int, dst: int, src_space: MemSpace, dst_space: MemSpace
    ) -> Route:
        topo = self.topology
        spec = self.spec
        ps, pd = topo.placement(src), topo.placement(dst)
        level = topo.level(src, dst)

        links: list[Link] = []
        latency = 0.0
        rate_cap = float("inf")

        def add_cpu_leg() -> None:
            nonlocal latency, rate_cap
            if level == CommLevel.SELF:
                # Loopback: memcpy-speed, no shared link.
                latency += spec.shm.alpha
                rate_cap = min(rate_cap, spec.memcpy_bandwidth)
            elif level == CommLevel.INTRA_SOCKET:
                links.append(self.socket_mem_link(ps.node, ps.socket))
                latency += spec.shm.alpha
                rate_cap = min(rate_cap, spec.shm.bandwidth)
            elif level == CommLevel.INTER_SOCKET:
                links.append(self.qpi_link(ps.node, ps.socket, pd.socket))
                latency += spec.qpi.alpha
                rate_cap = min(rate_cap, spec.qpi.bandwidth)
            else:  # INTER_NODE
                leg_links, leg_latency, leg_cap = self._inter_node_leg(ps, pd)
                links.extend(leg_links)
                latency += leg_latency
                rate_cap = min(rate_cap, leg_cap)

        if src_space == MemSpace.HOST and dst_space == MemSpace.HOST:
            add_cpu_leg()
            return Route(tuple(links), latency, rate_cap)

        gpu = self._gpu_params()
        pcie = gpu.pcie

        def add_d2h() -> None:
            """Source GPU's egress lane."""
            nonlocal latency, rate_cap
            assert ps.gpu is not None
            links.append(self.gpu_out_link(ps.node, ps.socket, ps.gpu))
            latency += pcie.alpha
            rate_cap = min(rate_cap, pcie.bandwidth)

        def add_h2d() -> None:
            """Destination GPU's ingress lane."""
            nonlocal latency, rate_cap
            assert pd.gpu is not None
            links.append(self.gpu_in_link(pd.node, pd.socket, pd.gpu))
            latency += pcie.alpha
            rate_cap = min(rate_cap, pcie.bandwidth)

        if src_space == MemSpace.GPU and dst_space == MemSpace.GPU:
            if level in (CommLevel.SELF, CommLevel.INTRA_SOCKET):
                # CUDA IPC through the shared PCIe switch: the sender's
                # egress and the receiver's ingress lanes.
                add_d2h()
                if ps.gpu != pd.gpu or ps.node != pd.node or ps.socket != pd.socket:
                    add_h2d()
            elif level == CommLevel.INTER_SOCKET:
                # Staged through CPU memory: D2H, QPI, H2D (Section 4 rule).
                add_d2h()
                add_cpu_leg()
                add_h2d()
            else:  # INTER_NODE
                if self.gpudirect:
                    add_d2h()
                    add_cpu_leg()
                    add_h2d()
                else:
                    # Staged through implicit host buffers on both ends; same
                    # bus path, plus the extra copies' latency charged here
                    # (bandwidth effect is modelled via the memcpy rate cap).
                    add_d2h()
                    add_cpu_leg()
                    add_h2d()
                    latency += 2 * spec.shm.alpha
                    rate_cap = min(rate_cap, spec.memcpy_bandwidth)
        elif src_space == MemSpace.GPU:  # GPU -> HOST
            add_d2h()
            if level not in (CommLevel.SELF,) and (ps.node, ps.socket) != (
                pd.node,
                pd.socket,
            ):
                add_cpu_leg()
        else:  # HOST -> GPU
            if level not in (CommLevel.SELF,) and (ps.node, ps.socket) != (
                pd.node,
                pd.socket,
            ):
                add_cpu_leg()
            add_h2d()

        return Route(tuple(links), latency, rate_cap)

    # -- transfers -------------------------------------------------------------

    def start_transfer(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_complete: Callable[[Flow], None],
        src_space: MemSpace = MemSpace.HOST,
        dst_space: MemSpace = MemSpace.HOST,
        extra_latency: float = 0.0,
        taginfo=None,
        ordered: bool = True,
    ) -> Optional[Flow]:
        """Launch the wire transfer of one message/segment.

        ``ordered=True`` (data plane) serializes the transfer behind earlier
        transfers on the same (src, dst, spaces) channel; ``ordered=False``
        (control plane) goes immediately. Returns the flow, or None if the
        transfer was queued behind channel predecessors.

        An installed fault filter sees every transfer that carries
        ``taginfo`` (MPI data plane; staging copies pass None and are
        exempt). The filter wraps ``on_complete`` *before* channel chaining,
        so a dropped message still releases its in-order channel.

        An active network partition *severs* cross-cut transfers: the
        message never enters the wire — no flow, no channel occupancy, no
        delivery (unlike a drop, where the bytes cross and the delivery
        evaporates).
        """
        if self.faults is not None and self.faults.severed(src, dst):
            self.faults.count_severed(src, dst, nbytes, taginfo)
            return None
        if self.faults is not None and taginfo is not None:
            on_complete, dup_cb = self.faults.intercept(
                src, dst, nbytes, taginfo, on_complete
            )
            if dup_cb is not None:
                flow = self._start_one(
                    src, dst, nbytes, on_complete, src_space, dst_space,
                    extra_latency, taginfo, ordered,
                )
                # The duplicate rides the same channel right behind the
                # original; the receiver's sequence check suppresses it.
                self._start_one(
                    src, dst, nbytes, dup_cb, src_space, dst_space,
                    extra_latency, taginfo, ordered,
                )
                return flow
        return self._start_one(
            src, dst, nbytes, on_complete, src_space, dst_space,
            extra_latency, taginfo, ordered,
        )

    def _start_one(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_complete: Callable[[Flow], None],
        src_space: MemSpace,
        dst_space: MemSpace,
        extra_latency: float,
        taginfo,
        ordered: bool,
    ) -> Optional[Flow]:
        if not ordered:
            return self._launch(src, dst, nbytes, on_complete, src_space, dst_space,
                                extra_latency, taginfo)
        key = (src, dst, src_space, dst_space)
        if self._channel_busy.get(key):
            self._channel_queue.setdefault(key, []).append(
                (src, dst, nbytes, on_complete, src_space, dst_space,
                 extra_latency, taginfo)
            )
            return None
        self._channel_busy[key] = True
        return self._launch(src, dst, nbytes, self._chain(key, on_complete),
                            src_space, dst_space, extra_latency, taginfo)

    def start_control(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_complete: Callable[[], None],
        taginfo=None,
    ) -> None:
        """Deliver a tiny control message (RTS/CTS) after path latency.

        Control packets are a few cache lines; their serialization time is
        negligible and real fabrics absorb them without disturbing bulk
        transfers, so they are modelled as pure latency rather than flows —
        they never join contention components. They *are* subject to
        partition severing (an ack, heartbeat, or membership token cannot
        cross a cut any more than data can); ``taginfo`` only classifies
        the severed-message accounting and enables no other fault kind.
        """
        if self.faults is not None and self.faults.severed(src, dst):
            self.faults.count_severed(src, dst, nbytes, taginfo)
            return
        route = self.route(src, dst, MemSpace.HOST, MemSpace.HOST)
        delay = route.latency + nbytes / route.rate_cap
        # Handle-free post: control deliveries are never cancelled.
        self.engine.post_after(delay, on_complete)

    def _chain(self, key: tuple, on_complete: Callable[[Flow], None]):
        def done(flow: Flow) -> None:
            queue = self._channel_queue.get(key)
            if queue:
                nxt = queue.pop(0)
                (src, dst, nbytes, cb, src_space, dst_space, extra, taginfo) = nxt
                self._launch(src, dst, nbytes, self._chain(key, cb),
                             src_space, dst_space, extra, taginfo)
            else:
                self._channel_busy[key] = False
            on_complete(flow)

        return done

    def _launch(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_complete: Callable[[Flow], None],
        src_space: MemSpace,
        dst_space: MemSpace,
        extra_latency: float,
        taginfo,
    ) -> Flow:
        route = self.route(src, dst, src_space, dst_space)
        return self.network.submit(
            route.links,
            nbytes,
            route.rate_cap,
            route.latency + extra_latency,
            on_complete,
            taginfo=taginfo,
        )
