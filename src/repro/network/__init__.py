"""Contended network substrate.

Every point-to-point transfer in the simulated MPI runtime becomes a
:class:`Flow` over an explicit path of :class:`Link` objects (socket memory,
QPI, NIC, PCIe lanes). Bandwidth on each link is shared **max-min fairly**
among the flows crossing it, with per-flow rate caps (a flow can never exceed
its narrowest level's pair bandwidth). Rates are reallocated whenever a flow
starts or finishes, restricted to the connected component of links/flows the
change can affect.

This is the mechanism behind the paper's two performance stories:

* Section 3.2.2 — three concurrent sends over inter-node, inter-socket and
  intra-socket links each progress at their own link speed; a ``Waitall``
  then forces the *program* to wait for the slowest, not the network.
* Section 4.1 — three flows sharing one PCIe direction each get one third of
  its bandwidth, motivating the explicit CPU staging buffer.
"""

from repro.network.links import Link
from repro.network.flows import Flow
from repro.network.fairshare import FairShareNetwork
from repro.network.fabric import Fabric, MemSpace, Route

__all__ = ["Link", "Flow", "FairShareNetwork", "Fabric", "MemSpace", "Route"]
