"""Max-min fair bandwidth allocation with per-flow rate caps.

The allocator implements classic *progressive filling*: repeatedly find the
most constrained resource — either the bottleneck link (smallest remaining
capacity per unfixed flow) or a flow whose cap is below that share — fix the
corresponding flows' rates, subtract them from the links they cross, repeat.

Rates only change when the set of active flows changes, and only within the
connected component of links/flows reachable from the changed flow's path;
disjoint components provably do not affect each other's max-min allocation,
so recomputation is local and large simulations stay fast.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.network.flows import Flow
from repro.network.links import Link
from repro.sim.engine import Engine

# Residual bytes below this count as "transfer finished" (guards float drift).
_EPSILON_BYTES = 1e-6


# Components below this flow count use the flat-scan variant: the heap's
# setup cost (heapify, stamps, touched-set upkeep) only pays off once the
# per-round O(links + flows) rescan it replaces is large enough.
_HEAP_THRESHOLD = 96


def maxmin_rates(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Compute the max-min fair rate of every flow in one component.

    Pure function (does not mutate flows/links); exposed separately so the
    property-based tests can check the allocation invariants directly.

    Incremental progressive filling: instead of rescanning every link and
    every unfixed flow on each fill round (the reference implementation
    below, O(rounds x (links + flows))), the bottleneck link comes from a
    lazily-invalidated heap of per-link shares — only links whose remaining
    capacity or unfixed count changed get a fresh entry — and the smallest
    unfixed cap comes from a list pre-sorted by (rate_cap, fid) walked by a
    monotone pointer, so ``cap_flow`` costs amortised O(1) instead of an
    O(flows) ``min()`` scan per round (and is never computed eagerly when
    the bottleneck branch wins). Small components (the common case on
    topology-aware trees) dispatch to a flat-scan variant that keeps the
    lazy-cap optimization but skips the heap. Fix order and float
    arithmetic match :func:`maxmin_rates_reference` exactly: ties between
    equal shares resolve to the earliest link in ``links`` order, and flows
    fix in fid order within a round, so all variants return bit-identical
    rates.
    """
    if len(flows) < _HEAP_THRESHOLD:
        return _maxmin_scan(flows, links)
    return _maxmin_heap(flows, links)


def _maxmin_scan(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Progressive filling with per-round link rescans but lazy cap lookup."""
    remaining_cap = {link: link.capacity for link in links}
    unfixed_per_link: dict[Link, int] = {link: 0 for link in links}
    for f in flows:
        for link in f.path:
            if link in unfixed_per_link:
                unfixed_per_link[link] += 1
    rates: dict[Flow, float] = {}
    by_cap = sorted(set(flows), key=lambda f: (f.rate_cap, f.fid))
    n_unfixed = len(by_cap)
    cap_ptr = 0

    def _fix(flow: Flow, rate: float) -> None:
        nonlocal n_unfixed
        rates[flow] = rate
        n_unfixed -= 1
        for link in flow.path:
            if link in remaining_cap:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
                unfixed_per_link[link] -= 1

    while n_unfixed > 0:
        # Bottleneck share over links that still carry unfixed flows.
        bottleneck_share: Optional[float] = None
        bottleneck_link: Optional[Link] = None
        for link in links:
            n = unfixed_per_link[link]
            if n <= 0:
                continue
            share = remaining_cap[link] / n
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        # Lazy cap_flow: the monotone pointer replaces an O(flows) min().
        while cap_ptr < len(by_cap) and by_cap[cap_ptr] in rates:
            cap_ptr += 1

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in by_cap[cap_ptr:]:
                if f not in rates:
                    _fix(f, f.rate_cap)
        elif by_cap[cap_ptr].rate_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            batch = []
            j = cap_ptr
            while j < len(by_cap):
                f = by_cap[j]
                if f not in rates:
                    if f.rate_cap > threshold:
                        break
                    batch.append(f)
                j += 1
            batch.sort(key=lambda f: f.fid)
            for f in batch:
                _fix(f, f.rate_cap)
        else:
            assert bottleneck_link is not None
            batch = sorted(
                {f for f in flows if bottleneck_link in f.path and f not in rates},
                key=lambda f: f.fid,
            )
            for f in batch:
                _fix(f, bottleneck_share)
    return rates


def _maxmin_heap(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Progressive filling with a lazily-invalidated heap of link shares."""
    nlinks = len(links)
    link_index: dict[Link, int] = {}
    for i, link in enumerate(links):
        link_index[link] = i
    remaining = [link.capacity for link in links]
    count = [0] * nlinks
    flows_on: list[list[Flow]] = [[] for _ in range(nlinks)]
    for f in flows:
        for link in f.path:
            i = link_index.get(link)
            if i is not None:
                count[i] += 1
                flows_on[i].append(f)

    rates: dict[Flow, float] = {}
    by_cap = sorted(set(flows), key=lambda f: (f.rate_cap, f.fid))
    n_unfixed = len(by_cap)
    cap_ptr = 0

    # (share, link index, stamp) entries; an entry is stale when its stamp
    # no longer matches the link's. Index breaks share ties exactly like the
    # reference's first-smallest-wins scan over ``links``.
    stamp = [0] * nlinks
    heap = [
        (remaining[i] / count[i], i, 0) for i in range(nlinks) if count[i] > 0
    ]
    heapq.heapify(heap)
    heappush, heappop = heapq.heappush, heapq.heappop
    touched: set[int] = set()

    def _fix(flow: Flow, rate: float) -> None:
        nonlocal n_unfixed
        rates[flow] = rate
        n_unfixed -= 1
        for link in flow.path:
            i = link_index.get(link)
            if i is not None:
                remaining[i] = max(0.0, remaining[i] - rate)
                count[i] -= 1
                touched.add(i)

    while n_unfixed > 0:
        # Current bottleneck share: pop stale entries until a live one tops.
        bottleneck_share: Optional[float] = None
        bottleneck_idx = -1
        while heap:
            share, i, s = heap[0]
            if s != stamp[i] or count[i] <= 0:
                heappop(heap)
                continue
            bottleneck_share = share
            bottleneck_idx = i
            break
        # Lazy cap_flow: advance the monotone pointer past fixed flows.
        while cap_ptr < len(by_cap) and by_cap[cap_ptr] in rates:
            cap_ptr += 1

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in by_cap[cap_ptr:]:
                if f not in rates:
                    _fix(f, f.rate_cap)
        elif by_cap[cap_ptr].rate_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            batch = []
            j = cap_ptr
            while j < len(by_cap):
                f = by_cap[j]
                if f not in rates:
                    if f.rate_cap > threshold:
                        break
                    batch.append(f)
                j += 1
            batch.sort(key=lambda f: f.fid)
            for f in batch:
                _fix(f, f.rate_cap)
        else:
            batch = sorted(
                {f for f in flows_on[bottleneck_idx] if f not in rates},
                key=lambda f: f.fid,
            )
            for f in batch:
                _fix(f, bottleneck_share)
        for i in touched:
            stamp[i] += 1
            if count[i] > 0:
                heappush(heap, (remaining[i] / count[i], i, stamp[i]))
        touched.clear()
    return rates


def maxmin_rates_reference(
    flows: Sequence[Flow], links: Sequence[Link]
) -> dict[Flow, float]:
    """The pre-optimization allocator, kept as the correctness oracle.

    Rescans all links and all unfixed flows every fill round. The property
    tests assert :func:`maxmin_rates` matches it bit-for-bit and the perf
    bench (``repro bench``) reports the throughput ratio between the two.
    """
    remaining_cap = {link: link.capacity for link in links}
    unfixed_per_link: dict[Link, int] = {link: 0 for link in links}
    for f in flows:
        for link in f.path:
            if link in unfixed_per_link:
                unfixed_per_link[link] += 1
    rates: dict[Flow, float] = {}
    unfixed = set(flows)

    def _fix(flow: Flow, rate: float) -> None:
        rates[flow] = rate
        unfixed.discard(flow)
        for link in flow.path:
            if link in remaining_cap:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
                unfixed_per_link[link] -= 1

    while unfixed:
        # Bottleneck share over links that still carry unfixed flows.
        bottleneck_share: Optional[float] = None
        bottleneck_link: Optional[Link] = None
        for link in links:
            n = unfixed_per_link[link]
            if n <= 0:
                continue
            share = remaining_cap[link] / n
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        # Smallest cap among unfixed flows.
        cap_flow = min(unfixed, key=lambda f: (f.rate_cap, f.fid))
        min_cap = cap_flow.rate_cap

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in list(unfixed):
                _fix(f, f.rate_cap)
        elif min_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            fixed = [f for f in unfixed if f.rate_cap <= threshold]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, f.rate_cap)
        else:
            assert bottleneck_link is not None
            fixed = [f for f in unfixed if bottleneck_link in f.path]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, bottleneck_share)
    return rates


class FairShareNetwork:
    """Owns active flows and keeps their rates max-min fair as they come and go."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._next_fid = 0
        self.active: set[Flow] = set()
        self.flows_completed = 0
        # Optional invariant checker (repro.analysis.sanitizer); the owning
        # MpiWorld installs it when constructed with sanitize=True.
        self.sanitizer = None
        # Optional span recorder (repro.obs); installed by MpiWorld when
        # built with observe=True. Each finished flow records one span per
        # link of its path (the per-link busy/bandwidth metrics).
        self.obs = None

    # -- public API --------------------------------------------------------

    def submit(
        self,
        path: Sequence[Link],
        nbytes: int,
        rate_cap: float,
        latency: float,
        on_complete: Callable[[Flow], None],
        taginfo=None,
    ) -> Flow:
        """Create a flow; it occupies its links after ``latency`` seconds and
        calls ``on_complete(flow)`` when the last byte drains."""
        self._next_fid += 1
        flow = Flow(self._next_fid, path, nbytes, rate_cap, on_complete, taginfo)
        flow.start_time = self.engine.now
        if latency > 0.0:
            self.engine.call_after(latency, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def refresh(self, links: Sequence[Link]) -> None:
        """Recompute rates after an external capacity change (link flap).

        Rates normally change only when the flow set changes; a bandwidth
        flap (repro.faults) changes ``Link.capacity`` under live flows, so
        each affected connected component must be rebalanced once.
        """
        seen: set[Flow] = set()
        for link in links:
            for flow in list(link.flows):
                if flow in seen or flow.done:
                    continue
                comp_flows, _ = self._component(flow)
                seen.update(comp_flows)
                self._rebalance(flow)

    # -- internals ----------------------------------------------------------

    def _activate(self, flow: Flow) -> None:
        flow.last_update = self.engine.now
        if flow.nbytes <= 0 or not flow.path:
            # Zero-byte transfers and loopback paths finish immediately after
            # latency (loopback copy cost is charged by the caller as CPU or
            # memcpy work, not as a network flow).
            if flow.nbytes > 0 and not flow.path:
                # Uncontended loopback: drain at the rate cap.
                self.engine.call_after(
                    flow.nbytes / flow.rate_cap, self._finish, flow
                )
                flow.rate = flow.rate_cap
                self.active.add(flow)
                return
            self._finish(flow)
            return
        self.active.add(flow)
        for link in flow.path:
            link.flows.add(flow)
        self._rebalance(flow)

    def _finish(self, flow: Flow) -> None:
        if flow.done:
            return
        flow.drain(self.engine.now)
        flow.remaining = 0.0
        flow.finish_time = self.engine.now
        if flow.completion is not None:
            flow.completion.cancel()
            flow.completion = None
        self.active.discard(flow)
        had_links = bool(flow.path)
        for link in flow.path:
            link.flows.discard(flow)
        self.flows_completed += 1
        if self.obs is not None and had_links:
            # Span per link over the flow's wire lifetime (submit -> drain;
            # includes the path latency prefix, which is negligible against
            # the transfer for the segment sizes the collectives move).
            ti = flow.taginfo
            if ti is not None:
                kind, src, dst, tag = ti
                name = f"{kind} {src}->{dst}"
                args = {"tag": tag, "nbytes": flow.nbytes}
            else:
                name = "copy"
                args = {"nbytes": flow.nbytes}
            for link in flow.path:
                self.obs.add(
                    "flow", name, ("link", link.name),
                    flow.start_time, flow.finish_time, args,
                )
            self.obs.count("net.flows_completed")
        cb = flow.on_complete
        cb(flow)
        if had_links:
            self._rebalance(flow)

    def _component(self, seed: Flow) -> tuple[list[Flow], list[Link]]:
        """Flows/links transitively sharing a link with ``seed``'s path."""
        comp_links: set[Link] = set()
        comp_flows: set[Flow] = set()
        frontier_links = list(seed.path)
        while frontier_links:
            link = frontier_links.pop()
            if link in comp_links:
                continue
            comp_links.add(link)
            for f in link.flows:
                if f in comp_flows:
                    continue
                comp_flows.add(f)
                for l2 in f.path:
                    if l2 not in comp_links:
                        frontier_links.append(l2)
        return list(comp_flows), list(comp_links)

    def _rebalance(self, seed: Flow) -> None:
        now = self.engine.now
        # Fast path: the seed shares no link with any other flow, so its
        # max-min rate is simply its cap bounded by its link capacities —
        # the overwhelmingly common case on topology-aware trees, where a
        # link rarely carries more than one in-order data flow at a time.
        alone = (
            not seed.done
            and seed in self.active
            and all(len(link.flows) <= 1 for link in seed.path)
        )
        if alone:
            seed.drain(now)
            if seed.remaining <= _EPSILON_BYTES:
                self._finish(seed)
                return
            rate = min(
                (link.capacity for link in seed.path), default=seed.rate_cap
            )
            rate = min(rate, seed.rate_cap)
            if abs(rate - seed.rate) > 1e-9 * max(rate, seed.rate) or seed.completion is None:
                if seed.completion is not None:
                    seed.completion.cancel()
                seed.rate = rate
                seed.completion = self.engine.call_after(
                    seed.remaining / rate, self._finish, seed
                )
            if self.sanitizer is not None:
                self.sanitizer.check_rates((seed,), seed.path)
            return
        comp_flows, comp_links = self._component(seed)
        if not comp_flows:
            return
        # Deterministic ordering for reproducible float arithmetic.
        comp_flows.sort(key=lambda f: f.fid)
        comp_links.sort(key=lambda l: l.name)
        for f in comp_flows:
            f.drain(now)
        rates = maxmin_rates(comp_flows, comp_links)
        finished: list[Flow] = []
        for f in comp_flows:
            new_rate = rates[f]
            if f.remaining <= _EPSILON_BYTES:
                finished.append(f)
                continue
            if f.completion is not None:
                # Skip the cancel/reschedule churn when the rate is unchanged
                # — the common case for flows dragged into a component by a
                # link they share with an unaffected neighbour.
                if abs(new_rate - f.rate) <= 1e-9 * max(new_rate, f.rate):
                    continue
                f.completion.cancel()
                f.completion = None
            f.rate = new_rate
            if new_rate > 0.0:
                eta = f.remaining / new_rate
                f.completion = self.engine.call_after(eta, self._finish, f)
            # rate == 0 flows stay parked until a rebalance frees capacity.
        if self.sanitizer is not None:
            self.sanitizer.check_rates(comp_flows, comp_links)
        for f in finished:
            self._finish(f)
