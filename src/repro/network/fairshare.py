"""Max-min fair bandwidth allocation with per-flow rate caps.

The allocator implements classic *progressive filling*: repeatedly find the
most constrained resource — either the bottleneck link (smallest remaining
capacity per unfixed flow) or a flow whose cap is below that share — fix the
corresponding flows' rates, subtract them from the links they cross, repeat.

Rates only change when the set of active flows changes, and only within the
connected component of links/flows reachable from the changed flow's path;
disjoint components provably do not affect each other's max-min allocation,
so recomputation is local and large simulations stay fast.
"""

from __future__ import annotations

import heapq
from operator import attrgetter
from typing import Callable, Optional, Sequence

try:  # numpy backs the vectorized allocator and the array mirror (§23);
    import numpy as _np  # the pure-Python variants remain the fallback.
except ImportError:  # pragma: no cover - baked into the toolchain image
    _np = None

from repro.network.flows import Flow
from repro.network.links import Link
from repro.sim.engine import Engine

# Residual bytes below this count as "transfer finished" (guards float drift).
_EPSILON_BYTES = 1e-6

# Hot-path sort keys (attrgetter beats an equivalent lambda per element).
_BY_FID = attrgetter("fid")
_BY_NAME = attrgetter("name")
_BY_CAP_FID = attrgetter("rate_cap", "fid")


# Components below this flow count use the flat-scan variant: the heap's
# setup cost (heapify, stamps, touched-set upkeep) only pays off once the
# per-round O(links + flows) rescan it replaces is large enough.
_HEAP_THRESHOLD = 96

# Components at or above this flow count use the numpy water-filling variant:
# the per-round bottleneck search collapses to one C-level masked divide +
# argmin over the link columns. Measured crossover vs the heap variant is
# flat (~1.0x at 8K flows, slightly behind below), so the threshold sits
# where the vec variant is never a regression while its 4-5x advantage over
# the reference keeps growing with component size.
_VEC_THRESHOLD = 4096


def maxmin_rates(
    flows: Sequence[Flow],
    links: Sequence[Link],
    state: "Optional[FlowArrayState]" = None,
) -> dict[Flow, float]:
    """Compute the max-min fair rate of every flow in one component.

    Pure function (does not mutate flows/links); exposed separately so the
    property-based tests can check the allocation invariants directly.

    Incremental progressive filling: instead of rescanning every link and
    every unfixed flow on each fill round (the reference implementation
    below, O(rounds x (links + flows))), the bottleneck link comes from a
    lazily-invalidated heap of per-link shares — only links whose remaining
    capacity or unfixed count changed get a fresh entry — and the smallest
    unfixed cap comes from a list pre-sorted by (rate_cap, fid) walked by a
    monotone pointer, so ``cap_flow`` costs amortised O(1) instead of an
    O(flows) ``min()`` scan per round (and is never computed eagerly when
    the bottleneck branch wins). Small components (the common case on
    topology-aware trees) dispatch to a flat-scan variant that keeps the
    lazy-cap optimization but skips the heap; very large components
    dispatch to :func:`maxmin_rates_vec`, which vectorizes the bottleneck
    search over numpy arrays. Fix order and float arithmetic match
    :func:`maxmin_rates_reference` exactly: ties between equal shares
    resolve to the earliest link in ``links`` order, and flows fix in fid
    order within a round, so all variants return bit-identical rates.
    """
    n = len(flows)
    if n < _HEAP_THRESHOLD:
        return _maxmin_scan(flows, links)
    if _np is not None and n >= _VEC_THRESHOLD:
        return maxmin_rates_vec(flows, links, state)
    return _maxmin_heap(flows, links)


def _maxmin_scan(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Progressive filling with per-round link rescans but lazy cap lookup."""
    remaining_cap = {link: link.capacity for link in links}
    unfixed_per_link: dict[Link, int] = {link: 0 for link in links}
    for f in flows:
        for link in f.path:
            if link in unfixed_per_link:
                unfixed_per_link[link] += 1
    rates: dict[Flow, float] = {}
    by_cap = sorted(set(flows), key=_BY_CAP_FID)
    n_unfixed = len(by_cap)
    cap_ptr = 0

    nflows = len(by_cap)

    def _fix(flow: Flow, rate: float) -> None:
        nonlocal n_unfixed
        rates[flow] = rate
        n_unfixed -= 1
        for link in flow.path:
            if link in remaining_cap:
                r = remaining_cap[link] - rate
                remaining_cap[link] = r if r > 0.0 else 0.0
                unfixed_per_link[link] -= 1

    while n_unfixed > 0:
        # Bottleneck share over links that still carry unfixed flows.
        bottleneck_share: Optional[float] = None
        bottleneck_link: Optional[Link] = None
        for link in links:
            n = unfixed_per_link[link]
            if n <= 0:
                continue
            share = remaining_cap[link] / n
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        # Lazy cap_flow: the monotone pointer replaces an O(flows) min().
        while cap_ptr < nflows and by_cap[cap_ptr] in rates:
            cap_ptr += 1

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in by_cap[cap_ptr:]:
                if f not in rates:
                    _fix(f, f.rate_cap)
        elif by_cap[cap_ptr].rate_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            batch = []
            j = cap_ptr
            while j < len(by_cap):
                f = by_cap[j]
                if f not in rates:
                    if f.rate_cap > threshold:
                        break
                    batch.append(f)
                j += 1
            batch.sort(key=_BY_FID)
            for f in batch:
                _fix(f, f.rate_cap)
        else:
            assert bottleneck_link is not None
            batch = sorted(
                {f for f in flows if bottleneck_link in f.path and f not in rates},
                key=_BY_FID,
            )
            for f in batch:
                _fix(f, bottleneck_share)
    return rates


def _maxmin_heap(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Progressive filling with a lazily-invalidated heap of link shares."""
    nlinks = len(links)
    link_index: dict[Link, int] = {}
    for i, link in enumerate(links):
        link_index[link] = i
    remaining = [link.capacity for link in links]
    count = [0] * nlinks
    flows_on: list[list[Flow]] = [[] for _ in range(nlinks)]
    for f in flows:
        for link in f.path:
            i = link_index.get(link)
            if i is not None:
                count[i] += 1
                flows_on[i].append(f)

    rates: dict[Flow, float] = {}
    by_cap = sorted(set(flows), key=_BY_CAP_FID)
    n_unfixed = len(by_cap)
    nflows = n_unfixed
    cap_ptr = 0

    # (share, link index, stamp) entries; an entry is stale when its stamp
    # no longer matches the link's. Index breaks share ties exactly like the
    # reference's first-smallest-wins scan over ``links``.
    stamp = [0] * nlinks
    heap = [
        (remaining[i] / count[i], i, 0) for i in range(nlinks) if count[i] > 0
    ]
    heapq.heapify(heap)
    heappush, heappop = heapq.heappush, heapq.heappop
    touched: set[int] = set()

    def _fix(flow: Flow, rate: float) -> None:
        nonlocal n_unfixed
        rates[flow] = rate
        n_unfixed -= 1
        for link in flow.path:
            i = link_index.get(link)
            if i is not None:
                r = remaining[i] - rate
                remaining[i] = r if r > 0.0 else 0.0
                count[i] -= 1
                touched.add(i)

    while n_unfixed > 0:
        # Current bottleneck share: pop stale entries until a live one tops.
        bottleneck_share: Optional[float] = None
        bottleneck_idx = -1
        while heap:
            share, i, s = heap[0]
            if s != stamp[i] or count[i] <= 0:
                heappop(heap)
                continue
            bottleneck_share = share
            bottleneck_idx = i
            break
        # Lazy cap_flow: advance the monotone pointer past fixed flows.
        while cap_ptr < nflows and by_cap[cap_ptr] in rates:
            cap_ptr += 1

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in by_cap[cap_ptr:]:
                if f not in rates:
                    _fix(f, f.rate_cap)
        elif by_cap[cap_ptr].rate_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            batch = []
            j = cap_ptr
            while j < len(by_cap):
                f = by_cap[j]
                if f not in rates:
                    if f.rate_cap > threshold:
                        break
                    batch.append(f)
                j += 1
            batch.sort(key=_BY_FID)
            for f in batch:
                _fix(f, f.rate_cap)
        else:
            batch = sorted(
                {f for f in flows_on[bottleneck_idx] if f not in rates},
                key=_BY_FID,
            )
            for f in batch:
                _fix(f, bottleneck_share)
        for i in touched:
            stamp[i] += 1
            if count[i] > 0:
                heappush(heap, (remaining[i] / count[i], i, stamp[i]))
        touched.clear()
    return rates


def maxmin_rates_reference(
    flows: Sequence[Flow], links: Sequence[Link]
) -> dict[Flow, float]:
    """The pre-optimization allocator, kept as the correctness oracle.

    Rescans all links and all unfixed flows every fill round. The property
    tests assert :func:`maxmin_rates` matches it bit-for-bit and the perf
    bench (``repro bench``) reports the throughput ratio between the two.
    """
    remaining_cap = {link: link.capacity for link in links}
    unfixed_per_link: dict[Link, int] = {link: 0 for link in links}
    for f in flows:
        for link in f.path:
            if link in unfixed_per_link:
                unfixed_per_link[link] += 1
    rates: dict[Flow, float] = {}
    unfixed = set(flows)

    def _fix(flow: Flow, rate: float) -> None:
        rates[flow] = rate
        unfixed.discard(flow)
        for link in flow.path:
            if link in remaining_cap:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
                unfixed_per_link[link] -= 1

    while unfixed:
        # Bottleneck share over links that still carry unfixed flows.
        bottleneck_share: Optional[float] = None
        bottleneck_link: Optional[Link] = None
        for link in links:
            n = unfixed_per_link[link]
            if n <= 0:
                continue
            share = remaining_cap[link] / n
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        # Smallest cap among unfixed flows.
        cap_flow = min(unfixed, key=lambda f: (f.rate_cap, f.fid))
        min_cap = cap_flow.rate_cap

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in list(unfixed):
                _fix(f, f.rate_cap)
        elif min_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            fixed = [f for f in unfixed if f.rate_cap <= threshold]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, f.rate_cap)
        else:
            assert bottleneck_link is not None
            fixed = [f for f in unfixed if bottleneck_link in f.path]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, bottleneck_share)
    return rates


def maxmin_rates_vec(
    flows: Sequence[Flow],
    links: Sequence[Link],
    state: "Optional[FlowArrayState]" = None,
) -> dict[Flow, float]:
    """Vectorized water-filling over the flow<->link incidence matrix.

    The component's incidence is assembled once as CSR-style rows (flows in
    (rate_cap, fid) order, entries = component-local link positions, one
    entry per path *occurrence*) plus the transpose (flow ids grouped by
    link, used to enumerate a bottleneck link's flows). Each fill round
    then costs one C-level masked divide + argmin over the link columns
    instead of a Python rescan or heap churn, while the per-fix residual
    updates stay plain Python-float list operations — numpy scalar
    indexing per entry would cost more than it saves at these sizes.

    Bit-compatible with :func:`maxmin_rates_reference` (see DESIGN.md §23
    for the float-tolerance contract): per-occurrence subtraction and
    clamping use the identical scalar IEEE-754 operations in the identical
    order, ``argmin`` resolves equal shares to the earliest link in
    ``links`` order exactly like the reference's strict ``<`` scan, and
    flows fix in fid order within a round — so the returned rates are
    bit-identical, not merely close.

    When ``state`` is given (the owning network's :class:`FlowArrayState`),
    row assembly translates each flow's cached global link-index row
    through a scratch lookup table instead of per-link dict probes.
    """
    if _np is None:  # pragma: no cover - numpy is part of the image
        return _maxmin_heap(flows, links)
    np = _np
    by_cap = sorted(set(flows), key=_BY_CAP_FID)
    nflows = len(by_cap)
    rates: dict[Flow, float] = {}
    if nflows == 0:
        return rates
    nlinks = len(links)

    # --- incidence rows: flows in by_cap order, local link ids per entry ---
    rows: Optional[list[list[int]]] = None
    if state is not None:
        built = state.local_rows(by_cap, links)
        if built is not None:
            indices, indptr = built
            idx = indices.tolist()
            ptr = indptr.tolist()
            rows = [idx[ptr[k]:ptr[k + 1]] for k in range(nflows)]
    if rows is None:
        link_index: dict[Link, int] = {}
        for i, link in enumerate(links):
            if link not in link_index:
                link_index[link] = i
        rows = []
        for f in by_cap:
            row = []
            for l in f.path:
                i = link_index.get(l)
                if i is not None:
                    row.append(i)
            rows.append(row)

    # Link columns: occupancy count, residual capacity (Python floats — the
    # per-fix updates are scalar), and the transpose (flow ids per link).
    counts = [0] * nlinks
    link_flows: list[list[int]] = [[] for _ in range(nlinks)]
    for k, row in enumerate(rows):
        for i in row:
            counts[i] += 1
            link_flows[i].append(k)
    remaining: list[float] = [link.capacity for link in links]
    shares = np.empty(nlinks, dtype=np.float64)
    fixed = bytearray(nflows)
    inf = float("inf")
    n_unfixed = nflows
    cap_ptr = 0
    asarray = np.asarray
    float64 = np.float64

    def _fix(k: int, rate: float) -> None:
        nonlocal n_unfixed
        rates[by_cap[k]] = rate
        fixed[k] = 1
        n_unfixed -= 1
        # Scalar per-occurrence update: identical arithmetic (and clamp
        # placement) to the reference's dict-based loop, so duplicated
        # path links subtract once per occurrence, bit-for-bit.
        for i in rows[k]:
            r = remaining[i] - rate
            remaining[i] = r if r > 0.0 else 0.0
            counts[i] -= 1

    while n_unfixed > 0:
        cnt = asarray(counts, dtype=float64)
        active = cnt > 0.0
        if active.any():
            shares.fill(inf)
            np.divide(
                asarray(remaining, dtype=float64), cnt,
                out=shares, where=active,
            )
            b = int(np.argmin(shares))
            bottleneck_share: Optional[float] = float(shares[b])
        else:
            b = -1
            bottleneck_share = None
        # Lazy cap_flow: advance the monotone pointer past fixed flows.
        while cap_ptr < nflows and fixed[cap_ptr]:
            cap_ptr += 1

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for k in range(cap_ptr, nflows):
                if not fixed[k]:
                    _fix(k, by_cap[k].rate_cap)
        elif by_cap[cap_ptr].rate_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            batch = []
            j = cap_ptr
            while j < nflows:
                if not fixed[j]:
                    if by_cap[j].rate_cap > threshold:
                        break
                    batch.append(j)
                j += 1
            batch.sort(key=lambda k: by_cap[k].fid)
            for k in batch:
                _fix(k, by_cap[k].rate_cap)
        else:
            batch = sorted(
                {k for k in link_flows[b] if not fixed[k]},
                key=lambda k: by_cap[k].fid,
            )
            for k in batch:
                _fix(k, bottleneck_share)
    return rates


class FlowArrayState:
    """Preallocated numpy mirror of per-flow / per-link scalars (§23).

    Flow columns are indexed by ``Flow.slot`` (free-listed; arrays double,
    never shrink), link columns by ``Link.index`` (append-only, assigned on
    first sight). The ``Flow``/``Link`` objects stay authoritative — the
    columns are snapshotted at registration and refreshed *in batch, on
    demand* (:meth:`refresh_remaining`) rather than on every drain: measured
    on the collective workloads, per-event numpy scalar stores cost more
    than every vectorized consumer saves. What the allocator actually
    gathers per call is the cached link-index row of each flow, translated
    through a scratch lookup table into component-local CSR incidence
    instead of per-entry Python dict probes.
    """

    __slots__ = (
        "remaining", "rate", "rate_cap", "link_capacity",
        "_free", "_lookup", "nlinks",
    )

    def __init__(self, capacity: int = 256, link_capacity_hint: int = 256):
        np = _np
        self.remaining = np.zeros(capacity, dtype=np.float64)
        self.rate = np.zeros(capacity, dtype=np.float64)
        self.rate_cap = np.zeros(capacity, dtype=np.float64)
        self._free = list(range(capacity - 1, -1, -1))
        self.link_capacity = np.zeros(link_capacity_hint, dtype=np.float64)
        # Scratch for component-local CSR assembly: global link index ->
        # local position, kept all -1 between calls.
        self._lookup = np.full(link_capacity_hint, -1, dtype=np.intp)
        self.nlinks = 0

    # -- registration --------------------------------------------------------

    def register_link(self, link: Link) -> int:
        idx = link.index
        if idx is None:
            idx = self.nlinks
            link.index = idx
        if idx >= self.nlinks:
            # A link first indexed elsewhere (another network's mirror)
            # keeps its id; this mirror just grows to cover it.
            self.nlinks = idx + 1
        if idx >= len(self.link_capacity):
            np = _np
            size = len(self.link_capacity)
            while size <= idx:
                size *= 2
            grown = np.zeros(size, dtype=np.float64)
            grown[: len(self.link_capacity)] = self.link_capacity
            self.link_capacity = grown
            scratch = np.full(size, -1, dtype=np.intp)
            scratch[: len(self._lookup)] = self._lookup
            self._lookup = scratch
        self.link_capacity[idx] = link.capacity
        return idx

    def register(self, flow: Flow) -> int:
        if not self._free:
            np = _np
            old = len(self.remaining)
            for name in ("remaining", "rate", "rate_cap"):
                grown = np.zeros(2 * old, dtype=np.float64)
                grown[:old] = getattr(self, name)
                setattr(self, name, grown)
            self._free = list(range(2 * old - 1, old - 1, -1))
        slot = self._free.pop()
        flow.slot = slot
        flow.state = self
        self.remaining[slot] = flow.remaining
        self.rate[slot] = flow.rate
        self.rate_cap[slot] = flow.rate_cap
        if flow.link_idx is None:
            # Plain list at registration time (one activation per flow —
            # an ndarray here costs more to build than it ever saves);
            # local_rows promotes it to intp on first vectorized use.
            reg = self.register_link
            flow.link_idx = [reg(l) for l in flow.path]
        return slot

    def unregister(self, flow: Flow) -> None:
        if flow.state is self and flow.slot >= 0:
            self._free.append(flow.slot)
            flow.slot = -1
            flow.state = None

    def refresh_remaining(self, flows) -> None:
        """Batch-sync the residual-bytes column from the ``Flow`` objects.

        The column is refreshed lazily: per-drain scalar stores cost more
        than any vectorized consumer saves (DESIGN.md §23), so consumers
        call this once per batch right before gathering the column.
        """
        col = self.remaining
        for f in flows:
            if f.state is self and f.slot >= 0:
                col[f.slot] = f.remaining

    # -- vectorized CSR assembly --------------------------------------------

    def local_rows(self, by_cap, links):
        """CSR (indices, indptr) of ``by_cap``'s paths in ``links``-local ids.

        Returns None when some link or flow is unregistered (standalone
        test fixtures); the caller falls back to dict-probe assembly.
        Entry order within a row is path order; path links outside
        ``links`` are dropped, duplicates kept per occurrence — matching
        the pure-Python build exactly.
        """
        np = _np
        nlinks = len(links)
        glob = np.empty(nlinks, dtype=np.intp)
        for i, link in enumerate(links):
            if link.index is None:
                return None
            glob[i] = link.index
        lookup = self._lookup
        lookup[glob] = np.arange(nlinks, dtype=np.intp)
        try:
            parts = []
            indptr = np.zeros(len(by_cap) + 1, dtype=np.intp)
            total = 0
            for k, f in enumerate(by_cap):
                row = f.link_idx
                if row is None:
                    return None
                if type(row) is list:
                    # Promote the registration-time list on first use.
                    row = f.link_idx = np.asarray(row, dtype=np.intp)
                loc = lookup[row]
                loc = loc[loc >= 0]
                parts.append(loc)
                total += loc.size
                indptr[k + 1] = total
            indices = (
                np.concatenate(parts) if total
                else np.empty(0, dtype=np.intp)
            )
            return indices, indptr
        finally:
            lookup[glob] = -1


class ComponentIndex:
    """Incrementally maintained union-find over link membership (§23).

    Replaces the per-``_rebalance`` BFS: components merge as flows arrive
    (near-O(1) amortized via path-halving + union-by-size, with payload
    flow/link sets merged small-into-large), and component extraction is a
    find plus two set lookups. Union-find cannot split, so after enough
    flow retirements a root's component may be a *superset* of the true
    connected component — harmless for correctness (disjoint
    sub-components provably do not affect each other's max-min rates, and
    the rate-unchanged fast path skips rescheduling for dragged-in
    bystanders) but not for cost, so a retirement counter triggers a lazy
    rebuild from the live flow set once stale mass could dominate.
    """

    __slots__ = (
        "_parent", "_size", "_flows", "_links", "removals", "nflows",
        "gen", "_stamp",
    )

    #: Rebuild once retirements exceed max(this, live flow count).
    _REBUILD_MIN = 64

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []
        self._flows: dict[int, set[Flow]] = {}
        self._links: dict[int, set[Link]] = {}
        self.removals = 0
        self.nflows = 0
        # Rebalance generation stamps: ``_stamp[root]`` is the global ``gen``
        # at which that root's component last had a full max-min pass. Lets
        # ``_finish`` skip its trailing rebalance when the completion
        # callback already triggered one over the same component (the
        # pipelined steady state: every segment completion immediately
        # activates its successor on the same links). Stamps die on any
        # structural merge (``_union``) or ``rebuild`` so a stamp never
        # vouches for a component whose membership changed after the pass.
        self.gen = 0
        self._stamp: dict[int, int] = {}

    def ensure(self, idx: int) -> None:
        parent = self._parent
        while len(parent) <= idx:
            parent.append(len(parent))
            self._size.append(1)

    def _find(self, i: int) -> int:
        parent = self._parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return i

    def _union(self, a: int, b: int) -> int:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._stamp.pop(ra, None)
        self._stamp.pop(rb, None)
        moved = self._flows.pop(rb, None)
        if moved:
            self._flows.setdefault(ra, set()).update(moved)
        moved_links = self._links.pop(rb, None)
        if moved_links:
            self._links.setdefault(ra, set()).update(moved_links)
        return ra

    def add_flow(self, flow: Flow) -> None:
        path = flow.path
        if not path:
            return
        r = path[0].index
        for link in path:
            r = self._union(r, link.index)
        r = self._find(r)
        self._flows.setdefault(r, set()).add(flow)
        self._links.setdefault(r, set()).update(path)
        self.nflows += 1

    def remove_flow(self, flow: Flow) -> None:
        if not flow.path:
            return
        idx = flow.path[0].index
        if idx is None or idx >= len(self._parent):
            # Never registered (e.g. a zero-byte flow finished before
            # activation ever indexed its links).
            return
        r = self._find(idx)
        members = self._flows.get(r)
        if members is None or flow not in members:
            return
        members.remove(flow)
        if self.nflows > 0:
            self.nflows -= 1
        self.removals += 1

    def stale(self) -> bool:
        return self.removals > max(self._REBUILD_MIN, self.nflows)

    def root_of(self, flow: Flow) -> int:
        """Current component root of ``flow``'s links, or -1 if unindexed."""
        path = flow.path
        if not path:
            return -1
        idx = path[0].index
        if idx is None or idx >= len(self._parent):
            return -1
        return self._find(idx)

    def stamp_root(self, root: int) -> None:
        """Record a completed full max-min pass over ``root``'s component."""
        self.gen += 1
        self._stamp[root] = self.gen

    def stamped_after(self, flow: Flow, gen: int) -> bool:
        """True if ``flow``'s component had a full pass after generation
        ``gen`` with no membership merge since (the trailing-rebalance skip
        test; conservative — False whenever in doubt)."""
        root = self.root_of(flow)
        return root >= 0 and self._stamp.get(root, 0) > gen

    def component(self, seed: Flow):
        """The (possibly superset) component containing ``seed``'s links."""
        if not seed.path:
            return (), ()
        idx = seed.path[0].index
        if idx is None or idx >= len(self._parent):
            # Seed's links were never registered (zero-byte flow finished
            # before activation indexed them): nothing shares them.
            return (), ()
        r = self._find(idx)
        return self._flows.get(r, ()), self._links.get(r, ())

    def rebuild(self, live_flows) -> None:
        """Re-derive exact components from the live flow set."""
        self._parent = list(range(len(self._parent)))
        self._size = [1] * len(self._parent)
        self._flows = {}
        self._links = {}
        self._stamp.clear()
        self.removals = 0
        self.nflows = 0
        for f in live_flows:
            self.add_flow(f)


class FairShareNetwork:
    """Owns active flows and keeps their rates max-min fair as they come and go."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._next_fid = 0
        self.active: set[Flow] = set()
        self.flows_completed = 0
        # Array mirror (None without numpy) + union-find component index.
        self.arrays: Optional[FlowArrayState] = (
            FlowArrayState() if _np is not None else None
        )
        self.components = ComponentIndex()
        self._next_link_idx = 0  # id source when the numpy mirror is absent
        # Max-min solution cache keyed by canonical component *shape*
        # (DESIGN.md §23): the allocation depends only on flow caps, the
        # local link-incidence pattern, and link capacities — never on
        # residual bytes — and pipelined collectives rebalance a handful of
        # recurring shapes hundreds of thousands of times. Keys are built
        # from object identity (path tuples, link objects, capacities), so
        # a hit costs a few C-speed hashes — cheaper than even the smallest
        # re-solve; repeated rebalances of the same component hit one entry.
        self._maxmin_cache: dict = {}
        # Optional invariant checker (repro.analysis.sanitizer); the owning
        # MpiWorld installs it when constructed with sanitize=True.
        self.sanitizer = None
        # Optional span recorder (repro.obs); installed by MpiWorld when
        # built with observe=True. Each finished flow records one span per
        # link of its path (the per-link busy/bandwidth metrics).
        self.obs = None

    # -- public API --------------------------------------------------------

    def submit(
        self,
        path: Sequence[Link],
        nbytes: int,
        rate_cap: float,
        latency: float,
        on_complete: Callable[[Flow], None],
        taginfo=None,
    ) -> Flow:
        """Create a flow; it occupies its links after ``latency`` seconds and
        calls ``on_complete(flow)`` when the last byte drains."""
        self._next_fid += 1
        flow = Flow(self._next_fid, path, nbytes, rate_cap, on_complete, taginfo)
        flow.start_time = self.engine.now
        if latency > 0.0:
            self.engine.call_after(latency, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def refresh(self, links: Sequence[Link]) -> None:
        """Recompute rates after an external capacity change (link flap).

        Rates normally change only when the flow set changes; a bandwidth
        flap (repro.faults) changes ``Link.capacity`` under live flows, so
        each affected connected component must be rebalanced once.
        """
        seen: set[Flow] = set()
        for link in links:
            for flow in list(link.flows):
                if flow in seen or flow.done:
                    continue
                comp_flows, _ = self._component(flow)
                seen.update(comp_flows)
                self._rebalance(flow)

    # -- internals ----------------------------------------------------------

    def _activate(self, flow: Flow) -> None:
        flow.last_update = self.engine.now
        if flow.nbytes <= 0 or not flow.path:
            # Zero-byte transfers and loopback paths finish immediately after
            # latency (loopback copy cost is charged by the caller as CPU or
            # memcpy work, not as a network flow).
            if flow.nbytes > 0 and not flow.path:
                # Uncontended loopback: drain at the rate cap.
                self.engine.call_after(
                    flow.nbytes / flow.rate_cap, self._finish, flow
                )
                flow.rate = flow.rate_cap
                self.active.add(flow)
                return
            self._finish(flow)
            return
        self.active.add(flow)
        for link in flow.path:
            link.flows.add(flow)
        if self.arrays is not None:
            self.arrays.register(flow)
        else:
            for link in flow.path:
                if link.index is None:
                    link.index = self._next_link_idx
                    self._next_link_idx += 1
        comp = self.components
        for link in flow.path:
            comp.ensure(link.index)
        comp.add_flow(flow)
        self._rebalance(flow)

    def _finish(self, flow: Flow) -> None:
        if flow.done:
            return
        flow.drain(self.engine.now)
        flow.remaining = 0.0
        flow.finish_time = self.engine.now
        if flow.completion is not None:
            flow.completion.cancel()
            flow.completion = None
        self.active.discard(flow)
        had_links = bool(flow.path)
        if had_links:
            for link in flow.path:
                link.flows.discard(flow)
            self.components.remove_flow(flow)
            if self.arrays is not None:
                self.arrays.unregister(flow)
        self.flows_completed += 1
        if self.obs is not None and had_links:
            # Span per link over the flow's wire lifetime (submit -> drain;
            # includes the path latency prefix, which is negligible against
            # the transfer for the segment sizes the collectives move).
            ti = flow.taginfo
            if ti is not None:
                kind, src, dst, tag = ti
                name = f"{kind} {src}->{dst}"
                args = {"tag": tag, "nbytes": flow.nbytes}
            else:
                name = "copy"
                args = {"nbytes": flow.nbytes}
            for link in flow.path:
                self.obs.add(
                    "flow", name, ("link", link.name),
                    flow.start_time, flow.finish_time, args,
                )
            self.obs.count("net.flows_completed")
        cb = flow.on_complete
        if not had_links:
            cb(flow)
            return
        # The trailing rebalance after the callback is a pure duplicate in
        # the pipelined steady state: the callback activates the successor
        # segment on the same links, and that activation already ran a full
        # max-min pass over the post-removal component. The generation stamp
        # proves exactly that (and is invalidated by any merge), so skipping
        # here is observationally identical — the covering pass saw the same
        # flow set at the same instant and made the same decisions.
        gen = self.components.gen
        cb(flow)
        if not self.components.stamped_after(flow, gen):
            self._rebalance(flow)

    def _component(self, seed: Flow) -> tuple[list[Flow], list[Link]]:
        """Flows/links transitively sharing a link with ``seed``'s path.

        Served by the incrementally maintained union-find (§23): a find
        plus two set lookups, replacing the per-rebalance BFS over
        ``link.flows``. The result may be a *superset* of the exact
        connected component (union-find cannot split after retirements);
        that is rate-neutral — disjoint sub-components share no links, so
        progressive filling computes bit-identical per-flow rates over the
        union — and a lazy rebuild from the live flow set bounds the stale
        mass (see :meth:`ComponentIndex.stale`).
        """
        comp = self.components
        if comp.stale():
            comp.rebuild(f for f in self.active if f.path)
        comp_flows, comp_links = comp.component(seed)
        return list(comp_flows), list(comp_links)

    def _maxmin_cached(
        self, comp_flows: list[Flow], comp_links: list[Link]
    ) -> list[float]:
        """Shape-cached :func:`maxmin_rates` for small components.

        Returns rates aligned with ``comp_flows`` (fid order). The key is
        exactly the allocator's input: per flow its rate cap and its path
        (the very link objects, so hashing is identity-based and C-speed),
        plus the links and their capacities in component order. Identical
        keys replay identical progressive filling, so cached rates are
        bit-identical to a fresh run. Pipelined collectives cycle through a
        few dozen recurring shapes per node, so the hit rate is ~100%.
        """
        nflows = len(comp_flows)
        if nflows >= _HEAP_THRESHOLD:
            # Large components: key-build cost and entry memory stop paying
            # for themselves; go straight to the heap/vec variants.
            rates = maxmin_rates(comp_flows, comp_links, self.arrays)
            return [rates[f] for f in comp_flows]
        shape: list = []
        for f in comp_flows:
            shape.append(f.rate_cap)
            shape.append(f.path)
        key = (
            tuple(shape),
            tuple(comp_links),
            tuple(link.capacity for link in comp_links),
        )
        cache = self._maxmin_cache
        cached = cache.get(key)
        if cached is None:
            rates = maxmin_rates(comp_flows, comp_links, self.arrays)
            if len(cache) >= 65536:
                # Unbounded shape churn (randomized fuzz workloads): start
                # over rather than grow without limit.
                cache.clear()
            cached = cache[key] = [rates[f] for f in comp_flows]
        return cached

    def _rebalance(self, seed: Flow) -> None:
        now = self.engine.now
        # Fast path: the seed shares no link with any other flow, so its
        # max-min rate is simply its cap bounded by its link capacities —
        # the overwhelmingly common case on topology-aware trees, where a
        # link rarely carries more than one in-order data flow at a time.
        alone = not seed.done and seed in self.active
        if alone:
            for link in seed.path:
                if len(link.flows) > 1:
                    alone = False
                    break
        if alone:
            seed.drain(now)
            if seed.remaining <= _EPSILON_BYTES:
                self._finish(seed)
                return
            rate = min(
                (link.capacity for link in seed.path), default=seed.rate_cap
            )
            rate = min(rate, seed.rate_cap)
            if abs(rate - seed.rate) > 1e-9 * max(rate, seed.rate) or seed.completion is None:
                if seed.completion is not None:
                    seed.completion.cancel()
                seed.rate = rate
                seed.completion = self.engine.call_after(
                    seed.remaining / rate, self._finish, seed
                )
            if self.sanitizer is not None:
                self.sanitizer.check_rates((seed,), seed.path)
            return
        comp_flows, comp_links = self._component(seed)
        if not comp_flows:
            return
        # Deterministic ordering for reproducible float arithmetic.
        comp_flows.sort(key=_BY_FID)
        comp_links.sort(key=_BY_NAME)
        if self.sanitizer is not None:
            # The sanitizer audits residuals too; give it a fully drained
            # view (the lazy-drain fast path below is invisible to it).
            for f in comp_flows:
                f.drain(now)
        rates = self._maxmin_cached(comp_flows, comp_links)
        finished: list[Flow] = []
        call_after = self.engine.call_after
        for f, new_rate in zip(comp_flows, rates):
            # Drain lazily: most members keep their rate (bystanders dragged
            # in by a shared link), and for them byte accounting can wait for
            # their next reschedule or finish. The epsilon test runs on the
            # *predicted* post-drain residual — the same IEEE-754 ops drain
            # would perform — so the finish decision is unchanged.
            rem = f.remaining
            rate = f.rate
            if rate > 0.0:
                dt = now - f.last_update
                if dt > 0.0:
                    rem = rem - rate * dt
                    if rem < 0.0:
                        rem = 0.0
            if rem <= _EPSILON_BYTES:
                finished.append(f)  # _finish performs the real drain
                continue
            if f.completion is not None:
                # Skip the cancel/reschedule churn when the rate is unchanged
                # — the common case for flows dragged into a component by a
                # link they share with an unaffected neighbour.
                old = f.rate
                d = new_rate - old
                if d < 0.0:
                    d = -d
                if d <= 1e-9 * (new_rate if new_rate > old else old):
                    continue
                f.completion.cancel()
                f.completion = None
            f.drain(now)
            f.rate = new_rate
            if new_rate > 0.0:
                f.completion = call_after(
                    f.remaining / new_rate, self._finish, f
                )
            # rate == 0 flows stay parked until a rebalance frees capacity.
        if self.sanitizer is not None:
            self.sanitizer.check_rates(comp_flows, comp_links)
        root = self.components.root_of(seed)
        if root >= 0:
            self.components.stamp_root(root)
        for f in finished:
            self._finish(f)
