"""Max-min fair bandwidth allocation with per-flow rate caps.

The allocator implements classic *progressive filling*: repeatedly find the
most constrained resource — either the bottleneck link (smallest remaining
capacity per unfixed flow) or a flow whose cap is below that share — fix the
corresponding flows' rates, subtract them from the links they cross, repeat.

Rates only change when the set of active flows changes, and only within the
connected component of links/flows reachable from the changed flow's path;
disjoint components provably do not affect each other's max-min allocation,
so recomputation is local and large simulations stay fast.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.network.flows import Flow
from repro.network.links import Link
from repro.sim.engine import Engine

# Residual bytes below this count as "transfer finished" (guards float drift).
_EPSILON_BYTES = 1e-6


def maxmin_rates(flows: Sequence[Flow], links: Sequence[Link]) -> dict[Flow, float]:
    """Compute the max-min fair rate of every flow in one component.

    Pure function (does not mutate flows/links); exposed separately so the
    property-based tests can check the allocation invariants directly.
    """
    remaining_cap = {link: link.capacity for link in links}
    unfixed_per_link: dict[Link, int] = {link: 0 for link in links}
    for f in flows:
        for link in f.path:
            if link in unfixed_per_link:
                unfixed_per_link[link] += 1
    rates: dict[Flow, float] = {}
    unfixed = set(flows)

    def _fix(flow: Flow, rate: float) -> None:
        rates[flow] = rate
        unfixed.discard(flow)
        for link in flow.path:
            if link in remaining_cap:
                remaining_cap[link] = max(0.0, remaining_cap[link] - rate)
                unfixed_per_link[link] -= 1

    while unfixed:
        # Bottleneck share over links that still carry unfixed flows.
        bottleneck_share: Optional[float] = None
        bottleneck_link: Optional[Link] = None
        for link in links:
            n = unfixed_per_link[link]
            if n <= 0:
                continue
            share = remaining_cap[link] / n
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        # Smallest cap among unfixed flows.
        cap_flow = min(unfixed, key=lambda f: (f.rate_cap, f.fid))
        min_cap = cap_flow.rate_cap

        if bottleneck_share is None:
            # No shared constrained link (e.g. synthetic test flows): caps rule.
            for f in list(unfixed):
                _fix(f, f.rate_cap)
        elif min_cap <= bottleneck_share:
            # Cap-limited flows fix first (standard capped progressive fill).
            threshold = bottleneck_share
            fixed = [f for f in unfixed if f.rate_cap <= threshold]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, f.rate_cap)
        else:
            assert bottleneck_link is not None
            fixed = [f for f in unfixed if bottleneck_link in f.path]
            for f in sorted(fixed, key=lambda f: f.fid):
                _fix(f, bottleneck_share)
    return rates


class FairShareNetwork:
    """Owns active flows and keeps their rates max-min fair as they come and go."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._next_fid = 0
        self.active: set[Flow] = set()
        self.flows_completed = 0
        # Optional invariant checker (repro.analysis.sanitizer); the owning
        # MpiWorld installs it when constructed with sanitize=True.
        self.sanitizer = None

    # -- public API --------------------------------------------------------

    def submit(
        self,
        path: Sequence[Link],
        nbytes: int,
        rate_cap: float,
        latency: float,
        on_complete: Callable[[Flow], None],
        taginfo=None,
    ) -> Flow:
        """Create a flow; it occupies its links after ``latency`` seconds and
        calls ``on_complete(flow)`` when the last byte drains."""
        self._next_fid += 1
        flow = Flow(self._next_fid, path, nbytes, rate_cap, on_complete, taginfo)
        flow.start_time = self.engine.now
        if latency > 0.0:
            self.engine.call_after(latency, self._activate, flow)
        else:
            self._activate(flow)
        return flow

    def refresh(self, links: Sequence[Link]) -> None:
        """Recompute rates after an external capacity change (link flap).

        Rates normally change only when the flow set changes; a bandwidth
        flap (repro.faults) changes ``Link.capacity`` under live flows, so
        each affected connected component must be rebalanced once.
        """
        seen: set[Flow] = set()
        for link in links:
            for flow in list(link.flows):
                if flow in seen or flow.done:
                    continue
                comp_flows, _ = self._component(flow)
                seen.update(comp_flows)
                self._rebalance(flow)

    # -- internals ----------------------------------------------------------

    def _activate(self, flow: Flow) -> None:
        flow.last_update = self.engine.now
        if flow.nbytes <= 0 or not flow.path:
            # Zero-byte transfers and loopback paths finish immediately after
            # latency (loopback copy cost is charged by the caller as CPU or
            # memcpy work, not as a network flow).
            if flow.nbytes > 0 and not flow.path:
                # Uncontended loopback: drain at the rate cap.
                self.engine.call_after(
                    flow.nbytes / flow.rate_cap, self._finish, flow
                )
                flow.rate = flow.rate_cap
                self.active.add(flow)
                return
            self._finish(flow)
            return
        self.active.add(flow)
        for link in flow.path:
            link.flows.add(flow)
        self._rebalance(flow)

    def _finish(self, flow: Flow) -> None:
        if flow.done:
            return
        flow.drain(self.engine.now)
        flow.remaining = 0.0
        flow.finish_time = self.engine.now
        if flow.completion is not None:
            flow.completion.cancel()
            flow.completion = None
        self.active.discard(flow)
        had_links = bool(flow.path)
        for link in flow.path:
            link.flows.discard(flow)
        self.flows_completed += 1
        cb = flow.on_complete
        cb(flow)
        if had_links:
            self._rebalance(flow)

    def _component(self, seed: Flow) -> tuple[list[Flow], list[Link]]:
        """Flows/links transitively sharing a link with ``seed``'s path."""
        comp_links: set[Link] = set()
        comp_flows: set[Flow] = set()
        frontier_links = list(seed.path)
        while frontier_links:
            link = frontier_links.pop()
            if link in comp_links:
                continue
            comp_links.add(link)
            for f in link.flows:
                if f in comp_flows:
                    continue
                comp_flows.add(f)
                for l2 in f.path:
                    if l2 not in comp_links:
                        frontier_links.append(l2)
        return list(comp_flows), list(comp_links)

    def _rebalance(self, seed: Flow) -> None:
        now = self.engine.now
        # Fast path: the seed shares no link with any other flow, so its
        # max-min rate is simply its cap bounded by its link capacities —
        # the overwhelmingly common case on topology-aware trees, where a
        # link rarely carries more than one in-order data flow at a time.
        alone = (
            not seed.done
            and seed in self.active
            and all(len(link.flows) <= 1 for link in seed.path)
        )
        if alone:
            seed.drain(now)
            if seed.remaining <= _EPSILON_BYTES:
                self._finish(seed)
                return
            rate = min(
                (link.capacity for link in seed.path), default=seed.rate_cap
            )
            rate = min(rate, seed.rate_cap)
            if abs(rate - seed.rate) > 1e-9 * max(rate, seed.rate) or seed.completion is None:
                if seed.completion is not None:
                    seed.completion.cancel()
                seed.rate = rate
                seed.completion = self.engine.call_after(
                    seed.remaining / rate, self._finish, seed
                )
            if self.sanitizer is not None:
                self.sanitizer.check_rates((seed,), seed.path)
            return
        comp_flows, comp_links = self._component(seed)
        if not comp_flows:
            return
        # Deterministic ordering for reproducible float arithmetic.
        comp_flows.sort(key=lambda f: f.fid)
        comp_links.sort(key=lambda l: l.name)
        for f in comp_flows:
            f.drain(now)
        rates = maxmin_rates(comp_flows, comp_links)
        finished: list[Flow] = []
        for f in comp_flows:
            new_rate = rates[f]
            if f.remaining <= _EPSILON_BYTES:
                finished.append(f)
                continue
            if f.completion is not None:
                # Skip the cancel/reschedule churn when the rate is unchanged
                # — the common case for flows dragged into a component by a
                # link they share with an unaffected neighbour.
                if abs(new_rate - f.rate) <= 1e-9 * max(new_rate, f.rate):
                    continue
                f.completion.cancel()
                f.completion = None
            f.rate = new_rate
            if new_rate > 0.0:
                eta = f.remaining / new_rate
                f.completion = self.engine.call_after(eta, self._finish, f)
            # rate == 0 flows stay parked until a rebalance frees capacity.
        if self.sanitizer is not None:
            self.sanitizer.check_rates(comp_flows, comp_links)
        for f in finished:
            self._finish(f)
