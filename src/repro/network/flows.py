"""Flows: in-flight transfers over a link path."""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.network.links import Link
from repro.sim.engine import EventHandle


class Flow:
    """One transfer in flight.

    Life cycle: created -> (after path latency) active on its links ->
    completion event fires when ``remaining`` drains at the allocated rate.
    The allocator may cancel/reschedule the completion event many times as
    competing flows come and go.
    """

    __slots__ = (
        "fid",
        "path",
        "nbytes",
        "remaining",
        "rate_cap",
        "rate",
        "last_update",
        "completion",
        "on_complete",
        "start_time",
        "finish_time",
        "taginfo",
        "slot",
        "link_idx",
        "state",
    )

    def __init__(
        self,
        fid: int,
        path: Sequence[Link],
        nbytes: int,
        rate_cap: float,
        on_complete: Callable[["Flow"], Any],
        taginfo: Any = None,
    ):
        if nbytes < 0:
            raise ValueError(f"negative flow size {nbytes}")
        if rate_cap <= 0:
            raise ValueError(f"flow rate cap must be positive, got {rate_cap}")
        self.fid = fid
        self.path = tuple(path)
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.rate_cap = rate_cap
        self.rate = 0.0
        self.last_update = 0.0
        self.completion: Optional[EventHandle] = None
        self.on_complete = on_complete
        self.start_time = 0.0
        self.finish_time: Optional[float] = None
        self.taginfo = taginfo
        # Array-mirror bookkeeping (DESIGN.md §23): the owning network's
        # FlowArrayState slot, the cached link-index array of ``path``, and
        # the mirror itself (None for standalone flows built by tests).
        self.slot = -1
        self.link_idx = None
        self.state = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    def drain(self, now: float) -> None:
        """Account bytes moved since ``last_update`` at the current rate.

        Deliberately does *not* write the array mirror's residual column:
        a numpy scalar store per drain costs more than every vectorized
        consumer saves (DESIGN.md §23); consumers that need current
        residuals call ``FlowArrayState.refresh_remaining`` once per batch.
        """
        dt = now - self.last_update
        if dt > 0.0 and self.rate > 0.0:
            moved = self.rate * dt
            self.remaining -= moved
            for link in self.path:
                link.bytes_carried += moved
            if self.remaining < 0.0:
                self.remaining = 0.0
        self.last_update = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.fid} {self.remaining:.0f}/{self.nbytes}B "
            f"rate={self.rate / 1e9:.2f}GB/s over {[l.name for l in self.path]}>"
        )
