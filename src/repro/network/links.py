"""Network links.

A :class:`Link` is one contention point: a capacity in bytes/second shared by
the flows currently crossing it. Links are directed where direction matters
(NIC injection vs ejection, PCIe host-to-device vs device-to-host) and
undirected where it does not (socket memory aggregate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.flows import Flow


class Link:
    """One shared bandwidth resource."""

    __slots__ = ("name", "capacity", "flows", "bytes_carried", "index")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link {name!r} needs positive capacity, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.flows: set["Flow"] = set()
        self.bytes_carried = 0.0  # lifetime accounting, for utilization reports
        # Dense id in the owning network's array mirror / component index
        # (DESIGN.md §23); assigned on first sight, None for standalone links.
        self.index: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} cap={self.capacity / 1e9:.1f}GB/s n={len(self.flows)}>"
