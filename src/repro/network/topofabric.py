"""TopoFabric: the flat fabric's routing over a compiled topology.

A :class:`~repro.topo.compile.CompiledTopology` replaces exactly one piece
of the flat machine model: the inter-node segment. Intra-node routing
(shared memory, QPI, PCIe staging) is untouched — rail pods additionally
short-circuit same-island GPU pairs over their NVLink clique.

Each compiled :class:`~repro.topo.compile.TopoLink` materializes lazily as
a fair-share :class:`~repro.network.links.Link` on first route, exactly
like the flat fabric's NIC lanes — so utilization reports, fault
injection, and the partition machinery all see compiled links as ordinary
contention points.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology
from repro.network.fabric import Fabric, MemSpace, Route
from repro.network.links import Link
from repro.sim.engine import Engine


class TopoFabric(Fabric):
    """Fabric whose inter-node paths come from a compiled topology."""

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        topology: Topology,
        compiled,
        shm_concurrency: Optional[int] = None,
        gpudirect: bool = True,
        nic_shares_gpu_pcie: bool = False,
    ):
        super().__init__(
            engine, spec, topology,
            shm_concurrency=shm_concurrency,
            gpudirect=gpudirect,
            nic_shares_gpu_pcie=nic_shares_gpu_pcie,
        )
        self.compiled = compiled

    # -- slot resolution -----------------------------------------------------

    def _slot(self, p) -> int:
        """A rank's node-local endpoint slot (GPU index for rail pods)."""
        gpu = self.spec.node.gpu
        if gpu is None:
            return 0
        per_socket = gpu.gpus_per_socket
        within = p.gpu if p.gpu is not None else p.core % per_socket
        return p.socket * per_socket + within

    # -- routing overrides ---------------------------------------------------

    def _inter_node_leg(self, ps, pd) -> tuple[list[Link], float, float]:
        path = self.compiled.node_path(
            ps.node, pd.node, self._slot(ps), self._slot(pd)
        )
        links = [self._link(tl.name, tl.bandwidth) for tl in path]
        latency = sum(tl.latency for tl in path)
        rate_cap = min(tl.bandwidth for tl in path)
        return links, latency, rate_cap

    def _route_uncached(
        self, src: int, dst: int, src_space: MemSpace, dst_space: MemSpace
    ) -> Route:
        # Same-island distinct-GPU pairs ride the NVLink clique directly
        # (NVSwitch crossbar), regardless of socket — rail pods have no
        # QPI-staged GPU path.
        if src_space == MemSpace.GPU and dst_space == MemSpace.GPU and src != dst:
            ps = self.topology.placement(src)
            pd = self.topology.placement(dst)
            if ps.node == pd.node:
                peer = self.compiled.gpu_peer_path(
                    ps.node, self._slot(ps), self._slot(pd)
                )
                if peer is not None:
                    links = tuple(
                        self._link(tl.name, tl.bandwidth) for tl in peer
                    )
                    latency = sum(tl.latency for tl in peer)
                    rate_cap = min(tl.bandwidth for tl in peer)
                    return Route(links, latency, rate_cap)
        return super()._route_uncached(src, dst, src_space, dst_space)
