"""Job execution: rebuild a world from a :class:`SimJob` and measure it.

``execute_job`` is the single entry point both execution paths share — the
in-process sequential loop and the process-pool workers — so a sweep's
results are identical bytes regardless of ``--jobs``. It returns a plain
dict (the wire/cache format); ``result_from_dict`` turns one back into the
:class:`RunResult`/:class:`AspResult` the experiment drivers consume.
"""

from __future__ import annotations

from typing import Callable

from repro.parallel.jobs import SimJob


def _machine_spec(job: SimJob):
    from repro.machine import cori, psg_gpu, small_test_machine, stampede2
    from repro.machine.presets import TOPO_FAMILY_NAMES

    if job.machine in TOPO_FAMILY_NAMES:
        # Compiled families rebuild deterministically in every worker
        # process — same spec, byte-identical link list (the cross-process
        # leg of the golden tests).
        from repro.topo import build_family

        return build_family(job.machine, nodes=job.nodes)
    factories: dict[str, Callable] = {
        "cori": cori,
        "stampede2": stampede2,
        "psg": psg_gpu,
        "testbox": small_test_machine,
    }
    try:
        factory = factories[job.machine]
    except KeyError:
        raise ValueError(f"unknown machine preset {job.machine!r}") from None
    return factory(job.nodes) if job.nodes is not None else factory()


def _custom_algorithm(job: SimJob):
    if job.algo_family is None:
        return None
    from repro.libraries.presets import (
        intel_topo_bcast_variants,
        intel_topo_reduce_variants,
    )

    variants = {
        "intel-topo-bcast": intel_topo_bcast_variants,
        "intel-topo-reduce": intel_topo_reduce_variants,
    }[job.algo_family]()
    try:
        return variants[job.algo_variant]
    except KeyError:
        raise ValueError(
            f"unknown {job.algo_family} variant {job.algo_variant!r}"
        ) from None


def _reduce_op(name: str):
    from repro.mpi import ops

    try:
        op = getattr(ops, name.upper())
    except AttributeError:
        raise ValueError(f"unknown reduce op {name!r}") from None
    if not isinstance(op, ops.ReduceOp):
        raise ValueError(f"{name!r} is not a reduce op")
    return op


def execute_job(job: SimJob) -> dict:
    """Run one job to completion and return its serialized result."""
    spec = _machine_spec(job)
    if job.kind == "asp":
        from repro.apps.asp import run_asp

        nranks = job.nranks if job.nranks is not None else spec.total_cores
        res = run_asp(
            spec,
            nranks,
            job.library,
            iterations=job.iterations,
            row_bytes=job.row_bytes,
            compute_per_iteration=job.compute_per_iteration,
        )
        out = res.to_dict()
        out["kind"] = "asp"
        return out

    from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig
    from repro.harness.runner import run_collective

    nranks = job.nranks
    if nranks is None:
        nranks = spec.total_gpus if job.gpu else spec.total_cores
    config = DEFAULT_COLLECTIVE
    if job.collective_config:
        config = CollectiveConfig(**dict(job.collective_config))
    noise_ranks = (
        list(job.noise_ranks)
        if isinstance(job.noise_ranks, tuple)
        else job.noise_ranks
    )
    if job.kind == "sgd":
        from repro.apps.sgd import run_sgd

        res = run_sgd(
            spec,
            nranks,
            epochs=job.iterations,
            grad_bytes=job.nbytes,
            compute_per_epoch=job.compute_per_iteration,
            quorum=job.quorum,
            min_quorum=job.min_quorum,
            staleness_window=job.staleness_window,
            noise_percent=job.noise_percent,
            noise_ranks=noise_ranks,
            noise_frequency=job.noise_frequency,
            seed=job.seed,
            fault_plan=job.fault_plan,
            sanitize=job.sanitize,
            time_limit=job.time_limit,
            config=config,
        )
        out = res.to_dict()
        out["kind"] = "sgd"
        return out
    res = run_collective(
        spec,
        nranks,
        job.library,
        job.operation,
        job.nbytes,
        iterations=job.iterations,
        mode=job.mode,
        noise_percent=job.noise_percent,
        noise_ranks=noise_ranks,
        noise_frequency=job.noise_frequency,
        seed=job.seed,
        gpu=job.gpu,
        root=job.root,
        op=_reduce_op(job.op),
        config=config,
        custom_algorithm=_custom_algorithm(job),
        fault_plan=job.fault_plan,
        sanitize=job.sanitize,
        time_limit=job.time_limit,
        observe=job.observe,
        recover=job.recover,
        quorum=job.quorum,
        min_quorum=job.min_quorum,
        staleness_window=job.staleness_window,
    )
    out = res.to_dict()
    out["kind"] = "collective"
    return out


def result_from_dict(d: dict):
    """Wire/cache dict back to the result object the harness consumes."""
    d = dict(d)
    kind = d.pop("kind", "collective")
    if kind == "asp":
        from repro.apps.asp import AspResult

        return AspResult.from_dict(d)
    if kind == "sgd":
        from repro.apps.sgd import SgdResult

        return SgdResult.from_dict(d)
    from repro.harness.runner import RunResult

    return RunResult.from_dict(d)
