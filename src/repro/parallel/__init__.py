"""Parallel sweep execution (DESIGN.md §18).

The paper's figures are parameter sweeps — library x collective x
node-count x message-size grids of *independent* simulations. This package
decomposes them into pure-config :class:`SimJob` cells, fans the cells out
over a process pool, merges results deterministically (tables are
byte-identical to the sequential path), and memoizes every cell in a
content-addressed on-disk cache keyed by config + repro version.
"""

from repro.parallel.cache import ResultCache
from repro.parallel.executor import run_jobs
from repro.parallel.jobs import CACHE_SCHEMA, SimJob
from repro.parallel.worker import execute_job, result_from_dict

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "SimJob",
    "execute_job",
    "result_from_dict",
    "run_jobs",
]
