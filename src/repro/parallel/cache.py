"""Content-addressed on-disk result cache.

Key = sha256 of the job's canonical config + the repro version + the cache
schema (see :meth:`SimJob.cache_key`), so a sweep re-run after an unrelated
code change is near-free while any config or version change misses cleanly.
Values are the worker's JSON result dicts, stored one file per key under
``<root>/<key[:2]>/<key>.json`` (two-level fanout keeps directories small).

Writes are atomic (tmp file + rename) so concurrent workers — or two
concurrent sweeps sharing a cache — never observe a torn entry; a corrupt
or unreadable entry is treated as a miss and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.parallel.jobs import SimJob


class ResultCache:
    """On-disk job-result store with hit/miss accounting."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        *,
        salt: str = "",
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
        self.root = Path(root)
        self.salt = salt
        self.hits = 0
        self.misses = 0

    # -- lookup / store ----------------------------------------------------

    def path_for(self, job: SimJob) -> Path:
        key = job.cache_key(self.salt)
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: SimJob) -> Optional[dict]:
        """The cached result dict, or None (counted as a miss)."""
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                result = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: SimJob, result: dict) -> None:
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance -------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}
