"""Fan sweep jobs out over worker processes, deterministically.

``run_jobs`` is the one sweep primitive: it takes an ordered list of
:class:`SimJob` cells and returns their results *in the same order*,
whatever the worker count. Determinism argument (DESIGN.md §18):

* every job is pure config — the worker rebuilds its world from names and
  numbers, so a job's result depends only on the job;
* each simulated world is single-threaded and seeded — identical configs
  yield identical event timelines in any process (the simulator never
  iterates sets whose order feeds float arithmetic without sorting first);
* results travel as JSON dicts and are merged by *input index*, never by
  completion order — and the sequential path round-trips through the same
  serialization, so ``--jobs 1`` and ``--jobs N`` produce identical bytes.

Cache lookups happen before dispatch (hits never spawn work); completed
results are written back as they land, so even an interrupted sweep warms
the cache for the next run.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Optional, Sequence

from repro.config import ParallelConfig
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import SimJob
from repro.parallel.worker import execute_job, result_from_dict

#: Cap on queued-but-unsubmitted futures per worker; bounds memory on huge
#: sweeps without idling the pool.
_BACKLOG_PER_WORKER = 4


def run_jobs(
    jobs: Sequence[SimJob],
    *,
    n_jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> list:
    """Execute ``jobs`` and return their results in input order.

    ``n_jobs`` is the worker-process count (None = ``REPRO_JOBS`` env or 1;
    1 = in-process). ``cache`` short-circuits jobs whose key is already
    stored and records fresh results. ``progress(done, total)`` is called
    after every completed job (cache hits included).
    """
    if n_jobs is None:
        n_jobs = ParallelConfig.from_env().jobs
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")

    total = len(jobs)
    results: list[Optional[dict]] = [None] * total
    done = 0

    pending: list[int] = []
    for i, job in enumerate(jobs):
        hit = cache.get(job) if cache is not None else None
        if hit is not None:
            results[i] = hit
            done += 1
            if progress is not None:
                progress(done, total)
        else:
            pending.append(i)

    def _record(i: int, result: dict) -> None:
        nonlocal done
        results[i] = result
        if cache is not None:
            cache.put(jobs[i], result)
        done += 1
        if progress is not None:
            progress(done, total)

    if pending and (n_jobs == 1 or len(pending) == 1):
        for i in pending:
            _record(i, execute_job(jobs[i]))
    elif pending:
        workers = min(n_jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            backlog = workers * _BACKLOG_PER_WORKER
            queue = iter(pending)
            in_flight = {}
            for i in queue:
                in_flight[pool.submit(execute_job, jobs[i])] = i
                if len(in_flight) >= backlog:
                    break
            while in_flight:
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for fut in finished:
                    _record(in_flight.pop(fut), fut.result())
                for i in queue:
                    in_flight[pool.submit(execute_job, jobs[i])] = i
                    if len(in_flight) >= backlog:
                        break

    # Both paths round-trip through the dict form: byte-identical tables.
    assert all(d is not None for d in results)
    return [result_from_dict(d) for d in results]
