"""Sweep decomposition: one simulation cell as pure, picklable config.

A :class:`SimJob` is everything needed to run one measurement — a
``run_collective`` call (``kind="collective"``) or a ``run_asp`` call
(``kind="asp"``) — expressed as plain data: machine *names*, library
*names*, algorithm-variant *names*, and a frozen :class:`FaultPlan`.
No live objects cross the process boundary; the worker rebuilds the
simulated world from the job alone, which is also what makes the job
content-addressable (the cache key is a hash of this config plus the
repro version).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Optional, Union

from repro import __version__
from repro.faults.plan import FaultPlan

#: Bump when the result wire format or job semantics change in a way that
#: must invalidate previously cached results.
#: 2: observability fields (metrics/obs/trace_truncated) joined the result
#: wire format and SimJob gained the ``observe`` knob.
#: 3: live recovery — fault plans gained the ``corrupts`` kind, results the
#: ``failed_ranks``/``time_to_repair`` fields, SimJob the ``recover`` knob.
#: 4: partition tolerance — fault plans gained ``partitions`` and the
#: adaptive-detector scalars, results the ``false_kills``/``quorum_parks``
#: fields and severed transport counters.
#: 5: relaxed quorum collectives — SimJob gained the quorum policy knobs
#: and the ``sgd`` kind; results the ``contributed_ranks``/
#: ``staleness_epoch``/``late_merges`` provenance fields.
CACHE_SCHEMA = 5

#: Algorithm-variant families resolvable by name in the worker
#: (fig08 sweeps Intel's per-algorithm topology-aware variants).
ALGO_FAMILIES = ("intel-topo-bcast", "intel-topo-reduce")


@dataclass(frozen=True)
class SimJob:
    """One independent cell of a parameter sweep."""

    kind: str = "collective"  # "collective" | "asp" | "sgd"
    machine: str = "cori"  # preset name: cori | stampede2 | psg | testbox
    nodes: Optional[int] = None  # None = the preset's default node count
    nranks: Optional[int] = None  # None = all cores (or all GPUs when gpu)
    library: str = "OMPI-adapt"
    operation: str = "bcast"
    nbytes: int = 4 << 20
    iterations: int = 3
    mode: str = "imb"
    noise_percent: float = 0.0
    noise_ranks: Union[str, tuple[int, ...]] = "per-node"
    noise_frequency: float = 10.0
    seed: int = 0
    gpu: bool = False
    root: int = 0
    op: str = "sum"  # reduce operator name (repro.mpi.ops)
    algo_family: Optional[str] = None  # one of ALGO_FAMILIES
    algo_variant: Optional[str] = None  # variant name within the family
    collective_config: Optional[tuple[tuple[str, Any], ...]] = None
    fault_plan: Optional[FaultPlan] = None
    sanitize: bool = False
    time_limit: Optional[float] = None
    # Live recovery (repro.recovery): membership agreement + repair/restart.
    recover: bool = False
    # Observability: None (off), "metrics" (result.metrics only), or
    # "trace" (metrics + the full span dump for the Chrome exporter).
    observe: Optional[str] = None
    # asp-only knobs (ignored for kind="collective"):
    row_bytes: int = 1 << 20
    compute_per_iteration: float = 1.57e-3
    # Relaxed quorum collectives (DESIGN.md S25): quorum None runs the
    # exact operation; a count (int) or fraction (float) relaxes the
    # ``*_quorum`` operations and the sgd kind's gradient allreduce. The
    # sgd kind reuses ``iterations`` as epochs, ``nbytes`` as the gradient
    # size, and ``compute_per_iteration`` as per-epoch compute.
    quorum: Optional[Union[int, float]] = None
    min_quorum: int = 1
    staleness_window: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("collective", "asp", "sgd"):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.algo_family is not None and self.algo_family not in ALGO_FAMILIES:
            raise ValueError(f"unknown algo family {self.algo_family!r}")
        if self.observe not in (None, "metrics", "trace"):
            raise ValueError(f"unknown observe mode {self.observe!r}")
        if (self.algo_family is None) != (self.algo_variant is None):
            raise ValueError("algo_family and algo_variant must be set together")
        # Tuples keep the config canonical (lists would hash differently).
        if isinstance(self.noise_ranks, list):
            object.__setattr__(self, "noise_ranks", tuple(self.noise_ranks))
        if isinstance(self.collective_config, dict):
            object.__setattr__(
                self,
                "collective_config",
                tuple(sorted(self.collective_config.items())),
            )

    def payload(self) -> dict:
        """Canonical JSON-able description — the content that is addressed."""
        d = asdict(self)
        if self.fault_plan is not None:
            d["fault_plan"] = asdict(self.fault_plan)
        return d

    def cache_key(self, salt: str = "") -> str:
        """Content hash of this job, the repro version, and the schema.

        Equal configs collide (that is the point: a re-run after an
        unrelated code change is a cache hit); any config field, the
        package version, or the schema changing yields a fresh key.
        """
        blob = json.dumps(self.payload(), sort_keys=True)
        tag = f"|repro={__version__}|schema={CACHE_SCHEMA}|{salt}"
        return hashlib.sha256((blob + tag).encode()).hexdigest()
