"""Fault injection and failure detection (DESIGN.md S17).

Deterministic, seeded fault workloads for the simulated machine: fail-stop
crashes, rank stalls, lossy/duplicating links, and bandwidth flapping —
plus the timeout-based failure detector that surfaces crashes to the
collectives layer. The injection design mirrors :mod:`repro.noise`: a
declarative plan, an injector armed over an explicit horizon, and a seeded
generator so identical seeds give byte-identical fault timelines.
"""

from repro.faults.detector import FailureDetector
from repro.faults.injector import FabricFaults, FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FlapSpec,
    KillSpec,
    LossSpec,
    PartitionSpec,
    StallSpec,
)

__all__ = [
    "FailureDetector",
    "FabricFaults",
    "FaultInjector",
    "FaultPlan",
    "FlapSpec",
    "KillSpec",
    "LossSpec",
    "PartitionSpec",
    "StallSpec",
]
