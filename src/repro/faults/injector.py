"""Fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into events.

Mirrors :class:`~repro.noise.injector.NoiseInjector`'s design: explicit
arming over a horizon (a drained event queue still means "finished"), a
seeded generator, and per-spec phases drawn once at construction. One-shot
faults (kills, stalls) are armed exactly once regardless of how many
windows are armed; periodic faults (flaps) extend over each new window;
probabilistic faults (drops, duplicates) are evaluated per data message by
the :class:`FabricFaults` filter installed on the fabric.

Every fault materialized is appended to :attr:`FaultInjector.timeline`
``(time, kind, detail)`` — the determinism contract: equal plans over equal
workloads give byte-identical timelines.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.faults.detector import FailureDetector
from repro.faults.plan import FaultPlan
from repro.mpi.runtime import MpiWorld
from repro.network.flows import Flow


class FabricFaults:
    """Per-message loss/duplication filter (installed as ``Fabric.faults``).

    The fabric consults this before launching a data-plane transfer
    (``taginfo`` is set: eager payloads and rendezvous data; control
    messages and GPU staging copies are exempt). A *drop* lets the wire
    time pass but swallows the delivery callback — crucially, the filter
    wraps the callback before the fabric's in-order channel chaining, so a
    dropped message never wedges the channel behind it. A *duplicate*
    launches a faithful second copy right behind the original; duplicates
    are only injected when the runtime is reliable (sequence numbers make
    redelivery safe to suppress).
    """

    def __init__(self, injector: "FaultInjector", dedup_safe: bool):
        self._injector = injector
        self.dedup_safe = dedup_safe

    def intercept(
        self,
        src: int,
        dst: int,
        nbytes: int,
        taginfo,
        on_complete: Callable[[Flow], None],
    ) -> tuple[Callable[[Flow], None], Optional[Callable[[Flow], None]]]:
        """Returns ``(wrapped_on_complete, duplicate_callback_or_None)``."""
        inj = self._injector
        spec = inj.match_loss(src, dst)
        if spec is None:
            return on_complete, None
        dup_cb: Optional[Callable[[Flow], None]] = None
        if spec.duplicate > 0.0 and self.dedup_safe:
            if float(inj.rng.random()) < spec.duplicate:
                inj.duplicated += 1
                inj.record("dup", f"{src}->{dst} tag={taginfo} {nbytes}B")
                dup_cb = on_complete
        if spec.drop > 0.0 and float(inj.rng.random()) < spec.drop:
            inj.dropped += 1
            inj.record("drop", f"{src}->{dst} tag={taginfo} {nbytes}B")

            def swallowed(flow: Flow) -> None:
                # The bytes crossed the wire; the delivery evaporates.
                return

            return swallowed, dup_cb
        return on_complete, dup_cb

    def severed(self, src: int, dst: int) -> bool:
        """True when an active partition cuts the (src -> dst) path.

        Consulted by the fabric for *every* launch — data transfers and
        control messages alike. A severed message never enters the network:
        no wire time, no channel occupancy, no delivery. Severed is not
        lost; the reliable transport parks and resumes after the heal.
        """
        return any(p.severs(src, dst) for p in self._injector.active_partitions)

    def count_severed(self, src: int, dst: int, nbytes: int, taginfo) -> None:
        """Book a severed launch. Data-plane messages (those the runtime
        counted as transmissions: eager, data, rts) feed the transport
        conservation equation; acks/heartbeats/membership tokens are booked
        separately as control."""
        inj = self._injector
        kind = taginfo[0] if taginfo else None
        if kind in ("eager", "data", "rts"):
            inj.severed += 1
        else:
            inj.severed_control += 1

    def corrupt_roll(
        self, src: int, dst: int, nbytes: int, taginfo
    ) -> Optional[int]:
        """Decide whether this data message is corrupted in flight.

        Returns the seed-deterministic bit index to flip (within the
        ``nbytes`` payload), or ``None``. Called by the runtime at wire
        launch — sender CPU order, so equal plans over equal workloads roll
        identically regardless of receiver-side timing.
        """
        inj = self._injector
        spec = inj.match_corrupt(src, dst)
        if spec is None or spec.rate <= 0.0:
            return None
        if float(inj.rng.random()) >= spec.rate:
            return None
        bit = int(inj.rng.integers(max(1, nbytes * 8)))
        inj.corrupted += 1
        inj.record("corrupt", f"{src}->{dst} tag={taginfo} {nbytes}B bit={bit}")
        return bit


class FaultInjector:
    """Schedules a plan's faults into a world's engine and fabric."""

    def __init__(self, world: MpiWorld, plan: FaultPlan):
        self.world = world
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.timeline: list[tuple[float, str, str]] = []
        # Counters (conservation checked by the sanitizer, DESIGN.md S17).
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.kills_done = 0
        self.stalls_done = 0
        self.flap_toggles = 0
        self.severed = 0  # data-plane launches cut by an active partition
        self.severed_control = 0  # acks / heartbeats / membership tokens cut
        self.partitions_done = 0
        self.heals_done = 0
        #: Partitions currently splitting the fabric (between start and heal).
        self.active_partitions: list = []
        # Independent phase per flap spec, fixed for the injector's lifetime
        # (same draw discipline as NoiseInjector rank phases).
        self._flap_phase = [
            float(self.rng.uniform(0.0, spec.period)) for spec in plan.flaps
        ]
        self._flap_armed_until = [0.0] * len(plan.flaps)
        self._flap_base: dict[str, float] = {}  # link name -> base capacity
        self._oneshots_armed = False
        self.fabric_faults = FabricFaults(self, dedup_safe=world.config.reliable)
        # Install the data-plane filter and failure detector immediately:
        # collectives subscribe to the detector at launch time, which may
        # precede the first arm() of the driving loop.
        self.detector: Optional[FailureDetector] = None
        if plan.losses or plan.corrupts or plan.partitions:
            world.fabric.faults = self.fabric_faults
        if plan.kills or plan.partitions or plan.adaptive:
            self.detector = world.failure_detector or FailureDetector(
                world,
                plan.detect_delay,
                phi_threshold=plan.phi_threshold,
                heartbeat_period=plan.heartbeat_period,
            )
        for spec in plan.kills:
            if not 0 <= spec.rank < world.nranks:
                raise ValueError(
                    f"kill rank {spec.rank} outside [0, {world.nranks})"
                )
        for spec in plan.stalls:
            if not 0 <= spec.rank < world.nranks:
                raise ValueError(
                    f"stall rank {spec.rank} outside [0, {world.nranks})"
                )
        for spec in plan.partitions:
            ranks = spec.ranks()
            if ranks != frozenset(range(world.nranks)):
                raise ValueError(
                    f"partition groups must cover all {world.nranks} ranks "
                    f"exactly; got {sorted(ranks)}"
                )

    # -- bookkeeping ---------------------------------------------------------

    def record(self, kind: str, detail: str) -> None:
        self.timeline.append((self.world.engine.now, kind, detail))

    def match_loss(self, src: int, dst: int):
        """First loss spec covering the (src -> dst) channel, if any."""
        for spec in self.plan.losses:
            if spec.matches(src, dst):
                return spec
        return None

    def match_corrupt(self, src: int, dst: int):
        """First corruption spec covering the (src -> dst) channel, if any."""
        for spec in self.plan.corrupts:
            if spec.matches(src, dst):
                return spec
        return None

    # -- arming ---------------------------------------------------------------

    def arm(self, horizon: float) -> int:
        """Install hooks and schedule faults up to ``now + horizon``.

        One-shot kills/stalls are scheduled on the first call only (at their
        absolute plan times, even beyond the horizon); flap toggles cover
        each newly armed window exactly once. Returns the number of engine
        events scheduled.
        """
        eng = self.world.engine
        scheduled = 0
        if not self._oneshots_armed:
            self._oneshots_armed = True
            for spec in self.plan.kills:
                eng.call_at(spec.time, self._do_kill, spec.rank)
                scheduled += 1
            for spec in self.plan.stalls:
                eng.call_at(spec.time, self._do_stall, spec.rank, spec.duration)
                scheduled += 1
            for spec in self.plan.partitions:
                eng.call_at(spec.start, self._do_partition, spec)
                eng.call_at(spec.heal, self._do_heal, spec)
                scheduled += 2
        if self.detector is not None and (self.plan.partitions
                                          or self.plan.adaptive):
            self.detector.arm_heartbeats(horizon)
        for i, spec in enumerate(self.plan.flaps):
            end = eng.now + horizon
            start = max(eng.now, self._flap_armed_until[i])
            k = max(0, int(np.ceil((start - self._flap_phase[i]) / spec.period)))
            t = self._flap_phase[i] + k * spec.period
            while t < end:
                eng.call_at(t, self._do_flap, i, True)
                eng.call_at(t + spec.duty * spec.period, self._do_flap, i, False)
                scheduled += 2
                t += spec.period
            self._flap_armed_until[i] = end
        return scheduled

    # -- fault actions ----------------------------------------------------------

    def _do_kill(self, rank: int) -> None:
        if rank in self.world.failed_ranks:
            return
        self.kills_done += 1
        self.record("kill", f"rank {rank}")
        self.world.kill_rank(rank)
        detector = self.world.failure_detector
        if detector is not None:
            detector.observe_kill(rank)

    def _do_partition(self, spec) -> None:
        self.partitions_done += 1
        self.active_partitions.append(spec)
        groups = "|".join(
            ",".join(str(r) for r in g) for g in spec.groups
        )
        self.record("partition", f"[{groups}] until {spec.heal:.6f}s")

    def _do_heal(self, spec) -> None:
        if spec not in self.active_partitions:
            return
        self.heals_done += 1
        self.active_partitions.remove(spec)
        self.record("heal", f"severed {self.severed} data msgs")
        # The membership layer may be parked awaiting quorum or holding view
        # dispatches it could not deliver across the cut; let it reconcile.
        svc = getattr(self.world, "membership", None)
        if svc is not None:
            svc.on_heal()

    def _do_stall(self, rank: int, duration: float) -> None:
        if rank in self.world.failed_ranks:
            return  # stalling the dead is a no-op
        self.stalls_done += 1
        self.record("stall", f"rank {rank} for {duration:.6f}s")
        self.world.inject_noise(rank, duration)

    def _do_flap(self, index: int, degrade: bool) -> None:
        spec = self.plan.flaps[index]
        hit = [
            link
            for name, link in self.world.fabric.links().items()
            if spec.link in name
        ]
        if not hit:
            return  # links are lazy; none touched by traffic yet
        for link in hit:
            base = self._flap_base.setdefault(link.name, link.capacity)
            link.capacity = base * spec.factor if degrade else base
        self.flap_toggles += 1
        self.record(
            "flap",
            f"{spec.link!r} x{spec.factor if degrade else 1.0:g} "
            f"({len(hit)} links)",
        )
        self.world.fabric.network.refresh(hit)
