"""Timeout-based failure detection.

Crash-only model: a suspected rank is a failed rank (no recovery, no false
positives to retract — the simulator knows the ground truth, the *delay*
before survivors learn it is what the detector models). Two paths feed it:

* the :class:`~repro.faults.injector.FaultInjector` reports a fail-stop
  ``detect_delay`` seconds after the crash (a heartbeat timeout), and
* a reliable sender whose retry budget ran dry calls :meth:`suspect`
  (an ack timeout), which may beat the heartbeat.

Subscribers — degraded-mode collectives — register a callback per rank;
notifications hop onto the subscriber's CPU, so a rank that died with the
victim never observes the failure (its CPU drops the dispatch), and a noisy
rank learns late, exactly like a real process.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mpi.runtime import MpiWorld
from repro.sim.cpu import Cpu


class FailureDetector:
    """Surfaces fail-stop crashes to the live ranks, after a delay."""

    def __init__(self, world: MpiWorld, detect_delay: float = 1e-3):
        self.world = world
        self.detect_delay = detect_delay
        self.failed: set[int] = set()
        self.suspicions: list[tuple[float, int, str]] = []  # (time, rank, reason)
        self._subscribers: list[tuple[Callable[[int], None], Optional[Cpu]]] = []
        world.failure_detector = self
        # Adopt subscriptions made before the detector existed (collectives
        # launched ahead of the fault injector).
        for fn, cpu in world._failure_subscribers:
            self.subscribe(fn, cpu=cpu)
        world._failure_subscribers.clear()
        # Ranks that fail-stopped before this detector existed (a kill fired
        # while only the buffering world was listening) would otherwise never
        # be declared: the buffer records *subscribers*, not failures, so a
        # subscriber arriving after that epoch closed heard nothing. Replay
        # the ground truth through the normal delayed path.
        for rank in sorted(world.failed_ranks):
            self.observe_kill(rank)

    def is_failed(self, rank: int) -> bool:
        return rank in self.failed

    def subscribe(
        self, fn: Callable[[int], None], cpu: Optional[Cpu] = None
    ) -> None:
        """Call ``fn(rank)`` whenever a rank is declared failed.

        With ``cpu`` given the notification is dispatched as work on that
        CPU (and silently dropped if it has itself fail-stopped). Ranks
        already declared failed are delivered immediately — a collective
        starting after a crash must still learn of it.
        """
        self._subscribers.append((fn, cpu))
        for rank in sorted(self.failed):
            self._notify_one(fn, cpu, rank)

    def observe_kill(self, rank: int) -> None:
        """A fail-stop happened now; declare it after the detection delay."""
        self.world.engine.call_after(self.detect_delay, self.report_failure, rank)

    def suspect(self, rank: int, reason: str = "") -> None:
        """A peer stopped acking (reliable-transport retry budget exhausted)."""
        self.suspicions.append((self.world.engine.now, rank, reason))
        self.report_failure(rank)

    def report_failure(self, rank: int) -> None:
        """Declare ``rank`` failed and fan out to subscribers. Idempotent."""
        if rank in self.failed:
            return
        self.failed.add(rank)
        for fn, cpu in self._subscribers:
            self._notify_one(fn, cpu, rank)

    def _notify_one(
        self, fn: Callable[[int], None], cpu: Optional[Cpu], rank: int
    ) -> None:
        if cpu is not None:
            cpu.when_available(fn, rank)
        else:
            self.world.engine.call_after(0.0, fn, rank)
