"""Adaptive (phi-accrual style) failure detection with retraction.

The crash-only timeout detector grew into an accrual detector in the style
of Hayashibara et al.: instead of a binary alive/dead verdict, each peer
carries a continuous ``suspect_level`` (phi) derived from the inter-arrival
history of its liveness evidence — heartbeats observed across the fabric
plus reliable-transport acks. Phi for a silence of ``delta`` seconds against
a mean inter-arrival ``m`` is::

    phi(delta) = delta / (m * ln 10)

i.e. phi is the negated base-10 log of the probability (under an
exponential-tail model) that a heartbeat is still in flight after
``delta``. Crossing the configured ``phi_threshold`` (default 8, ~18.4x the
mean interval) makes the rank *suspected*; only ``detect_delay`` later —
the retraction window — is the failure *confirmed* and fanned out to
subscribers. Evidence arriving in between **retracts** the suspicion, and
evidence arriving even after confirmation retracts the failure: subscribers
that registered an ``alive_fn`` hear a ``rank_alive`` transition and must
tolerate it after a ``rank_failed`` (collectives acknowledge without
re-integrating; the membership layer un-parks quorum-starved rounds).

Three evidence paths feed the detector:

* the :class:`~repro.faults.injector.FaultInjector` reports a ground-truth
  fail-stop ``detect_delay`` seconds after the crash (unchanged from the
  crash-only detector, so pure kill plans behave byte-identically),
* a reliable sender whose retry budget ran dry calls :meth:`suspect`
  (an ack timeout) — routed through the same delayed confirm path, and
* heartbeats: when armed (partition or ``adaptive`` plans), every rank
  emits a periodic beat on its own CPU (a stalled rank falls silent, a
  killed rank stops forever) observed by the lowest live rank across
  ``fabric.start_control`` — so a network partition severs the evidence
  stream exactly like it severs data, and silence accrues into suspicion.

Fresh heartbeat evidence also *overrules* an ack-timeout suspicion: a peer
whose beats are arriving (phi below threshold) is reachable and alive from
the observer's seat, so the exhausted sender keeps its send parked rather
than escalating — the asymmetric-reachability case a binary detector gets
wrong.

Notifications hop onto the subscriber's CPU, so a rank that died with the
victim never observes the failure (its CPU drops the dispatch), and a noisy
rank learns late, exactly like a real process.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional

from repro.mpi.runtime import MpiWorld
from repro.sim.cpu import Cpu
from repro.sim.engine import EventHandle

_LN10 = math.log(10.0)

#: Sliding-window length for per-peer inter-arrival estimation.
_WINDOW = 16


class FailureDetector:
    """Accrual failure detector: suspect, confirm after a delay, retract."""

    def __init__(
        self,
        world: MpiWorld,
        detect_delay: float = 1e-3,
        phi_threshold: float = 8.0,
        heartbeat_period: float = 1e-3,
    ):
        self.world = world
        self.detect_delay = detect_delay
        self.phi_threshold = phi_threshold
        self.heartbeat_period = heartbeat_period
        self.failed: set[int] = set()
        self.suspected: set[int] = set()
        self.suspicions: list[tuple[float, int, str]] = []  # (time, rank, reason)
        self.retractions: list[tuple[float, int]] = []  # (time, rank)
        #: Confirmed failures later retracted — ground-truth-alive ranks the
        #: detector wrongly declared dead (the figxp "false kill" metric).
        self.false_kills = 0
        #: Every rank ever confirmed failed (never shrinks, unlike
        #: ``failed``): survivors abandoned work toward these ranks while
        #: the confirmation stood, so the wreckage stays explained even
        #: after a retraction (the sanitizer's drain excuse).
        self.ever_confirmed: set[int] = set()
        self._subscribers: list[
            tuple[
                Callable[[int], None],
                Optional[Cpu],
                Optional[Callable[[int], None]],
            ]
        ] = []
        self._confirm_timers: dict[int, EventHandle] = {}
        # --- heartbeat / phi state ---
        self._last_seen: dict[int, float] = {}
        self._intervals: dict[int, Deque[float]] = {}
        self._phi_timers: dict[int, EventHandle] = {}
        self._hb_until = -math.inf  # monitoring window end; -inf = unarmed
        self._hb_active: set[int] = set()  # ranks with a live emit chain
        world.failure_detector = self
        # Adopt subscriptions made before the detector existed (collectives
        # launched ahead of the fault injector).
        for fn, cpu, alive_fn in world._failure_subscribers:
            self.subscribe(fn, cpu=cpu, alive_fn=alive_fn)
        world._failure_subscribers.clear()
        # Ranks that fail-stopped before this detector existed (a kill fired
        # while only the buffering world was listening) would otherwise never
        # be declared: the buffer records *subscribers*, not failures, so a
        # subscriber arriving after that epoch closed heard nothing. Replay
        # the ground truth through the normal delayed path.
        for rank in sorted(world.failed_ranks):
            self.observe_kill(rank)

    def is_failed(self, rank: int) -> bool:
        return rank in self.failed

    def subscribe(
        self,
        fn: Callable[[int], None],
        cpu: Optional[Cpu] = None,
        alive_fn: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Call ``fn(rank)`` whenever a rank is declared failed.

        With ``cpu`` given the notification is dispatched as work on that
        CPU (and silently dropped if it has itself fail-stopped). Ranks
        already declared failed are delivered immediately — a collective
        starting after a crash must still learn of it. ``alive_fn`` hears
        retractions: it may fire for a rank ``fn`` never reported (a
        suspicion that evaporated) and must be idempotent.
        """
        self._subscribers.append((fn, cpu, alive_fn))
        for rank in sorted(self.failed):
            self._dispatch(fn, cpu, rank)

    # ------------------------------------------------------------------
    # evidence in
    # ------------------------------------------------------------------

    def observe_kill(self, rank: int) -> None:
        """A fail-stop happened now; declare it after the detection delay."""
        self.world.engine.call_after(self.detect_delay, self.report_failure, rank)

    def observe_alive(self, rank: int, heartbeat: bool = False) -> None:
        """Liveness evidence for ``rank`` (an ack, or a heartbeat arrival).

        Heartbeats feed the inter-arrival estimator; any evidence retracts a
        standing suspicion, and retracts even a *confirmed* failure when the
        ground truth says the rank never actually died (a partitioned or
        stalled rank coming back).
        """
        now = self.world.engine.now
        if heartbeat:
            last = self._last_seen.get(rank)
            window = self._intervals.get(rank)
            if window is None:
                # Seed the estimator with the nominal period as a prior.
                window = self._intervals[rank] = deque(
                    [self.heartbeat_period], maxlen=_WINDOW
                )
            if last is not None and now > last:
                window.append(now - last)
            self._last_seen[rank] = now
            self._arm_phi_timer(rank)
        if rank in self.suspected:
            self.retract(rank)
        elif rank in self.failed and rank not in self.world.failed_ranks:
            self.retract(rank)

    def suspect(self, rank: int, reason: str = "") -> None:
        """Accrued silence crossed the threshold (ack or heartbeat timeout).

        Routed through the delayed confirm path: the failure is only
        reported ``detect_delay`` later, and contrary evidence in that
        window retracts it. Per-rank dedup — re-suspecting an
        already-suspected or already-failed rank is a no-op, as is
        suspecting a rank whose heartbeats are demonstrably arriving
        (asymmetric reachability: the sender can't reach it, the observer
        can).
        """
        if rank in self.failed or rank in self.suspected:
            return
        if self._fresh_evidence(rank):
            return
        self.suspicions.append((self.world.engine.now, rank, reason))
        self.suspected.add(rank)
        timer = self._phi_timers.pop(rank, None)
        if timer is not None:
            timer.cancel()
        self._confirm_timers[rank] = self.world.engine.call_after(
            self.detect_delay, self._confirm, rank
        )

    def retract(self, rank: int) -> None:
        """Un-suspect (or un-fail) ``rank``: evidence says it is alive."""
        timer = self._confirm_timers.pop(rank, None)
        if timer is not None:
            timer.cancel()
        was_failed = rank in self.failed
        was_suspected = rank in self.suspected
        if not (was_failed or was_suspected):
            return
        self.suspected.discard(rank)
        self.failed.discard(rank)
        if was_failed:
            self.false_kills += 1
        self.retractions.append((self.world.engine.now, rank))
        for _fn, cpu, alive_fn in self._subscribers:
            if alive_fn is not None:
                self._dispatch(alive_fn, cpu, rank)

    def report_failure(self, rank: int) -> None:
        """Declare ``rank`` failed and fan out to subscribers. Idempotent."""
        if rank in self.failed:
            return
        self.failed.add(rank)
        self.ever_confirmed.add(rank)
        self.suspected.discard(rank)
        for timers in (self._confirm_timers, self._phi_timers):
            timer = timers.pop(rank, None)
            if timer is not None:
                timer.cancel()
        for fn, cpu, _alive_fn in self._subscribers:
            self._dispatch(fn, cpu, rank)

    def _confirm(self, rank: int) -> None:
        """The retraction window closed with no contrary evidence."""
        self._confirm_timers.pop(rank, None)
        if rank not in self.suspected:
            return
        self.report_failure(rank)

    # ------------------------------------------------------------------
    # phi accrual
    # ------------------------------------------------------------------

    def suspect_level(self, rank: int) -> float:
        """Current phi for ``rank`` (0.0 with no heartbeat history)."""
        last = self._last_seen.get(rank)
        if last is None:
            return 0.0
        mean = self._mean_interval(rank)
        if mean <= 0.0:
            return 0.0
        return (self.world.engine.now - last) / (mean * _LN10)

    def _mean_interval(self, rank: int) -> float:
        window = self._intervals.get(rank)
        if not window:
            return self.heartbeat_period
        return sum(window) / len(window)

    def _crossing_delta(self, rank: int) -> float:
        """Silence after which phi reaches the threshold."""
        return self.phi_threshold * self._mean_interval(rank) * _LN10

    def _fresh_evidence(self, rank: int) -> bool:
        """True when heartbeat evidence currently holds phi below threshold."""
        last = self._last_seen.get(rank)
        if last is None or self.world.engine.now > self._hb_until:
            return False
        return self.suspect_level(rank) < self.phi_threshold

    def _arm_phi_timer(self, rank: int) -> None:
        if rank in self._phi_timers or rank in self.suspected \
                or rank in self.failed:
            return
        delay = self._crossing_delta(rank)
        self._phi_timers[rank] = self.world.engine.call_after(
            delay, self._phi_fire, rank
        )

    def _phi_fire(self, rank: int) -> None:
        self._phi_timers.pop(rank, None)
        if rank in self.suspected or rank in self.failed:
            return
        now = self.world.engine.now
        last = self._last_seen.get(rank, now)
        delta = self._crossing_delta(rank)
        if last + delta > self._hb_until:
            # The expected next beat falls outside the monitored window: the
            # run is winding down, not the rank. Stop without suspecting.
            return
        if now - last >= delta:
            self.suspect(rank, reason=f"phi>={self.phi_threshold:g}")
            return
        # Evidence arrived since this timer was set; ride the new deadline.
        self._phi_timers[rank] = self.world.engine.call_after(
            last + delta - now, self._phi_fire, rank
        )

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------

    def arm_heartbeats(self, horizon: float) -> None:
        """Emit per-rank heartbeats for the next ``horizon`` seconds.

        Idempotent and extendable: the driver re-arms over growing horizons
        and chains that ended (window expiry) restart. Emission rides each
        rank's CPU, so stalls delay beats and kills silence them; delivery
        rides ``start_control`` to the lowest live rank, so partitions sever
        the evidence stream.
        """
        now = self.world.engine.now
        self._hb_until = max(self._hb_until, now + horizon)
        for rank in range(self.world.nranks):
            if rank in self._hb_active or rank in self.world.failed_ranks:
                continue
            self._hb_active.add(rank)
            # A rank never heard from is monitored from the window start:
            # its silence accrues immediately, so a peer severed *before*
            # its first beat still crosses the threshold on schedule.
            self._last_seen.setdefault(rank, now)
            # Deterministic per-rank phase stagger keeps beats (and their
            # arrival events) from colliding on one engine timestamp.
            phase = self.heartbeat_period * (rank + 1) / (self.world.nranks + 1)
            self.world.engine.call_after(phase, self._hb_tick, rank)
        for rank, last in self._last_seen.items():
            # Severed ranks whose phi timer stopped at a window edge must be
            # re-monitored now that the window grew.
            if rank not in self._phi_timers and rank not in self.suspected \
                    and rank not in self.failed:
                self._phi_timers[rank] = self.world.engine.call_after(
                    max(0.0, last + self._crossing_delta(rank) - now),
                    self._phi_fire, rank,
                )

    def _hb_tick(self, rank: int) -> None:
        if self.world.engine.now >= self._hb_until \
                or rank in self.world.failed_ranks:
            self._hb_active.discard(rank)
            return
        self.world.ranks[rank].cpu.when_available(self._hb_emit, rank)
        self.world.engine.call_after(self.heartbeat_period, self._hb_tick, rank)

    def _hb_emit(self, rank: int) -> None:
        """Runs on ``rank``'s CPU: the beat leaves only if the rank is live."""
        if rank in self.world.failed_ranks:
            return
        observer = self._observer()
        if observer is None:
            return
        if observer == rank:
            self.observe_alive(rank, heartbeat=True)
            return
        self.world.fabric.start_control(
            rank,
            observer,
            self.world.config.control_bytes,
            lambda r=rank: self.observe_alive(r, heartbeat=True),
            taginfo=("hb", rank, observer),
        )

    def _observer(self) -> Optional[int]:
        """Lowest ground-truth-live rank: the monitoring vantage point."""
        for rank in range(self.world.nranks):
            if rank not in self.world.failed_ranks:
                return rank
        return None

    def _dispatch(
        self, fn: Callable[[int], None], cpu: Optional[Cpu], rank: int
    ) -> None:
        if cpu is not None:
            cpu.when_available(fn, rank)
        else:
            self.world.engine.call_after(0.0, fn, rank)
