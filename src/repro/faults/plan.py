"""Declarative fault workloads.

A :class:`FaultPlan` is data, not behaviour: it lists what goes wrong and
when, and carries the seed that makes the probabilistic parts reproducible.
The :class:`~repro.faults.injector.FaultInjector` turns a plan into engine
events and fabric hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class KillSpec:
    """Fail-stop ``rank`` at absolute simulation time ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"kill time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class StallSpec:
    """Steal ``rank``'s CPU for ``duration`` seconds starting at ``time``.

    A stall is livelock-flavoured noise: the rank recovers, unlike a kill.
    """

    rank: int
    time: float
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"stall time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"stall duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class LossSpec:
    """Degrade the (src -> dst) data channels: drop and duplicate messages.

    ``src``/``dst`` of ``None`` wildcard over all ranks, so a single
    ``LossSpec(drop=0.01)`` makes the whole fabric 1% lossy. Probabilities
    apply per data-plane message (eager payloads and rendezvous data);
    control traffic rides the reliable credit-based channel and is exempt.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        for name, p in (("drop", self.drop), ("duplicate", self.duplicate)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class CorruptSpec:
    """Flip one payload bit in (src -> dst) data messages with rate ``rate``.

    ``src``/``dst`` of ``None`` wildcard over all ranks, like
    :class:`LossSpec`. Corruption is applied at wire launch: the message
    arrives on time but with one seed-deterministically chosen bit flipped,
    which the receiver's per-segment checksum catches at delivery. On the
    reliable transport a corrupt arrival triggers a NACK and an immediate
    retransmit; on the raw transport it is equivalent to a silent drop of
    the payload's integrity (delivered but flagged).
    """

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"corrupt rate must be in [0, 1], got {self.rate}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class FlapSpec:
    """Periodically degrade every link whose name contains ``link``.

    Each period the link runs at ``factor`` of its base capacity for
    ``duty`` of the period, then recovers — a flapping cable or a congested
    oversubscribed switch port. Link names follow the fabric inventory
    (e.g. ``"nic-out:n1"``, ``"qpi"``, or ``""`` for every link).
    """

    link: str
    factor: float
    period: float
    duty: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"flap factor must be in (0, 1], got {self.factor}")
        if self.period <= 0:
            raise ValueError(f"flap period must be > 0, got {self.period}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"flap duty must be in (0, 1), got {self.duty}")


@dataclass(frozen=True)
class PartitionSpec:
    """Split the fabric into isolated ``groups`` from ``start`` until ``heal``.

    While active, every message whose endpoints sit in *different* groups is
    **severed** at the fabric boundary — data, acks, control tokens and
    heartbeats alike. Severed is not lost: nothing crosses, so the reliable
    transport parks and resumes after the heal instead of abandoning. Ranks
    must appear in exactly one group; the injector additionally checks that
    the groups cover the whole world.
    """

    groups: tuple[tuple[int, ...], ...]
    start: float
    heal: float

    def __init__(self, groups, start: float, heal: float):
        # Frozen dataclass with nested coercion, so asdict/JSON round-trips
        # (lists of lists) rebuild cleanly via plan_from_dict.
        object.__setattr__(
            self, "groups", tuple(tuple(int(r) for r in g) for g in groups)
        )
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "heal", float(heal))
        if len(self.groups) < 2:
            raise ValueError(
                f"a partition needs >= 2 groups, got {len(self.groups)}"
            )
        seen: set[int] = set()
        for g in self.groups:
            if not g:
                raise ValueError("partition groups must be non-empty")
            overlap = seen & set(g)
            if overlap:
                raise ValueError(
                    f"partition groups must be disjoint; rank(s) "
                    f"{sorted(overlap)} appear twice"
                )
            seen |= set(g)
        if self.start < 0:
            raise ValueError(f"partition start must be >= 0, got {self.start}")
        if self.heal <= self.start:
            raise ValueError(
                f"partition heal must be > start, got start={self.start} "
                f"heal={self.heal}"
            )

    def side_of(self, rank: int) -> Optional[int]:
        """Index of the group holding ``rank`` (None if unlisted)."""
        for i, g in enumerate(self.groups):
            if rank in g:
                return i
        return None

    def severs(self, src: int, dst: int) -> bool:
        """True when the cut lies between these endpoints."""
        a, b = self.side_of(src), self.side_of(dst)
        return a is not None and b is not None and a != b

    def ranks(self) -> frozenset[int]:
        return frozenset(r for g in self.groups for r in g)


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault workload.

    ``seed`` drives every probabilistic decision (drops, duplicates, flap
    phases): two injectors built from equal plans over identical workloads
    produce byte-identical fault timelines. ``detect_delay`` is how long
    the detector waits between suspecting a rank and confirming the failure
    (the retraction window); ``phi_threshold``/``heartbeat_period``
    parameterize the phi-accrual detector, armed whenever the plan carries
    partitions or sets ``adaptive``.
    """

    kills: tuple[KillSpec, ...] = ()
    stalls: tuple[StallSpec, ...] = ()
    losses: tuple[LossSpec, ...] = ()
    flaps: tuple[FlapSpec, ...] = ()
    corrupts: tuple[CorruptSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()
    seed: int = 0
    detect_delay: float = 1e-3
    phi_threshold: float = 8.0
    heartbeat_period: float = 1e-3
    adaptive: bool = False

    def __init__(
        self,
        kills=(),
        stalls=(),
        losses=(),
        flaps=(),
        corrupts=(),
        seed: int = 0,
        detect_delay: float = 1e-3,
        partitions=(),
        phi_threshold: float = 8.0,
        heartbeat_period: float = 1e-3,
        adaptive: bool = False,
    ):
        # Frozen dataclass with sequence coercion: accept any iterables.
        object.__setattr__(self, "kills", tuple(kills))
        object.__setattr__(self, "stalls", tuple(stalls))
        object.__setattr__(self, "losses", tuple(losses))
        object.__setattr__(self, "flaps", tuple(flaps))
        object.__setattr__(self, "corrupts", tuple(corrupts))
        object.__setattr__(self, "partitions", tuple(partitions))
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "detect_delay", detect_delay)
        object.__setattr__(self, "phi_threshold", float(phi_threshold))
        object.__setattr__(self, "heartbeat_period", float(heartbeat_period))
        object.__setattr__(self, "adaptive", bool(adaptive))
        if detect_delay < 0:
            raise ValueError(f"detect_delay must be >= 0, got {detect_delay}")
        if phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be > 0, got {phi_threshold}"
            )
        if heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat_period must be > 0, got {heartbeat_period}"
            )

    def empty(self) -> bool:
        return not (
            self.kills or self.stalls or self.losses or self.flaps
            or self.corrupts or self.partitions
        )

    @classmethod
    def single_kill(
        cls, rank: int, time: float, detect_delay: float = 1e-3
    ) -> "FaultPlan":
        """The one-victim fail-stop plan the recovery checkers sweep with."""
        return cls(kills=[KillSpec(rank=rank, time=time)],
                   detect_delay=detect_delay)

    @classmethod
    def stall_sweep(
        cls,
        nranks: int,
        *,
        victims: int = 1,
        duration: float = 5e-3,
        start: float = 0.0,
        spread: float = 0.0,
        seed: int = 0,
        detect_delay: float = 1e-3,
    ) -> "FaultPlan":
        """A seeded per-rank stall grid — ``single_kill``'s straggler twin.

        Picks ``victims`` distinct ranks with the plan's own RNG and stalls
        each for ``duration`` seconds; with ``spread`` > 0 the start times
        scatter uniformly over ``[start, start + spread)`` instead of
        landing together. Equal arguments build equal plans (the cache-key
        property every :class:`FaultPlan` constructor must keep), so figq
        and the fuzz suite can sweep straggler grids in one line.
        """
        import random

        if not 0 <= victims <= nranks:
            raise ValueError(
                f"victims must be in [0, {nranks}], got {victims}"
            )
        rng = random.Random(seed)
        ranks = sorted(rng.sample(range(nranks), victims))
        stalls = [
            StallSpec(
                rank=r,
                time=start + (rng.random() * spread if spread > 0 else 0.0),
                duration=duration,
            )
            for r in ranks
        ]
        return cls(stalls=stalls, seed=seed, detect_delay=detect_delay)


#: Every fault kind a plan dict may carry, mapped to its spec class.  The
#: explicit registry is what lets :func:`plan_from_dict` reject a typo'd or
#: not-yet-supported kind with a clear error instead of silently ignoring
#: the entry (a silently dropped ``"kils"`` key once cost an afternoon).
FAULT_KINDS: dict[str, type] = {
    "kills": KillSpec,
    "stalls": StallSpec,
    "losses": LossSpec,
    "flaps": FlapSpec,
    "corrupts": CorruptSpec,
    "partitions": PartitionSpec,
}

_SCALARS = (
    "seed", "detect_delay", "phi_threshold", "heartbeat_period", "adaptive",
)


def plan_from_dict(payload: dict) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from its ``dataclasses.asdict`` form.

    Unknown keys — fault kinds this build does not implement, or typos —
    raise ``ValueError`` naming the offender and the known kinds, instead
    of producing a plan that silently does less than the caller asked for.
    """
    unknown = sorted(k for k in payload if k not in FAULT_KINDS and k not in _SCALARS)
    if unknown:
        raise ValueError(
            f"unknown fault kind(s) {unknown}; "
            f"known kinds: {sorted(FAULT_KINDS)} plus {list(_SCALARS)}"
        )
    kwargs: dict[str, object] = {}
    for kind, cls in FAULT_KINDS.items():
        entries = payload.get(kind, ())
        kwargs[kind] = tuple(
            e if isinstance(e, cls) else cls(**e) for e in entries
        )
    for name in _SCALARS:
        if name in payload:
            kwargs[name] = payload[name]
    return FaultPlan(**kwargs)
