"""Declarative fault workloads.

A :class:`FaultPlan` is data, not behaviour: it lists what goes wrong and
when, and carries the seed that makes the probabilistic parts reproducible.
The :class:`~repro.faults.injector.FaultInjector` turns a plan into engine
events and fabric hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class KillSpec:
    """Fail-stop ``rank`` at absolute simulation time ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"kill time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class StallSpec:
    """Steal ``rank``'s CPU for ``duration`` seconds starting at ``time``.

    A stall is livelock-flavoured noise: the rank recovers, unlike a kill.
    """

    rank: int
    time: float
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"stall time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"stall duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class LossSpec:
    """Degrade the (src -> dst) data channels: drop and duplicate messages.

    ``src``/``dst`` of ``None`` wildcard over all ranks, so a single
    ``LossSpec(drop=0.01)`` makes the whole fabric 1% lossy. Probabilities
    apply per data-plane message (eager payloads and rendezvous data);
    control traffic rides the reliable credit-based channel and is exempt.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        for name, p in (("drop", self.drop), ("duplicate", self.duplicate)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class CorruptSpec:
    """Flip one payload bit in (src -> dst) data messages with rate ``rate``.

    ``src``/``dst`` of ``None`` wildcard over all ranks, like
    :class:`LossSpec`. Corruption is applied at wire launch: the message
    arrives on time but with one seed-deterministically chosen bit flipped,
    which the receiver's per-segment checksum catches at delivery. On the
    reliable transport a corrupt arrival triggers a NACK and an immediate
    retransmit; on the raw transport it is equivalent to a silent drop of
    the payload's integrity (delivered but flagged).
    """

    rate: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"corrupt rate must be in [0, 1], got {self.rate}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class FlapSpec:
    """Periodically degrade every link whose name contains ``link``.

    Each period the link runs at ``factor`` of its base capacity for
    ``duty`` of the period, then recovers — a flapping cable or a congested
    oversubscribed switch port. Link names follow the fabric inventory
    (e.g. ``"nic-out:n1"``, ``"qpi"``, or ``""`` for every link).
    """

    link: str
    factor: float
    period: float
    duty: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"flap factor must be in (0, 1], got {self.factor}")
        if self.period <= 0:
            raise ValueError(f"flap period must be > 0, got {self.period}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"flap duty must be in (0, 1), got {self.duty}")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault workload.

    ``seed`` drives every probabilistic decision (drops, duplicates, flap
    phases): two injectors built from equal plans over identical workloads
    produce byte-identical fault timelines. ``detect_delay`` is how long
    after a crash the failure detector notices it — the timeout a real
    heartbeat/ack-based detector would need.
    """

    kills: tuple[KillSpec, ...] = ()
    stalls: tuple[StallSpec, ...] = ()
    losses: tuple[LossSpec, ...] = ()
    flaps: tuple[FlapSpec, ...] = ()
    corrupts: tuple[CorruptSpec, ...] = ()
    seed: int = 0
    detect_delay: float = 1e-3

    def __init__(
        self,
        kills=(),
        stalls=(),
        losses=(),
        flaps=(),
        corrupts=(),
        seed: int = 0,
        detect_delay: float = 1e-3,
    ):
        # Frozen dataclass with sequence coercion: accept any iterables.
        object.__setattr__(self, "kills", tuple(kills))
        object.__setattr__(self, "stalls", tuple(stalls))
        object.__setattr__(self, "losses", tuple(losses))
        object.__setattr__(self, "flaps", tuple(flaps))
        object.__setattr__(self, "corrupts", tuple(corrupts))
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "detect_delay", detect_delay)
        if detect_delay < 0:
            raise ValueError(f"detect_delay must be >= 0, got {detect_delay}")

    def empty(self) -> bool:
        return not (
            self.kills or self.stalls or self.losses or self.flaps or self.corrupts
        )

    @classmethod
    def single_kill(
        cls, rank: int, time: float, detect_delay: float = 1e-3
    ) -> "FaultPlan":
        """The one-victim fail-stop plan the recovery checkers sweep with."""
        return cls(kills=[KillSpec(rank=rank, time=time)],
                   detect_delay=detect_delay)


#: Every fault kind a plan dict may carry, mapped to its spec class.  The
#: explicit registry is what lets :func:`plan_from_dict` reject a typo'd or
#: not-yet-supported kind with a clear error instead of silently ignoring
#: the entry (a silently dropped ``"kils"`` key once cost an afternoon).
FAULT_KINDS: dict[str, type] = {
    "kills": KillSpec,
    "stalls": StallSpec,
    "losses": LossSpec,
    "flaps": FlapSpec,
    "corrupts": CorruptSpec,
}

_SCALARS = ("seed", "detect_delay")


def plan_from_dict(payload: dict) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from its ``dataclasses.asdict`` form.

    Unknown keys — fault kinds this build does not implement, or typos —
    raise ``ValueError`` naming the offender and the known kinds, instead
    of producing a plan that silently does less than the caller asked for.
    """
    unknown = sorted(k for k in payload if k not in FAULT_KINDS and k not in _SCALARS)
    if unknown:
        raise ValueError(
            f"unknown fault kind(s) {unknown}; "
            f"known kinds: {sorted(FAULT_KINDS)} plus {list(_SCALARS)}"
        )
    kwargs: dict[str, object] = {}
    for kind, cls in FAULT_KINDS.items():
        entries = payload.get(kind, ())
        kwargs[kind] = tuple(
            e if isinstance(e, cls) else cls(**e) for e in entries
        )
    for name in _SCALARS:
        if name in payload:
            kwargs[name] = payload[name]
    return FaultPlan(**kwargs)
