"""Declarative fault workloads.

A :class:`FaultPlan` is data, not behaviour: it lists what goes wrong and
when, and carries the seed that makes the probabilistic parts reproducible.
The :class:`~repro.faults.injector.FaultInjector` turns a plan into engine
events and fabric hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class KillSpec:
    """Fail-stop ``rank`` at absolute simulation time ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"kill time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class StallSpec:
    """Steal ``rank``'s CPU for ``duration`` seconds starting at ``time``.

    A stall is livelock-flavoured noise: the rank recovers, unlike a kill.
    """

    rank: int
    time: float
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"stall time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"stall duration must be > 0, got {self.duration}")


@dataclass(frozen=True)
class LossSpec:
    """Degrade the (src -> dst) data channels: drop and duplicate messages.

    ``src``/``dst`` of ``None`` wildcard over all ranks, so a single
    ``LossSpec(drop=0.01)`` makes the whole fabric 1% lossy. Probabilities
    apply per data-plane message (eager payloads and rendezvous data);
    control traffic rides the reliable credit-based channel and is exempt.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        for name, p in (("drop", self.drop), ("duplicate", self.duplicate)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {p}")

    def matches(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class FlapSpec:
    """Periodically degrade every link whose name contains ``link``.

    Each period the link runs at ``factor`` of its base capacity for
    ``duty`` of the period, then recovers — a flapping cable or a congested
    oversubscribed switch port. Link names follow the fabric inventory
    (e.g. ``"nic-out:n1"``, ``"qpi"``, or ``""`` for every link).
    """

    link: str
    factor: float
    period: float
    duty: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"flap factor must be in (0, 1], got {self.factor}")
        if self.period <= 0:
            raise ValueError(f"flap period must be > 0, got {self.period}")
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"flap duty must be in (0, 1), got {self.duty}")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault workload.

    ``seed`` drives every probabilistic decision (drops, duplicates, flap
    phases): two injectors built from equal plans over identical workloads
    produce byte-identical fault timelines. ``detect_delay`` is how long
    after a crash the failure detector notices it — the timeout a real
    heartbeat/ack-based detector would need.
    """

    kills: tuple[KillSpec, ...] = ()
    stalls: tuple[StallSpec, ...] = ()
    losses: tuple[LossSpec, ...] = ()
    flaps: tuple[FlapSpec, ...] = ()
    seed: int = 0
    detect_delay: float = 1e-3

    def __init__(
        self,
        kills=(),
        stalls=(),
        losses=(),
        flaps=(),
        seed: int = 0,
        detect_delay: float = 1e-3,
    ):
        # Frozen dataclass with sequence coercion: accept any iterables.
        object.__setattr__(self, "kills", tuple(kills))
        object.__setattr__(self, "stalls", tuple(stalls))
        object.__setattr__(self, "losses", tuple(losses))
        object.__setattr__(self, "flaps", tuple(flaps))
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "detect_delay", detect_delay)
        if detect_delay < 0:
            raise ValueError(f"detect_delay must be >= 0, got {detect_delay}")

    def empty(self) -> bool:
        return not (self.kills or self.stalls or self.losses or self.flaps)
