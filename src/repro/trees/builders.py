"""Classic tree shapes (paper Section 2.2.4 lists chain, binary, binomial...).

All builders produce trees rooted at 0 over ranks ``0..n-1``; use
:meth:`~repro.trees.base.Tree.reroot_relabelled` for other roots. Child order
follows the conventional implementations (binomial: largest subtree first),
which matters for the blocking baseline's service order.
"""

from __future__ import annotations

from typing import Optional

from repro.trees.base import Tree


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"tree needs at least one rank, got {n}")


def chain_tree(n: int) -> Tree:
    """Pipeline chain 0 -> 1 -> ... -> n-1 (the shape ADAPT favours for
    pipelined bcast/reduce, Section 5.2.1)."""
    _check_n(n)
    parent: list[Optional[int]] = [None] + [r - 1 for r in range(1, n)]
    return Tree.from_parents(parent, 0, name="chain")


def flat_tree(n: int) -> Tree:
    """Root sends directly to everyone (linear/star)."""
    _check_n(n)
    parent: list[Optional[int]] = [None] + [0] * (n - 1)
    return Tree.from_parents(parent, 0, name="flat")


def kary_tree(n: int, k: int = 2) -> Tree:
    """Complete k-ary tree in BFS order."""
    _check_n(n)
    if k < 1:
        raise ValueError(f"k-ary tree needs k >= 1, got {k}")
    parent: list[Optional[int]] = [None] * n
    for r in range(1, n):
        parent[r] = (r - 1) // k
    name = "binary" if k == 2 else f"{k}-ary"
    return Tree.from_parents(parent, 0, name=name)


def binary_tree(n: int) -> Tree:
    """Complete binary tree."""
    return kary_tree(n, 2)


def binomial_tree(n: int) -> Tree:
    """Binomial tree: rank r's parent clears r's lowest set bit.

    Children are ordered largest-subtree first — the order the classic
    recursive-halving broadcast services them in.
    """
    _check_n(n)
    parent: list[Optional[int]] = [None] * n
    for r in range(1, n):
        parent[r] = r & (r - 1)  # clear lowest set bit
    tree = Tree.from_parents(parent, 0, name="binomial")
    for r in range(n):
        tree.children[r].sort(key=lambda c: -(c & -c))
    return tree


def knomial_tree(n: int, k: int = 4) -> Tree:
    """k-nomial tree: generalization of binomial (k=2 is binomial).

    Round i (i=0,1,...) has each informed rank send to ranks at offsets
    ``j * k**i`` (j in 1..k-1) beyond itself, while those targets exist.
    """
    _check_n(n)
    if k < 2:
        raise ValueError(f"k-nomial tree needs k >= 2, got {k}")
    parent: list[Optional[int]] = [None] * n
    stride = 1
    while stride < n:
        for base in range(0, n, stride * k):
            for j in range(1, k):
                child = base + j * stride
                if child < n and parent[child] is None and child != 0:
                    parent[child] = base
        stride *= k
    tree = Tree.from_parents(parent, 0, name=f"{k}-nomial")
    for r in range(n):
        tree.children[r].sort(key=lambda c: -(c - r))
    return tree
