"""Tree representation shared by every collective framework."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence


@dataclass
class Tree:
    """A rooted communication tree over communicator-local ranks.

    ``parent[r]`` is ``None`` for the root; ``children[r]`` is ordered — the
    order is semantically relevant for the blocking baseline, which services
    children strictly in this order (the synchronization-dependency ordering
    the paper's Figure 1 criticizes).
    """

    root: int
    parent: list[Optional[int]]
    children: list[list[int]]
    name: str = "tree"

    @property
    def size(self) -> int:
        return len(self.parent)

    def is_leaf(self, rank: int) -> bool:
        return not self.children[rank]

    def is_root(self, rank: int) -> bool:
        return rank == self.root

    def depth_of(self, rank: int) -> int:
        d = 0
        r: Optional[int] = rank
        while r is not None and r != self.root:
            r = self.parent[r]
            d += 1
        return d

    def height(self) -> int:
        return max(self.depth_of(r) for r in range(self.size))

    def max_fanout(self) -> int:
        return max((len(c) for c in self.children), default=0)

    def descendants(self, rank: int) -> Iterator[int]:
        """All ranks strictly below ``rank`` (preorder)."""
        stack = list(self.children[rank])
        while stack:
            r = stack.pop()
            yield r
            stack.extend(self.children[r])

    def validate(self) -> None:
        """Raise if the tree is not a spanning tree rooted at ``root``."""
        n = self.size
        if len(self.children) != n:
            raise ValueError("parent/children length mismatch")
        if not (0 <= self.root < n):
            raise ValueError(f"root {self.root} out of range")
        if self.parent[self.root] is not None:
            raise ValueError("root must have parent None")
        for r in range(n):
            for c in self.children[r]:
                if self.parent[c] != r:
                    raise ValueError(f"child link {r}->{c} not mirrored by parent[]")
        seen = {self.root}
        for r in self.descendants(self.root):
            if r in seen:
                raise ValueError(f"rank {r} reached twice (cycle or DAG)")
            seen.add(r)
        if len(seen) != n:
            missing = set(range(n)) - seen
            raise ValueError(f"tree does not span: missing ranks {sorted(missing)}")

    @staticmethod
    def from_parents(parent: Sequence[Optional[int]], root: int, name: str = "tree") -> "Tree":
        """Build (and validate) a tree from a parent array."""
        n = len(parent)
        children: list[list[int]] = [[] for _ in range(n)]
        for r, p in enumerate(parent):
            if p is not None:
                children[p].append(r)
        tree = Tree(root=root, parent=list(parent), children=children, name=name)
        tree.validate()
        return tree

    def reroot_relabelled(self, new_root: int) -> "Tree":
        """The same shape with ranks relabelled so ``new_root`` plays rank-0's
        role: rank ``r`` maps to ``(r + new_root) % size``.

        This is how collectives support arbitrary roots on shapes built for
        root 0 (standard MPI practice).
        """
        n = self.size
        shift = new_root - self.root

        def relabel(r: int) -> int:
            return (r + shift) % n

        parent = [None] * n
        for r in range(n):
            p = self.parent[r]
            if p is not None:
                parent[relabel(r)] = relabel(p)
        return Tree.from_parents(parent, relabel(self.root), name=self.name)
