"""Communication trees.

Collectives in this repository are tree-agnostic (paper Section 2.2.4): every
framework — blocking, non-blocking, ADAPT — takes a :class:`Tree` and moves
segments along its edges. Builders cover the classic shapes (chain, flat,
binary, binomial, k-ary, k-nomial) plus the paper's Section 3.2
**topology-aware tree**: ranks are grouped bottom-up (socket, then node, then
machine), each group runs its own shape, and group leaders glue the levels
together (Figure 5).
"""

from repro.trees.base import Tree
from repro.trees.builders import (
    binary_tree,
    binomial_tree,
    chain_tree,
    flat_tree,
    kary_tree,
    knomial_tree,
)
from repro.trees.topo_tree import topology_aware_tree

__all__ = [
    "Tree",
    "chain_tree",
    "flat_tree",
    "binary_tree",
    "binomial_tree",
    "kary_tree",
    "knomial_tree",
    "topology_aware_tree",
]
