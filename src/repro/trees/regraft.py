"""Tree re-grafting: rebuild a spanning structure around dead ranks.

The recovery subsystem (``repro.recovery``) repairs a collective mid-flight
by re-routing the edges that touched a failed rank.  The pure graph half of
that lives here: given a tree and a failed set, compute who adopts whom and
what the survivor tree looks like.  The paper's structural argument is what
makes this sound — ADAPT schedules carry only true data dependencies, so a
dead child is an edge to re-route, never a ``Waitall`` the subtree is stuck
inside.

All functions are pure and deterministic: same tree + same failed set gives
the same re-graft, which is what keeps seeded recovery timelines
byte-identical across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.trees.base import Tree


def nearest_live_ancestor(tree: Tree, rank: int, failed: set[int]) -> Optional[int]:
    """First ancestor of ``rank`` (walking towards the root) not in ``failed``.

    Returns ``None`` when every ancestor up to and including the root is dead
    — the orphan has no live attachment point and its subtree is lost to the
    distribution (bcast/scatter) or the root's view (gather/reduce).
    """
    p = tree.parent[rank]
    while p is not None and p in failed:
        p = tree.parent[p]
    return p


def live_descendants(tree: Tree, rank: int, failed: set[int]) -> list[int]:
    """Live ranks below ``rank`` reachable through any chain of dead
    intermediates — i.e. every survivor whose nearest live ancestor search
    would terminate at ``rank``'s subtree boundary."""
    out: list[int] = []
    stack = list(tree.children[rank])
    while stack:
        r = stack.pop()
        if r in failed:
            stack.extend(tree.children[r])
        else:
            out.append(r)
    return sorted(out)


@dataclass
class Regraft:
    """The repair decision for one (tree, failed-set) pair.

    ``adoptions`` maps each live orphan to its adopter (nearest live
    ancestor).  ``lost`` is the set of live ranks stranded below an
    all-dead root chain (only possible when the root itself died).
    ``survivor`` is the repaired tree over the original rank space with
    failed ranks detached (their parent/children entries cleared); it is
    *not* a spanning tree of ``range(size)`` and must not be validated as
    one — use :meth:`check` instead.
    """

    survivor: Tree
    adoptions: dict[int, int] = field(default_factory=dict)
    lost: set[int] = field(default_factory=set)

    def check(self, failed: set[int]) -> None:
        t = self.survivor
        for r in range(t.size):
            if r in failed:
                assert t.parent[r] is None and not t.children[r]
                continue
            if r in self.lost or r == t.root:
                continue
            p = t.parent[r]
            assert p is not None and p not in failed, f"rank {r} still orphaned"


def regraft_tree(tree: Tree, failed: Iterable[int]) -> Regraft:
    """Compute the survivor tree after ``failed`` ranks die.

    Every live orphan (live rank whose parent chain passes through a dead
    rank before reaching a live one) is re-parented onto its nearest live
    ancestor, preserving the original subtree order so repeated re-grafts
    commute with incremental ones: ``regraft(regraft(t, A).survivor, B)``
    equals ``regraft(t, A | B)`` on the survivor edges.
    """
    dead = set(failed)
    n = tree.size
    parent: list[Optional[int]] = list(tree.parent)
    children: list[list[int]] = [list(c) for c in tree.children]
    adoptions: dict[int, int] = {}
    lost: set[int] = set()

    if tree.root in dead:
        # Root-chain death: everything below becomes unreachable from the
        # source of a distribution / unreachable to the sink of a gather.
        for r in range(n):
            if r not in dead:
                lost.add(r)
        for r in range(n):
            parent[r] = None if r == tree.root or r in dead else parent[r]
            if r in dead:
                children[r] = []
        # Detach edges into dead ranks so the structure stays consistent.
        for r in range(n):
            children[r] = [c for c in children[r] if c not in dead]
            if parent[r] is not None and parent[r] in dead:
                parent[r] = None
        surv = Tree(root=tree.root, parent=parent, children=children,
                    name=f"{tree.name}-regraft")
        return Regraft(survivor=surv, adoptions={}, lost=lost)

    for r in range(n):
        if r in dead or r == tree.root:
            continue
        p = tree.parent[r]
        if p is None or p not in dead:
            continue
        adopter = nearest_live_ancestor(tree, r, dead)
        assert adopter is not None  # root is live on this path
        adoptions[r] = adopter

    # Rewire: drop dead ranks' edges, append orphans to the adopter's child
    # list in ascending rank order (deterministic).
    for r in range(n):
        children[r] = [c for c in children[r] if c not in dead]
    for orphan in sorted(adoptions):
        adopter = adoptions[orphan]
        parent[orphan] = adopter
        children[adopter].append(orphan)
    for r in sorted(dead):
        parent[r] = None
        children[r] = []

    surv = Tree(root=tree.root, parent=parent, children=children,
                name=f"{tree.name}-regraft")
    return Regraft(survivor=surv, adoptions=adoptions, lost=lost)


def live_ring(members: Sequence[int], failed: Iterable[int]) -> list[int]:
    """The survivor ring: ``members`` in order with failed ranks removed.

    Ring collectives (allgather, reduce_scatter) restart on this ring after
    a membership shrink; keeping the original order keeps block placement
    deterministic.
    """
    dead = set(failed)
    return [m for m in members if m not in dead]


def compact_subtree_tree(tree: Tree, failed: Iterable[int]) -> tuple[Tree, dict[int, int]]:
    """A proper spanning tree over the survivors, relabelled ``0..k-1``.

    Used by epoch-restart collectives that re-run a tree algorithm on the
    shrunk membership: returns the relabelled tree plus the mapping from
    new (dense) rank to original rank.  Raises if the root is dead — a
    dead root means the collective is excused, not restarted.
    """
    dead = set(failed)
    if tree.root in dead:
        raise ValueError("cannot rebuild a survivor tree around a dead root")
    rg = regraft_tree(tree, dead)
    survivors = sorted(r for r in range(tree.size) if r not in dead)
    to_new = {old: i for i, old in enumerate(survivors)}
    parent: list[Optional[int]] = [None] * len(survivors)
    for old in survivors:
        p = rg.survivor.parent[old]
        if p is not None:
            parent[to_new[old]] = to_new[p]
    new_tree = Tree.from_parents(parent, to_new[tree.root],
                                 name=f"{tree.name}-survivors")
    return new_tree, {i: old for old, i in to_new.items()}
