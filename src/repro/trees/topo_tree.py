"""Topology-aware communication tree (paper Section 3.2, Figure 5).

Ranks are grouped bottom-up: core ranks within a socket, socket leaders
within a node, node leaders across the machine. Each group runs its own tree
shape (chain by default — the shape the paper's evaluation uses at every
level), and group leaders are members of two levels, gluing them together.
The result is ONE spanning tree over a single communicator, so frameworks
need no multi-communicator phases and inter-level communication can overlap —
the core argument of Section 3.2 against the Section 3.1 baseline.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.machine.spec import CommLevel
from repro.machine.topology import Topology
from repro.trees.base import Tree
from repro.trees.builders import (
    binary_tree,
    binomial_tree,
    chain_tree,
    flat_tree,
    kary_tree,
    knomial_tree,
)

SHAPES: Mapping[str, Callable[[int], Tree]] = {
    "chain": chain_tree,
    "flat": flat_tree,
    "binary": binary_tree,
    "binomial": binomial_tree,
    "kary4": lambda n: kary_tree(n, 4),
    "knomial4": lambda n: knomial_tree(n, 4),
}


def _group_tree(members: Sequence[int], leader: int, shape: str) -> dict[int, int]:
    """Parent map (member -> member) of one group's tree rooted at ``leader``.

    The shape builder works on indices 0..len-1 with the leader first; other
    members keep ascending order, matching how the paper lays chains along
    consecutive cores (Figure 5).
    """
    ordered = [leader] + [m for m in sorted(members) if m != leader]
    proto = SHAPES[shape](len(ordered))
    out: dict[int, int] = {}
    for idx, member in enumerate(ordered):
        p = proto.parent[idx]
        if p is not None:
            out[member] = ordered[p]
    return out


def topology_aware_tree(
    topology: Topology,
    ranks: Sequence[int],
    root: int,
    shapes: Optional[Mapping[CommLevel, str]] = None,
) -> Tree:
    """Build the multi-level tree over communicator-local ranks.

    ``ranks`` lists world ranks in communicator order; ``root`` is the
    communicator-local root. Returns a tree over local ranks whose edges, by
    construction, each stay within one hardware level.
    """
    shapes = shapes or {}
    shape_of = {
        CommLevel.INTRA_SOCKET: shapes.get(CommLevel.INTRA_SOCKET, "chain"),
        CommLevel.INTER_SOCKET: shapes.get(CommLevel.INTER_SOCKET, "chain"),
        CommLevel.INTER_NODE: shapes.get(CommLevel.INTER_NODE, "chain"),
    }
    n = len(ranks)
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range for {n} ranks")
    root_world = ranks[root]
    local_of = {w: i for i, w in enumerate(ranks)}

    # Group local ranks by socket and by node.
    sockets: dict[tuple, list[int]] = {}
    nodes: dict[tuple, list[int]] = {}
    for i, w in enumerate(ranks):
        sockets.setdefault(topology.group_key(w, CommLevel.INTRA_SOCKET), []).append(i)
        nodes.setdefault(topology.group_key(w, CommLevel.INTER_SOCKET), []).append(i)

    def socket_leader(members: list[int]) -> int:
        return root if root in members else min(members)

    # Socket level: every rank hangs off its socket tree.
    parent: list[Optional[int]] = [None] * n
    socket_leaders: dict[tuple, int] = {}
    for key, members in sockets.items():
        leader = socket_leader(members)
        socket_leaders[key] = leader
        for child, par in _group_tree(
            members, leader, shape_of[CommLevel.INTRA_SOCKET]
        ).items():
            parent[child] = par

    # Node level: socket leaders of one node form a group; its leader is the
    # socket leader on the root's socket if the root lives here, else the
    # smallest socket leader.
    node_leaders: dict[tuple, int] = {}
    root_node_key = topology.group_key(root_world, CommLevel.INTER_SOCKET)
    for node_key, members in nodes.items():
        leaders_here = sorted(
            {
                socket_leaders[topology.group_key(ranks[i], CommLevel.INTRA_SOCKET)]
                for i in members
            }
        )
        if node_key == root_node_key:
            node_leader = root
        else:
            node_leader = leaders_here[0]
        node_leaders[node_key] = node_leader
        for child, par in _group_tree(
            leaders_here, node_leader, shape_of[CommLevel.INTER_SOCKET]
        ).items():
            parent[child] = par

    # Top level: node leaders across the machine, rooted at the root's node.
    top_members = sorted(node_leaders.values())
    for child, par in _group_tree(
        top_members, root, shape_of[CommLevel.INTER_NODE]
    ).items():
        parent[child] = par

    parent[root] = None
    levels = "/".join(
        shape_of[l][:4]
        for l in (CommLevel.INTER_NODE, CommLevel.INTER_SOCKET, CommLevel.INTRA_SOCKET)
    )
    return Tree.from_parents(parent, root, name=f"topo({levels})")
