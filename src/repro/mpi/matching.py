"""Message matching: posted-receive and unexpected-message queues.

Matching is exact on ``(source, tag)`` with FIFO order within a key — the
collectives in this repository encode the segment index in the tag, so exact
matching reproduces MPI's non-overtaking guarantee for every pattern used
here (DESIGN.md notes this as the one simplification over full wildcard
matching).

The unexpected queue is not free: an eager message that arrives before its
receive is posted is buffered and later *copied* into the user buffer, an
extra memcpy the paper calls out as the reason ADAPT posts more recvs than
sends in flight (``M > N``, Section 2.2.1).

Reliability support (``RuntimeConfig.reliable``, DESIGN.md S17): data
messages carry per-sender sequence numbers; :meth:`Matcher.register_seq`
suppresses redeliveries — a retransmission that raced a slow original, or a
fabric-injected duplicate — so at-least-once transport yields exactly-once
matching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mpi.request import Request


@dataclass
class InboundMessage:
    """An arrived eager payload, or a rendezvous announcement (RTS)."""

    src: int
    tag: int
    nbytes: int
    eager: bool
    data: Any = None
    arrival_time: float = 0.0
    # Rendezvous only: opaque handle the runtime uses to send the CTS back.
    rendezvous_token: Any = None
    # Reliable transport only: per-sender delivery sequence number.
    seq: Optional[int] = None
    # End-to-end integrity (DESIGN.md S20): sender checksum of the payload,
    # and the in-flight corruption flag (models a checksum mismatch when the
    # simulation carries no real payload bytes).
    crc: Optional[int] = None
    corrupt: bool = False


@dataclass
class Matcher:
    """Per-rank matching state."""

    posted: dict[tuple[int, int], deque[Request]] = field(default_factory=dict)
    inbound: dict[tuple[int, int], deque[InboundMessage]] = field(default_factory=dict)
    unexpected_eager_count: int = 0
    # Reliable transport: per-source sets of delivered sequence numbers.
    seen_seqs: dict[int, set[int]] = field(default_factory=dict)
    duplicates_suppressed: int = 0

    def register_seq(self, src: int, seq: int) -> bool:
        """Record a delivery; returns False (and counts) for a duplicate."""
        seen = self.seen_seqs.setdefault(src, set())
        if seq in seen:
            self.duplicates_suppressed += 1
            return False
        seen.add(seq)
        return True

    def fresh_deliveries(self) -> int:
        """Distinct reliable messages delivered to this rank."""
        return sum(len(s) for s in self.seen_seqs.values())

    def cancel_recv(self, req: Request) -> bool:
        """Withdraw a posted (unmatched) receive; True if it was queued."""
        key = (req.peer, req.tag)
        queue = self.posted.get(key)
        if not queue or req not in queue:
            return False
        queue.remove(req)
        if not queue:
            del self.posted[key]
        return True

    def post_recv(self, req: Request) -> Optional[InboundMessage]:
        """Register a posted receive; returns a message if one already arrived."""
        key = (req.peer, req.tag)
        queue = self.inbound.get(key)
        if queue:
            msg = queue.popleft()
            if not queue:
                del self.inbound[key]
            return msg
        self.posted.setdefault(key, deque()).append(req)
        return None

    def arrive(self, msg: InboundMessage) -> Optional[Request]:
        """Register an arrival; returns the matching posted recv if any."""
        key = (msg.src, msg.tag)
        queue = self.posted.get(key)
        if queue:
            req = queue.popleft()
            if not queue:
                del self.posted[key]
            return req
        self.inbound.setdefault(key, deque()).append(msg)
        if msg.eager:
            self.unexpected_eager_count += 1
        return None

    def pending_posted(self) -> int:
        return sum(len(q) for q in self.posted.values())

    def pending_inbound(self) -> int:
        return sum(len(q) for q in self.inbound.values())
