"""Message matching: posted-receive and unexpected-message queues.

Matching is exact on ``(source, tag)`` with FIFO order within a key — the
collectives in this repository encode the segment index in the tag, so exact
matching reproduces MPI's non-overtaking guarantee for every pattern used
here (DESIGN.md notes this as the one simplification over full wildcard
matching).

The unexpected queue is not free: an eager message that arrives before its
receive is posted is buffered and later *copied* into the user buffer, an
extra memcpy the paper calls out as the reason ADAPT posts more recvs than
sends in flight (``M > N``, Section 2.2.1).

Reliability support (``RuntimeConfig.reliable``, DESIGN.md S17): data
messages carry per-sender sequence numbers; :meth:`Matcher.register_seq`
suppresses redeliveries — a retransmission that raced a slow original, or a
fabric-injected duplicate — so at-least-once transport yields exactly-once
matching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.mpi.request import Request

#: A wire-level matching key: ``(src, dst, tag)``. Exact matching means a
#: message and a posted recv pair up iff their keys are equal.
MatchKey = tuple[int, int, int]


def match_key(kind: str, rank: int, peer: int, tag: int) -> MatchKey:
    """The wire key ``(src, dst, tag)`` of an operation owned by ``rank``.

    A send from ``rank`` to ``peer`` and a recv on ``peer`` naming ``rank``
    produce the same key — the equality the matcher tests, factored out so
    offline tools (the schedule model checker) enumerate candidates with
    the exact same rule the runtime applies.
    """
    if kind == "send":
        return (rank, peer, tag)
    if kind == "recv":
        return (peer, rank, tag)
    raise ValueError(f"match keys exist only for send/recv, not {kind!r}")


def candidate_matches(
    sends: Iterable[tuple[int, int, int, int]],
    recvs: Iterable[tuple[int, int, int, int]],
) -> dict[MatchKey, tuple[list[int], list[int]]]:
    """Group operations by wire key: ``{key: (send_ids, recv_ids)}``.

    ``sends`` and ``recvs`` are ``(op_id, src, dst, tag)`` tuples. Every key
    seen on either side appears in the result (a key with sends but no
    recvs is how the race detector spots ambiguous in-flight messages, and
    a one-sided key at quiescence is an unmatched operation). Within a key
    the id lists preserve input order — the runtime's FIFO tiebreak.
    """
    out: dict[MatchKey, tuple[list[int], list[int]]] = {}
    for oid, src, dst, tag in sends:
        out.setdefault((src, dst, tag), ([], []))[0].append(oid)
    for oid, src, dst, tag in recvs:
        out.setdefault((src, dst, tag), ([], []))[1].append(oid)
    return out


@dataclass
class InboundMessage:
    """An arrived eager payload, or a rendezvous announcement (RTS)."""

    src: int
    tag: int
    nbytes: int
    eager: bool
    data: Any = None
    arrival_time: float = 0.0
    # Rendezvous only: opaque handle the runtime uses to send the CTS back.
    rendezvous_token: Any = None
    # Reliable transport only: per-sender delivery sequence number.
    seq: Optional[int] = None
    # End-to-end integrity (DESIGN.md S20): sender checksum of the payload,
    # and the in-flight corruption flag (models a checksum mismatch when the
    # simulation carries no real payload bytes).
    crc: Optional[int] = None
    corrupt: bool = False


@dataclass
class Matcher:
    """Per-rank matching state."""

    posted: dict[tuple[int, int], deque[Request]] = field(default_factory=dict)
    inbound: dict[tuple[int, int], deque[InboundMessage]] = field(default_factory=dict)
    unexpected_eager_count: int = 0
    # Reliable transport: per-source sets of delivered sequence numbers.
    seen_seqs: dict[int, set[int]] = field(default_factory=dict)
    duplicates_suppressed: int = 0

    def register_seq(self, src: int, seq: int) -> bool:
        """Record a delivery; returns False (and counts) for a duplicate."""
        seen = self.seen_seqs.setdefault(src, set())
        if seq in seen:
            self.duplicates_suppressed += 1
            return False
        seen.add(seq)
        return True

    def fresh_deliveries(self) -> int:
        """Distinct reliable messages delivered to this rank."""
        return sum(len(s) for s in self.seen_seqs.values())

    def cancel_recv(self, req: Request) -> bool:
        """Withdraw a posted (unmatched) receive; True if it was queued."""
        key = (req.peer, req.tag)
        queue = self.posted.get(key)
        if not queue or req not in queue:
            return False
        queue.remove(req)
        if not queue:
            del self.posted[key]
        return True

    def post_recv(self, req: Request) -> Optional[InboundMessage]:
        """Register a posted receive; returns a message if one already arrived."""
        key = (req.peer, req.tag)
        queue = self.inbound.get(key)
        if queue:
            msg = queue.popleft()
            if not queue:
                del self.inbound[key]
            return msg
        self.posted.setdefault(key, deque()).append(req)
        return None

    def arrive(self, msg: InboundMessage) -> Optional[Request]:
        """Register an arrival; returns the matching posted recv if any."""
        key = (msg.src, msg.tag)
        queue = self.posted.get(key)
        if queue:
            req = queue.popleft()
            if not queue:
                del self.posted[key]
            return req
        self.inbound.setdefault(key, deque()).append(msg)
        if msg.eager:
            self.unexpected_eager_count += 1
        return None

    def pending_candidates(self, own_rank: int) -> dict[MatchKey, tuple[int, int]]:
        """Outstanding state by wire key: ``{key: (n_inbound, n_posted)}``.

        A key with both counts nonzero can never persist (arrival or post
        would have matched); a key with ``n_inbound > 1`` means multiple
        in-flight messages are racing for whichever recv posts next.
        """
        out: dict[MatchKey, tuple[int, int]] = {}
        for (src, tag), q in self.inbound.items():
            key = (src, own_rank, tag)
            out[key] = (len(q), 0)
        for (src, tag), q in self.posted.items():
            key = (src, own_rank, tag)
            inb = out.get(key, (0, 0))[0]
            out[key] = (inb, len(q))
        return out

    def pending_posted(self) -> int:
        return sum(len(q) for q in self.posted.values())

    def pending_inbound(self) -> int:
        return sum(len(q) for q in self.inbound.values())
