"""Proclets: blocking-style MPI programs as generator coroutines.

A proclet is a Python generator running "on" a rank: it yields awaitables and
is resumed — on that rank's CPU, so noise delays the resumption — when they
complete. This is the layer the paper's baseline implementations live on:

* Algorithm 1 (blocking): ``yield isend(...)`` / ``yield irecv(...)`` after
  every post — each P2P fully completes before the next starts.
* Algorithm 2 (non-blocking + Waitall): post a batch, then
  ``yield WaitAll(reqs)`` — the synchronization whose noise behaviour
  Section 2.1.2 analyzes.

ADAPT itself (Algorithm 3) does not use proclets: it attaches callbacks
directly to requests and never waits.

Awaitables a proclet may yield:

* a :class:`~repro.mpi.request.Request` — wait for one operation,
* :class:`WaitAll` — wait for every request in a batch,
* :class:`WaitAny` — resumed with ``(index, request)`` of the first
  completion,
* :class:`Compute` — charge local computation time to the CPU,
* :class:`Sleep` — idle without occupying the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

from repro.mpi.request import Request


@dataclass(frozen=True)
class WaitAll:
    """Wait for all requests in the batch (MPI_Waitall)."""

    requests: tuple[Request, ...]

    def __init__(self, requests: Sequence[Request]):
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class WaitAny:
    """Wait for the first completion; resumes with ``(index, request)``."""

    requests: tuple[Request, ...]

    def __init__(self, requests: Sequence[Request]):
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Compute:
    """Charge ``seconds`` of computation to the rank's CPU."""

    seconds: float


@dataclass(frozen=True)
class Sleep:
    """Advance time without occupying the CPU."""

    seconds: float


class ProcletDriver:
    """Runs one generator to completion on a rank's CPU."""

    def __init__(
        self,
        runtime,
        gen: Generator,
        on_done: Optional[Callable[["ProcletDriver"], None]] = None,
    ):
        self.runtime = runtime
        self.gen = gen
        self.on_done = on_done
        self.done = False
        self.finish_time: Optional[float] = None
        self.result: Any = None
        # Kick off on the CPU (a noisy rank starts its program late).
        runtime.cpu.when_available(self._step, None)

    def _dispatch(self, awaited: Any) -> None:
        if isinstance(awaited, Request):
            awaited.add_callback(lambda req: self._step(req))
        elif isinstance(awaited, WaitAll):
            self._wait_all(awaited.requests)
        elif isinstance(awaited, WaitAny):
            self._wait_any(awaited.requests)
        elif isinstance(awaited, Compute):
            self.runtime.cpu.execute(awaited.seconds, self._step, None)
        elif isinstance(awaited, Sleep):
            self.runtime.engine.call_after(awaited.seconds, self._step, None)
        elif isinstance(awaited, (list, tuple)):
            self._wait_all(tuple(awaited))
        else:
            raise TypeError(f"proclet yielded unsupported awaitable {awaited!r}")

    def _wait_all(self, requests: tuple[Request, ...]) -> None:
        pending = [r for r in requests if not r.completed]
        if not pending:
            # Still resume via the CPU: Waitall is a call the process makes.
            self.runtime.cpu.when_available(self._step, None)
            return
        remaining = len(pending)

        def one_done(_req: Request) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._step(None)

        for r in pending:
            r.add_callback(one_done)

    def _wait_any(self, requests: tuple[Request, ...]) -> None:
        for i, r in enumerate(requests):
            if r.completed:
                self.runtime.cpu.when_available(self._step, (i, r))
                return
        fired = False

        def first_done(i: int, req: Request) -> None:
            nonlocal fired
            if fired:
                return
            fired = True
            self._step((i, req))

        for i, r in enumerate(requests):
            r.add_callback(lambda req, i=i: first_done(i, req))

    def _step(self, value: Any) -> None:
        """Resume the generator with ``value`` (runs in CPU/event context)."""
        try:
            awaited = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(awaited)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.finish_time = self.runtime.engine.now
        if self.on_done is not None:
            self.on_done(self)
