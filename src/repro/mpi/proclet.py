"""Proclets: blocking-style MPI programs as generator coroutines.

A proclet is a Python generator running "on" a rank: it yields awaitables and
is resumed — on that rank's CPU, so noise delays the resumption — when they
complete. This is the layer the paper's baseline implementations live on:

* Algorithm 1 (blocking): ``yield isend(...)`` / ``yield irecv(...)`` after
  every post — each P2P fully completes before the next starts.
* Algorithm 2 (non-blocking + Waitall): post a batch, then
  ``yield WaitAll(reqs)`` — the synchronization whose noise behaviour
  Section 2.1.2 analyzes.

ADAPT itself (Algorithm 3) does not use proclets: it attaches callbacks
directly to requests and never waits.

Awaitables a proclet may yield:

* a :class:`~repro.mpi.request.Request` — wait for one operation,
* :class:`WaitAll` — wait for every request in a batch,
* :class:`WaitAny` — resumed with ``(index, request)`` of the first
  completion,
* :class:`Compute` — charge local computation time to the CPU,
* :class:`Sleep` — idle without occupying the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

from repro.mpi.request import Request


@dataclass(frozen=True)
class WaitAll:
    """Wait for all requests in the batch (MPI_Waitall)."""

    requests: tuple[Request, ...]

    def __init__(self, requests: Sequence[Request]):
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class WaitAny:
    """Wait for the first completion; resumes with ``(index, request)``."""

    requests: tuple[Request, ...]

    def __init__(self, requests: Sequence[Request]):
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Compute:
    """Charge ``seconds`` of computation to the rank's CPU."""

    seconds: float


@dataclass(frozen=True)
class Sleep:
    """Advance time without occupying the CPU."""

    seconds: float


class ProcletDriver:
    """Runs one generator to completion on a rank's CPU.

    When a dependency recorder observes the world, the driver reports every
    wait it blocks on and resumes from, so the analyzer can attribute the
    operations posted after each resumption to the requests that gated them
    (the blocking-order and Waitall-barrier edges of paper Section 2.1) and
    detect proclets still blocked at quiescence (deadlock linting).
    """

    def __init__(
        self,
        runtime,
        gen: Generator,
        on_done: Optional[Callable[["ProcletDriver"], None]] = None,
    ):
        self.runtime = runtime
        self.gen = gen
        self.on_done = on_done
        self.done = False
        self.finish_time: Optional[float] = None
        self.result: Any = None
        # (via, gate items) of the await the next resumption returns from.
        self._gate: Optional[tuple[str, tuple]] = None
        # Begin time of the wait/sleep the proclet is currently blocked in
        # (observability: the resume closes the span). None when no span
        # recorder is attached or the proclet is not blocked.
        self._wait_begin: Optional[float] = None
        # Kick off on the CPU (a noisy rank starts its program late).
        runtime.cpu.when_available(self._step, None)

    def _observer(self):
        return getattr(getattr(self.runtime, "world", None), "observer", None)

    def _obs(self):
        return getattr(getattr(self.runtime, "world", None), "obs", None)

    @staticmethod
    def _internal(fn):
        # Resumption callbacks are driver plumbing, not user callbacks: the
        # recorder must not wrap them in a callback context of their own.
        fn._depgraph_internal = True
        return fn

    def _mark_waiting(self) -> None:
        if self._obs() is not None:
            self._wait_begin = self.runtime.engine.now

    def _dispatch(self, awaited: Any) -> None:
        obs = self._observer()
        if isinstance(awaited, Request):
            self._gate = ("wait", (awaited,))
            self._mark_waiting()
            if obs is not None:
                obs.proclet_waiting(self, self.runtime.rank, "wait", (awaited,))
            awaited.add_callback(self._internal(lambda req: self._step(req)))
        elif isinstance(awaited, WaitAll):
            self._wait_all(awaited.requests)
        elif isinstance(awaited, WaitAny):
            self._wait_any(awaited.requests)
        elif isinstance(awaited, Compute):
            if obs is not None:
                nid = obs.compute_posted(self.runtime.rank, self._gate)
                self._gate = ("compute", (nid,))
            else:
                self._gate = None
            self.runtime.cpu.execute(awaited.seconds, self._step, None)
        elif isinstance(awaited, Sleep):
            self._gate = ("sleep", ())
            self._mark_waiting()
            self.runtime.engine.call_after(awaited.seconds, self._step, None)
        elif isinstance(awaited, (list, tuple)):
            self._wait_all(tuple(awaited))
        else:
            raise TypeError(f"proclet yielded unsupported awaitable {awaited!r}")

    def _wait_all(self, requests: tuple[Request, ...]) -> None:
        self._gate = ("waitall", requests)
        self._mark_waiting()
        pending = [r for r in requests if not r.completed]
        if not pending:
            # Still resume via the CPU: Waitall is a call the process makes.
            self.runtime.cpu.when_available(self._step, None)
            return
        obs = self._observer()
        if obs is not None:
            obs.proclet_waiting(self, self.runtime.rank, "waitall", requests)
        remaining = len(pending)

        def one_done(_req: Request) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._step(None)

        self._internal(one_done)
        for r in pending:
            r.add_callback(one_done)

    def _wait_any(self, requests: tuple[Request, ...]) -> None:
        self._gate = ("waitany", requests)
        self._mark_waiting()
        for i, r in enumerate(requests):
            if r.completed:
                self.runtime.cpu.when_available(self._step, (i, r))
                return
        obs = self._observer()
        if obs is not None:
            obs.proclet_waiting(self, self.runtime.rank, "waitany", requests)
        fired = False

        def first_done(i: int, req: Request) -> None:
            nonlocal fired
            if fired:
                return
            fired = True
            self._step((i, req))

        for i, r in enumerate(requests):
            r.add_callback(self._internal(lambda req, i=i: first_done(i, req)))

    def _step(self, value: Any) -> None:
        """Resume the generator with ``value`` (runs in CPU/event context)."""
        if self._wait_begin is not None and self._gate is not None:
            span_rec = self._obs()
            if span_rec is not None:
                via = self._gate[0]
                span_rec.add(
                    "sleep" if via == "sleep" else "wait", via,
                    ("rank", self.runtime.rank),
                    self._wait_begin, self.runtime.engine.now,
                )
            self._wait_begin = None
        obs = self._observer()
        token = None
        if obs is not None:
            obs.proclet_not_waiting(self)
            if self._gate is not None:
                via, items = self._gate
                if via == "waitany" and isinstance(value, tuple):
                    items = (value[1],)
                token = obs.proclet_resume(self.runtime.rank, via, items)
        self._gate = None
        try:
            awaited = self.gen.send(value)
        except StopIteration as stop:
            if token is not None:
                obs.proclet_pop(token)
            self._finish(stop.value)
            return
        # Dispatch inside the resumption context: a yielded Compute is gated
        # by the same requests that gated this resumption.
        try:
            self._dispatch(awaited)
        finally:
            if token is not None:
                obs.proclet_pop(token)

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.finish_time = self.runtime.engine.now
        if self.on_done is not None:
            self.on_done(self)
