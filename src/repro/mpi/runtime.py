"""The simulated MPI world: per-rank runtimes over the contended fabric.

Every rank owns a :class:`~repro.sim.cpu.Cpu`; posting a send or recv,
matching an arrival, running a completion callback, and performing local
reduction arithmetic all serialize on it, each charged the machine's
per-message overhead ``o``. Noise injected into a rank's CPU therefore delays
exactly the activities a descheduled MPI process would delay — the paper's
propagation mechanism.

Protocol summary (see :mod:`repro.mpi` docstring):

* **eager** (size <= threshold): the sender's CPU posts the message and the
  send request completes locally (buffered send). If the receiver has no
  matching posted recv, the payload waits in the unexpected queue and pays an
  extra memcpy when the recv finally arrives.
* **rendezvous**: the sender's CPU emits an RTS control message; the data
  flow starts only after the receiver has a matching posted recv and its CTS
  reaches the sender. The send request completes when the data drains. This
  handshake is the synchronization through which a noisy receiver delays a
  blocking sender (Section 2.1.1).

GPU ranks (Section 4) declare a default memory space; transfers route over
the PCIe/QPI/NIC paths of :class:`~repro.network.fabric.Fabric`, and GPU
reduction work runs on simulated CUDA streams instead of the host CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.config import DEFAULT_RUNTIME, RuntimeConfig
from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology
from repro.mpi.matching import InboundMessage, Matcher
from repro.mpi.request import Request
from repro.network.fabric import Fabric, MemSpace
from repro.sim.cpu import Cpu
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder


def _copy_payload(data: Any) -> Any:
    """Buffer a payload at send time (value semantics, like MPI)."""
    if isinstance(data, np.ndarray):
        return data.copy()
    return data


class RankRuntime:
    """One rank's communication engine."""

    def __init__(self, world: "MpiWorld", rank: int):
        self.world = world
        self.rank = rank
        self.cpu = Cpu(world.engine, name=f"cpu:{rank}")
        self.matcher = Matcher()
        self.space = MemSpace.GPU if world.gpu_bound else MemSpace.HOST
        # GPU ranks: async CUDA streams for offloaded reductions/copies.
        self._gpu_streams: list[float] = []
        if world.gpu_bound:
            gpu = world.spec.node.gpu
            assert gpu is not None
            self._gpu_streams = [0.0] * gpu.streams
        # Statistics.
        self.sends_posted = 0
        self.recvs_posted = 0
        self.bytes_sent = 0
        self.reduce_seconds = 0.0

    # -- helpers ---------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        return self.world.engine

    @property
    def _o(self) -> float:
        return self.world.spec.cpu_overhead

    def _trace(self, kind: str, detail: str = "") -> None:
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_trace(self.engine.now, self.rank)
        self.world.trace.record(self.engine.now, self.rank, kind, detail)

    # -- non-blocking point-to-point -------------------------------------------

    def isend(
        self,
        dst: int,
        tag: int,
        nbytes: int,
        data: Any = None,
        space: Optional[MemSpace] = None,
        dst_space: Optional[MemSpace] = None,
    ) -> Request:
        """Post a non-blocking send. Returns its request immediately."""
        if dst == self.rank:
            raise ValueError(f"rank {self.rank}: self-send not supported; use a copy")
        req = Request(self, "send", self.rank, dst, tag, nbytes)
        if self.world.observer is not None:
            self.world.observer.op_posted(req)
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_post(req)
        self.sends_posted += 1
        self.bytes_sent += nbytes
        payload = _copy_payload(data) if self.world.carry_data else None
        src_space = space if space is not None else self.space
        to_space = dst_space if dst_space is not None else self.world.ranks[dst].space
        eager = nbytes <= self.world.config.eager_threshold
        self._trace("isend", f"-> {dst} tag={tag} {nbytes}B {'eager' if eager else 'rndv'}")
        # Posting costs CPU time; the wire action happens when the CPU gets
        # to it (noise on this rank delays its own sends).
        if eager:
            self.cpu.execute(
                self._o, self._eager_send_start, req, payload, src_space, to_space
            )
        else:
            self.cpu.execute(
                self._o, self._rndv_send_rts, req, payload, src_space, to_space
            )
        return req

    def irecv(self, src: int, tag: int, nbytes: int) -> Request:
        """Post a non-blocking receive. Returns its request immediately."""
        if src == self.rank:
            raise ValueError(f"rank {self.rank}: self-recv not supported")
        req = Request(self, "recv", self.rank, src, tag, nbytes)
        if self.world.observer is not None:
            self.world.observer.op_posted(req)
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_post(req)
        self.recvs_posted += 1
        self._trace("irecv", f"<- {src} tag={tag} {nbytes}B")
        self.cpu.execute(self._o, self._post_recv, req)
        return req

    # -- eager protocol ----------------------------------------------------------

    def _eager_send_start(
        self, req: Request, payload: Any, src_space: MemSpace, dst_space: MemSpace
    ) -> None:
        now = self.engine.now
        dst_rt = self.world.ranks[req.peer]

        def on_wire_complete(flow) -> None:
            msg = InboundMessage(
                src=req.rank,
                tag=req.tag,
                nbytes=req.nbytes,
                eager=True,
                data=payload,
                arrival_time=self.engine.now,
            )
            dst_rt._handle_arrival(msg)

        self.world.fabric.start_transfer(
            req.rank, req.peer, req.nbytes, on_wire_complete, src_space, dst_space,
            taginfo=("eager", req.rank, req.peer, req.tag),
        )
        # Buffered send: locally complete once the message is on the wire.
        req._complete(now)

    # -- rendezvous protocol -------------------------------------------------------

    def _rndv_send_rts(
        self, req: Request, payload: Any, src_space: MemSpace, dst_space: MemSpace
    ) -> None:
        dst_rt = self.world.ranks[req.peer]
        token = (req, payload, src_space, dst_space)

        def on_rts_arrival() -> None:
            msg = InboundMessage(
                src=req.rank,
                tag=req.tag,
                nbytes=req.nbytes,
                eager=False,
                arrival_time=self.engine.now,
                rendezvous_token=token,
            )
            dst_rt._handle_arrival(msg)

        # Control messages are latency-only (see Fabric.start_control).
        self.world.fabric.start_control(
            req.rank, req.peer, self.world.config.control_bytes, on_rts_arrival
        )

    def _rndv_send_cts(self, msg: InboundMessage, recv_req: Request) -> None:
        """Receiver side: matching recv exists; tell the sender to fire."""
        send_req, payload, src_space, dst_space = msg.rendezvous_token
        sender_rt = self.world.ranks[msg.src]

        def on_cts_arrival() -> None:
            # Sender CPU processes the CTS, then the data flow starts.
            sender_rt.cpu.execute(
                sender_rt._o,
                sender_rt._rndv_send_data,
                send_req,
                payload,
                src_space,
                dst_space,
                recv_req,
            )

        self.world.fabric.start_control(
            self.rank, msg.src, self.world.config.control_bytes, on_cts_arrival
        )

    def _rndv_send_data(
        self,
        send_req: Request,
        payload: Any,
        src_space: MemSpace,
        dst_space: MemSpace,
        recv_req: Request,
    ) -> None:
        dst_rt = self.world.ranks[send_req.peer]

        def on_data_complete(flow) -> None:
            # Sender may reuse its buffer: complete the send request. The
            # notification itself is CPU work on the sender.
            self.cpu.execute(0.0, self._complete_send, send_req)
            # Receiver CPU processes delivery into the posted buffer.
            dst_rt.cpu.execute(
                dst_rt._o, dst_rt._deliver, recv_req, payload
            )

        self.world.fabric.start_transfer(
            send_req.rank, send_req.peer, send_req.nbytes, on_data_complete,
            src_space, dst_space,
            taginfo=("data", send_req.rank, send_req.peer, send_req.tag),
        )

    def _complete_send(self, req: Request) -> None:
        self._trace("send-done", f"-> {req.peer} tag={req.tag} {req.nbytes}B")
        req._complete(self.engine.now)

    # -- receiver-side handlers -------------------------------------------------------

    def _post_recv(self, req: Request) -> None:
        msg = self.matcher.post_recv(req)
        if msg is None:
            return
        if msg.eager:
            # Unexpected eager message: pay the extra buffered copy.
            copy_time = msg.nbytes / self.world.spec.memcpy_bandwidth
            self._trace("unexpected", f"copy {msg.nbytes}B from {msg.src} tag={msg.tag}")
            self.cpu.execute(copy_time, self._deliver, req, msg.data)
        else:
            self._rndv_send_cts(msg, req)

    def _handle_arrival(self, msg: InboundMessage) -> None:
        """An eager payload or RTS reached this rank (wire event)."""
        self.cpu.execute(self._o, self._match_arrival, msg)

    def _match_arrival(self, msg: InboundMessage) -> None:
        req = self.matcher.arrive(msg)
        if req is None:
            if msg.eager:
                self._trace("buffered", f"eager {msg.nbytes}B from {msg.src} tag={msg.tag}")
            return
        if msg.eager:
            self._deliver(req, msg.data)
        else:
            self._rndv_send_cts(msg, req)

    def _deliver(self, req: Request, payload: Any) -> None:
        self._trace("recv-done", f"<- {req.peer} tag={req.tag} {req.nbytes}B")
        req._complete(self.engine.now, data=payload)

    # -- local compute ------------------------------------------------------------------

    def compute(self, seconds: float, fn: Optional[Callable] = None, *args) -> None:
        """Charge application compute time to this rank's CPU."""
        self.cpu.execute(seconds, fn, *args)

    def reduce_local(
        self,
        nbytes: int,
        fn: Optional[Callable] = None,
        *args,
        on_gpu: bool = False,
        tag: Optional[int] = None,
    ) -> None:
        """Charge one reduction pass over ``nbytes`` of operands.

        ``on_gpu=True`` offloads to the least-loaded simulated CUDA stream
        (Section 4.2): the rank's CPU only pays the kernel-launch overhead
        and the arithmetic overlaps with communication.

        ``tag`` identifies the segment being reduced for the dependency
        analyzer; it has no runtime effect.
        """
        if self.world.observer is not None:
            fn = self.world.observer.wrap_reduce(self.rank, nbytes, tag, fn, args)
            args = ()
        if on_gpu:
            gpu = self.world.spec.node.gpu
            if gpu is None:
                raise ValueError("reduce offload requested on a GPU-less machine")
            start = self.cpu.execute(gpu.kernel_launch)
            idx = min(range(len(self._gpu_streams)), key=self._gpu_streams.__getitem__)
            begin = max(start, self._gpu_streams[idx])
            end = begin + nbytes / gpu.reduce_bandwidth
            self._gpu_streams[idx] = end
            self.reduce_seconds += end - begin
            if fn is not None:
                self.engine.call_at(end, fn, *args)
        else:
            duration = nbytes / self.world.spec.cpu_reduce_bandwidth
            self.reduce_seconds += duration
            self.cpu.execute(duration, fn, *args)


class MpiWorld:
    """A job: ``nranks`` ranks placed on a machine, sharing one fabric."""

    def __init__(
        self,
        spec: MachineSpec,
        nranks: int,
        config: RuntimeConfig = DEFAULT_RUNTIME,
        gpu_bound: bool = False,
        carry_data: bool = False,
        trace: bool = False,
        gpudirect: bool = True,
        sanitize: bool = False,
    ):
        self.spec = spec
        self.nranks = nranks
        self.config = config
        self.gpu_bound = gpu_bound
        self.carry_data = carry_data
        self.engine = Engine()
        self.topology = Topology(spec, nranks, gpu_bound=gpu_bound)
        self.fabric = Fabric(self.engine, spec, self.topology, gpudirect=gpudirect)
        self.trace = TraceRecorder(enabled=trace)
        # Analysis hooks: a dependency-graph recorder may attach as observer
        # (repro.analysis.depgraph); sanitize=True arms runtime invariant
        # checks (repro.analysis.sanitizer). Both default off and cost one
        # attribute test per hot-path event when off.
        self.observer = None
        self.sanitizer = None
        if sanitize:
            from repro.analysis.sanitizer import Sanitizer  # deferred: avoids cycle

            self.sanitizer = Sanitizer(self)
        self.ranks = [RankRuntime(self, r) for r in range(nranks)]
        self.fabric.network.sanitizer = self.sanitizer
        self._next_tag = 0

    def allocate_tags(self, count: int) -> int:
        """Reserve a contiguous tag range (collectives namespace segments)."""
        base = self._next_tag
        self._next_tag += max(1, count)
        return base

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation until quiescence. Returns final time."""
        t = self.engine.run(until=until)
        if self.sanitizer is not None and until is None:
            self.sanitizer.check_drained()
        return t

    def inject_noise(self, rank: int, duration: float) -> None:
        """Inject one noise interval into ``rank``'s CPU, starting now."""
        self.ranks[rank].cpu.inject_noise(duration)

    def total_unexpected(self) -> int:
        return sum(rt.matcher.unexpected_eager_count for rt in self.ranks)
