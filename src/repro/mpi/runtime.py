"""The simulated MPI world: per-rank runtimes over the contended fabric.

Every rank owns a :class:`~repro.sim.cpu.Cpu`; posting a send or recv,
matching an arrival, running a completion callback, and performing local
reduction arithmetic all serialize on it, each charged the machine's
per-message overhead ``o``. Noise injected into a rank's CPU therefore delays
exactly the activities a descheduled MPI process would delay — the paper's
propagation mechanism.

Protocol summary (see :mod:`repro.mpi` docstring):

* **eager** (size <= threshold): the sender's CPU posts the message and the
  send request completes locally (buffered send). If the receiver has no
  matching posted recv, the payload waits in the unexpected queue and pays an
  extra memcpy when the recv finally arrives.
* **rendezvous**: the sender's CPU emits an RTS control message; the data
  flow starts only after the receiver has a matching posted recv and its CTS
  reaches the sender. The send request completes when the data drains. This
  handshake is the synchronization through which a noisy receiver delays a
  blocking sender (Section 2.1.1).

GPU ranks (Section 4) declare a default memory space; transfers route over
the PCIe/QPI/NIC paths of :class:`~repro.network.fabric.Fabric`, and GPU
reduction work runs on simulated CUDA streams instead of the host CPU.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional

import numpy as np

from repro.config import DEFAULT_RUNTIME, RuntimeConfig
from repro.machine.spec import MachineSpec
from repro.machine.topology import Topology
from repro.mpi.matching import InboundMessage, Matcher
from repro.mpi.request import Request
from repro.network.fabric import Fabric, MemSpace
from repro.sim.cpu import Cpu
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder


def _copy_payload(data: Any) -> Any:
    """Buffer a payload at send time (value semantics, like MPI)."""
    if isinstance(data, np.ndarray):
        return data.copy()
    return data


def _payload_crc(data: Any) -> Optional[int]:
    """Sender-side segment checksum (end-to-end integrity, DESIGN.md S20)."""
    if isinstance(data, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(data).tobytes())
    return None


def _flip_bit(data: Any, bit: int) -> Any:
    """A copy of ``data`` with one bit flipped (in-flight corruption)."""
    if not isinstance(data, np.ndarray):
        return data
    out = np.ascontiguousarray(data).copy()
    view = out.reshape(-1).view(np.uint8)
    if view.size:
        i = (bit // 8) % view.size
        view[i] ^= np.uint8(1 << (bit % 8))
    return out


class _ReliableSend:
    """Transport-level state of one reliable message (eager/RTS/rndv-data)."""

    __slots__ = (
        "seq", "req", "kind", "payload", "src_space", "dst_space",
        "recv_req", "attempt", "timer", "parked",
    )

    def __init__(self, seq, req, kind, payload, src_space, dst_space, recv_req=None):
        self.seq = seq
        self.req = req
        self.kind = kind  # "eager" | "rts" | "data"
        self.payload = payload
        self.src_space = src_space
        self.dst_space = dst_space
        self.recv_req = recv_req
        self.attempt = 0
        self.timer = None
        self.parked = False  # retry budget spent, peer merely suspected


class RankRuntime:
    """One rank's communication engine."""

    def __init__(self, world: "MpiWorld", rank: int):
        self.world = world
        self.rank = rank
        self.cpu = Cpu(world.engine, name=f"cpu:{rank}")
        if world.obs is not None:
            self.cpu.obs = world.obs
            self.cpu.obs_rank = rank
        self.matcher = Matcher()
        self.space = MemSpace.GPU if world.gpu_bound else MemSpace.HOST
        self.alive = True
        # GPU ranks: async CUDA streams for offloaded reductions/copies.
        self._gpu_streams: list[float] = []
        if world.gpu_bound:
            gpu = world.spec.node.gpu
            assert gpu is not None
            self._gpu_streams = [0.0] * gpu.streams
        # Reliable transport (config.reliable): per-message ack/retransmit.
        self._send_seq = 0
        self._reliable_pending: dict[int, _ReliableSend] = {}
        # Sends whose retry budget ran dry against a merely *suspected* peer
        # park here (keyed by peer) and probe at a slow capped-backoff
        # cadence until the peer is confirmed dead (abandon) or evidence of
        # life arrives (resume) — a partitioned peer is not a dead peer.
        self._parked: dict[int, list[_ReliableSend]] = {}
        self._peer_watch = False
        # Statistics.
        self.sends_posted = 0
        self.recvs_posted = 0
        self.bytes_sent = 0
        self.reduce_seconds = 0.0
        self.transmissions = 0       # wire attempts of reliable messages
        self.retransmits = 0
        self.acks_sent = 0
        self.nacks_sent = 0          # corrupt arrivals bounced back for retransmit
        self.checksum_rejects = 0    # deliveries refused on checksum mismatch
        self.sends_abandoned = 0     # retry budget exhausted (peer confirmed dead)
        self.sends_parked = 0        # budget exhausted but peer only suspected
        self.msgs_lost_dead = 0      # reliable messages that reached a dead rank

    # -- helpers ---------------------------------------------------------------

    @property
    def engine(self) -> Engine:
        return self.world.engine

    @property
    def _o(self) -> float:
        return self.world.spec.cpu_overhead

    def _trace(self, kind: str, detail: str = "") -> None:
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_trace(self.engine.now, self.rank)
        self.world.trace.record(self.engine.now, self.rank, kind, detail)

    def _roll_corrupt(self, dst: int, nbytes: int, tag: int) -> Optional[int]:
        """Consult the installed fault filter for an in-flight bit flip.

        Rolled at wire launch on the sender's CPU, so the rng consumption
        order — the determinism contract — depends only on the sender-side
        schedule. Returns the bit index to flip, or ``None``.
        """
        faults = self.world.fabric.faults
        if faults is None:
            return None
        roll = getattr(faults, "corrupt_roll", None)
        if roll is None:
            return None
        return roll(self.rank, dst, nbytes, tag)

    def _integrity_armed(self) -> bool:
        return self.world.fabric.faults is not None

    # -- non-blocking point-to-point -------------------------------------------

    def isend(
        self,
        dst: int,
        tag: int,
        nbytes: int,
        data: Any = None,
        space: Optional[MemSpace] = None,
        dst_space: Optional[MemSpace] = None,
    ) -> Request:
        """Post a non-blocking send. Returns its request immediately."""
        if dst == self.rank:
            raise ValueError(f"rank {self.rank}: self-send not supported; use a copy")
        req = Request(self, "send", self.rank, dst, tag, nbytes)
        if self.world.observer is not None:
            self.world.observer.op_posted(req)
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_post(req)
        self.sends_posted += 1
        self.bytes_sent += nbytes
        payload = _copy_payload(data) if self.world.carry_data else None
        src_space = space if space is not None else self.space
        to_space = dst_space if dst_space is not None else self.world.ranks[dst].space
        eager = nbytes <= self.world.config.eager_threshold
        self._trace("isend", f"-> {dst} tag={tag} {nbytes}B {'eager' if eager else 'rndv'}")
        # Posting costs CPU time; the wire action happens when the CPU gets
        # to it (noise on this rank delays its own sends).
        if eager:
            start = (
                self._reliable_eager_start
                if self.world.config.reliable
                else self._eager_send_start
            )
            self.cpu.execute(self._o, start, req, payload, src_space, to_space)
        else:
            self.cpu.execute(
                self._o, self._rndv_send_rts, req, payload, src_space, to_space
            )
        return req

    def irecv(self, src: int, tag: int, nbytes: int) -> Request:
        """Post a non-blocking receive. Returns its request immediately."""
        if src == self.rank:
            raise ValueError(f"rank {self.rank}: self-recv not supported")
        req = Request(self, "recv", self.rank, src, tag, nbytes)
        if self.world.observer is not None:
            self.world.observer.op_posted(req)
        if self.world.sanitizer is not None:
            self.world.sanitizer.on_post(req)
        self.recvs_posted += 1
        self._trace("irecv", f"<- {src} tag={tag} {nbytes}B")
        self.cpu.execute(self._o, self._post_recv, req)
        return req

    # -- eager protocol ----------------------------------------------------------

    def _eager_send_start(
        self, req: Request, payload: Any, src_space: MemSpace, dst_space: MemSpace
    ) -> None:
        now = self.engine.now
        dst_rt = self.world.ranks[req.peer]
        crc = _payload_crc(payload) if self._integrity_armed() else None
        bit = self._roll_corrupt(req.peer, req.nbytes, req.tag)
        wire_payload = payload if bit is None else _flip_bit(payload, bit)

        def on_wire_complete(flow) -> None:
            msg = InboundMessage(
                src=req.rank,
                tag=req.tag,
                nbytes=req.nbytes,
                eager=True,
                data=wire_payload,
                arrival_time=self.engine.now,
                crc=crc,
                corrupt=bit is not None,
            )
            dst_rt._handle_arrival(msg)

        self.world.fabric.start_transfer(
            req.rank, req.peer, req.nbytes, on_wire_complete, src_space, dst_space,
            taginfo=("eager", req.rank, req.peer, req.tag),
        )
        # Buffered send: locally complete once the message is on the wire.
        req._complete(now)

    # -- rendezvous protocol -------------------------------------------------------

    def _rndv_send_rts(
        self, req: Request, payload: Any, src_space: MemSpace, dst_space: MemSpace
    ) -> None:
        if self.world.config.reliable:
            state = self._new_reliable(req, "rts", payload, src_space, dst_space)
            self._transmit(state)
            return
        dst_rt = self.world.ranks[req.peer]
        token = (req, payload, src_space, dst_space)

        def on_rts_arrival() -> None:
            msg = InboundMessage(
                src=req.rank,
                tag=req.tag,
                nbytes=req.nbytes,
                eager=False,
                arrival_time=self.engine.now,
                rendezvous_token=token,
            )
            dst_rt._handle_arrival(msg)

        # Control messages are latency-only (see Fabric.start_control).
        self.world.fabric.start_control(
            req.rank, req.peer, self.world.config.control_bytes, on_rts_arrival
        )

    def _rndv_send_cts(self, msg: InboundMessage, recv_req: Request) -> None:
        """Receiver side: matching recv exists; tell the sender to fire."""
        send_req, payload, src_space, dst_space = msg.rendezvous_token
        sender_rt = self.world.ranks[msg.src]

        def on_cts_arrival() -> None:
            # Sender CPU processes the CTS, then the data flow starts.
            sender_rt.cpu.execute(
                sender_rt._o,
                sender_rt._rndv_send_data,
                send_req,
                payload,
                src_space,
                dst_space,
                recv_req,
            )

        self.world.fabric.start_control(
            self.rank, msg.src, self.world.config.control_bytes, on_cts_arrival
        )

    def _rndv_send_data(
        self,
        send_req: Request,
        payload: Any,
        src_space: MemSpace,
        dst_space: MemSpace,
        recv_req: Request,
    ) -> None:
        if self.world.config.reliable:
            state = self._new_reliable(
                send_req, "data", payload, src_space, dst_space, recv_req
            )
            self._transmit(state)
            return
        dst_rt = self.world.ranks[send_req.peer]
        crc = _payload_crc(payload) if self._integrity_armed() else None
        bit = self._roll_corrupt(send_req.peer, send_req.nbytes, send_req.tag)
        wire_payload = payload if bit is None else _flip_bit(payload, bit)
        corrupt = bit is not None

        def on_data_complete(flow) -> None:
            # Sender may reuse its buffer: complete the send request. The
            # notification itself is CPU work on the sender.
            self.cpu.execute(0.0, self._complete_send, send_req)
            # Receiver CPU processes delivery into the posted buffer.
            dst_rt.cpu.execute(
                dst_rt._o, dst_rt._deliver_checked, recv_req, wire_payload,
                corrupt, crc,
            )

        self.world.fabric.start_transfer(
            send_req.rank, send_req.peer, send_req.nbytes, on_data_complete,
            src_space, dst_space,
            taginfo=("data", send_req.rank, send_req.peer, send_req.tag),
        )

    def _complete_send(self, req: Request) -> None:
        self._trace("send-done", f"-> {req.peer} tag={req.tag} {req.nbytes}B")
        req._complete(self.engine.now)

    # -- reliable transport (config.reliable) ------------------------------------
    #
    # At-least-once delivery over a lossy data plane: every eager payload,
    # RTS, and rendezvous data message carries a per-sender sequence number;
    # the receiver acks each arrival (including duplicates) over the reliable
    # control channel and the matcher suppresses redeliveries, so the MPI
    # layer sees exactly-once semantics. A sender whose retry budget runs dry
    # presumes the peer dead: it reports the peer to the failure detector and
    # cancels the request.

    def _reliable_eager_start(
        self, req: Request, payload: Any, src_space: MemSpace, dst_space: MemSpace
    ) -> None:
        state = self._new_reliable(req, "eager", payload, src_space, dst_space)
        self._transmit(state)
        # Still a buffered send: local completion, delivery guaranteed by
        # the transport underneath (or the peer declared failed).
        req._complete(self.engine.now)

    def _new_reliable(
        self,
        req: Request,
        kind: str,
        payload: Any,
        src_space: MemSpace,
        dst_space: MemSpace,
        recv_req: Optional[Request] = None,
    ) -> _ReliableSend:
        self._send_seq += 1
        state = _ReliableSend(
            self._send_seq, req, kind, payload, src_space, dst_space, recv_req
        )
        self._reliable_pending[state.seq] = state
        return state

    def _transmit(self, state: _ReliableSend) -> None:
        state.attempt += 1
        self.transmissions += 1
        if state.attempt > 1:
            self.retransmits += 1
            self._trace(
                "retransmit",
                f"-> {state.req.peer} tag={state.req.tag} seq={state.seq} "
                f"attempt={state.attempt} ({state.kind})",
            )
        req = state.req
        dst_rt = self.world.ranks[req.peer]
        if state.kind == "rts":
            token = (req, state.payload, state.src_space, state.dst_space)

            def on_rts_arrival() -> None:
                msg = InboundMessage(
                    src=req.rank, tag=req.tag, nbytes=req.nbytes, eager=False,
                    arrival_time=self.engine.now, rendezvous_token=token,
                    seq=state.seq,
                )
                dst_rt._handle_arrival(msg)

            # RTS rides the reliable control channel; the ack/retry loop here
            # detects a dead receiver, not message loss. The taginfo marks it
            # as a counted transmission for severed-message accounting.
            self.world.fabric.start_control(
                req.rank, req.peer, self.world.config.control_bytes,
                on_rts_arrival, taginfo=("rts", req.rank, req.peer, req.tag),
            )
            wire_bytes = self.world.config.control_bytes
        elif state.kind == "eager":
            crc = _payload_crc(state.payload) if self._integrity_armed() else None
            bit = self._roll_corrupt(req.peer, req.nbytes, req.tag)
            wire_payload = (
                state.payload if bit is None else _flip_bit(state.payload, bit)
            )
            corrupt = bit is not None

            def on_eager_wire(flow) -> None:
                msg = InboundMessage(
                    src=req.rank, tag=req.tag, nbytes=req.nbytes, eager=True,
                    data=wire_payload, arrival_time=self.engine.now,
                    seq=state.seq, crc=crc, corrupt=corrupt,
                )
                dst_rt._handle_arrival(msg)

            self.world.fabric.start_transfer(
                req.rank, req.peer, req.nbytes, on_eager_wire,
                state.src_space, state.dst_space,
                taginfo=("eager", req.rank, req.peer, req.tag),
            )
            wire_bytes = req.nbytes
        else:  # "data"
            crc = _payload_crc(state.payload) if self._integrity_armed() else None
            bit = self._roll_corrupt(req.peer, req.nbytes, req.tag)
            wire_payload = (
                state.payload if bit is None else _flip_bit(state.payload, bit)
            )
            corrupt = bit is not None

            def on_data_wire(flow) -> None:
                dst_rt._rndv_data_wire(
                    req.rank, state.seq, state.recv_req, wire_payload,
                    corrupt, crc,
                )

            self.world.fabric.start_transfer(
                req.rank, req.peer, req.nbytes, on_data_wire,
                state.src_space, state.dst_space,
                taginfo=("data", req.rank, req.peer, req.tag),
            )
            wire_bytes = req.nbytes
        state.timer = self.engine.call_after(
            self._retry_delay(state, wire_bytes), self._on_ack_timeout, state
        )

    def _retry_delay(self, state: _ReliableSend, wire_bytes: int) -> float:
        """Retransmission timeout: RTO plus headroom for the transfer itself.

        The 4x uncontended-transfer-time term keeps large segments on a
        congested fabric from triggering spurious retransmissions; the
        exponential backoff dominates once real loss is in play. Backoff is
        capped at the retry limit so a *parked* send (budget spent, peer
        suspected-not-confirmed) probes at a bounded cadence instead of
        backing off forever.
        """
        cfg = self.world.config
        route = self.world.fabric.route(
            self.rank, state.req.peer, state.src_space, state.dst_space
        )
        base = cfg.ack_timeout + 4.0 * route.uncontended_time(wire_bytes)
        exponent = min(state.attempt, cfg.retry_limit) - 1
        return base * (cfg.retry_backoff ** exponent)

    def _on_ack_timeout(self, state: _ReliableSend) -> None:
        if state.seq not in self._reliable_pending:
            return  # acked while the timer was in flight
        if state.attempt >= self.world.config.retry_limit:
            peer = state.req.peer
            detector = self.world.failure_detector
            if detector is not None and peer not in detector.failed:
                # The peer is suspected, not confirmed: a partitioned or
                # stalled process looks exactly like a dead one from here.
                # Raise the suspicion (routed through the detector's delayed
                # confirm path) and park — keep probing at the capped-backoff
                # cadence until the detector either confirms the death
                # (abandon, via _on_peer_failed) or retracts it / the probe
                # lands (resume).
                if not state.parked:
                    state.parked = True
                    self.sends_parked += 1
                    self._parked.setdefault(peer, []).append(state)
                    self._trace(
                        "send-park",
                        f"-> {peer} tag={state.req.tag} seq={state.seq} "
                        f"after {state.attempt} attempts",
                    )
                    self._watch_peers()
                detector.suspect(
                    peer,
                    reason=f"rank {self.rank}: no ack after {state.attempt} attempts",
                )
                self._transmit(state)
                return
            self._abandon(state)
            return
        self._transmit(state)

    def _abandon(self, state: _ReliableSend) -> None:
        """Give up on a reliable send: the peer is confirmed (or presumed,
        absent any detector) dead."""
        if state.seq not in self._reliable_pending:
            return
        del self._reliable_pending[state.seq]
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        self.sends_abandoned += 1
        self._trace(
            "send-abandon",
            f"-> {state.req.peer} tag={state.req.tag} seq={state.seq} "
            f"after {state.attempt} attempts",
        )
        state.req.cancel()

    def _watch_peers(self) -> None:
        """Lazily subscribe to failure/retraction transitions (once)."""
        if self._peer_watch:
            return
        self._peer_watch = True
        self.world.subscribe_failures(
            self._on_peer_failed, alive_fn=self._on_peer_alive
        )

    def _on_peer_failed(self, peer: int) -> None:
        if not self.alive:
            return
        for state in self._parked.pop(peer, []):
            self._abandon(state)

    def _on_peer_alive(self, peer: int) -> None:
        """A suspected/failed peer acked again: resume parked sends now."""
        if not self.alive:
            return
        for state in self._parked.pop(peer, []):
            if state.seq not in self._reliable_pending:
                continue
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            state.parked = False
            self._transmit(state)

    def _send_ack(self, dst: int, seq: int) -> None:
        """Receiver side: confirm delivery of ``seq`` back to the sender."""
        self.acks_sent += 1
        sender_rt = self.world.ranks[dst]
        self.world.fabric.start_control(
            self.rank, dst, self.world.config.control_bytes,
            lambda: sender_rt._on_ack_wire(seq),
        )

    def _send_nack(self, dst: int, seq: int) -> None:
        """Receiver side: the payload arrived but failed its checksum.

        The NACK asks for an immediate retransmit instead of waiting out the
        sender's retry timer — corruption is detected, not silent, so the
        round trip is the only cost.
        """
        self.nacks_sent += 1
        sender_rt = self.world.ranks[dst]
        self.world.fabric.start_control(
            self.rank, dst, self.world.config.control_bytes,
            lambda: sender_rt._on_nack_wire(seq),
        )

    def _on_nack_wire(self, seq: int) -> None:
        if not self.alive:
            return
        self.cpu.execute(self._o, self._process_nack, seq)

    def _process_nack(self, seq: int) -> None:
        state = self._reliable_pending.get(seq)
        if state is None:
            return  # already acked (stale nack) or abandoned
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        self._transmit(state)

    def _on_ack_wire(self, seq: int) -> None:
        if not self.alive:
            return
        self.cpu.execute(self._o, self._process_ack, seq)

    def _process_ack(self, seq: int) -> None:
        state = self._reliable_pending.pop(seq, None)
        if state is None:
            return  # duplicate ack, or the send was already abandoned
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        detector = self.world.failure_detector
        if detector is not None:
            # An ack is liveness evidence: it retracts a standing suspicion
            # of the peer (the ISSUE's "a suspected rank that acks again").
            detector.observe_alive(state.req.peer)
        if state.kind == "data":
            # Rendezvous data: the sender's buffer is free only once the
            # receiver confirmed delivery.
            self._complete_send(state.req)

    def _rndv_data_wire(
        self,
        src: int,
        seq: int,
        recv_req: Request,
        payload: Any,
        corrupt: bool = False,
        crc: Optional[int] = None,
    ) -> None:
        """Reliable rendezvous data reached this rank (wire event)."""
        if not self.alive:
            self.msgs_lost_dead += 1
            return
        self.cpu.execute(
            self._o, self._rndv_data_arrived, src, seq, recv_req, payload,
            corrupt, crc,
        )

    def _rndv_data_arrived(
        self,
        src: int,
        seq: int,
        recv_req: Request,
        payload: Any,
        corrupt: bool = False,
        crc: Optional[int] = None,
    ) -> None:
        if self._checksum_failed(payload, corrupt, crc, src, recv_req.tag):
            # No ack, no register_seq: the sequence number stays undelivered
            # so the intact retransmit (NACK-triggered) is still fresh.
            self._send_nack(src, seq)
            return
        detector = self.world.failure_detector
        if detector is not None:
            detector.observe_alive(src)
        fresh = self.matcher.register_seq(src, seq)
        self._send_ack(src, seq)
        if not fresh:
            self._trace("dup-suppressed", f"<- {src} data seq={seq}")
            return
        self._deliver(recv_req, payload)

    # -- receiver-side handlers -------------------------------------------------------

    def _post_recv(self, req: Request) -> None:
        if req.completed:
            return  # cancelled before the CPU got to the posting
        msg = self.matcher.post_recv(req)
        if msg is None:
            return
        if msg.eager:
            # Unexpected eager message: pay the extra buffered copy.
            copy_time = msg.nbytes / self.world.spec.memcpy_bandwidth
            self._trace("unexpected", f"copy {msg.nbytes}B from {msg.src} tag={msg.tag}")
            self.cpu.execute(copy_time, self._deliver, req, msg.data)
        else:
            self._rndv_send_cts(msg, req)

    def _handle_arrival(self, msg: InboundMessage) -> None:
        """An eager payload or RTS reached this rank (wire event)."""
        if not self.alive:
            if msg.seq is not None:
                self.msgs_lost_dead += 1
            return
        self.cpu.execute(self._o, self._match_arrival, msg)

    def _match_arrival(self, msg: InboundMessage) -> None:
        if msg.eager and self._checksum_failed(
            msg.data, msg.corrupt, msg.crc, msg.src, msg.tag
        ):
            # Verified before matching so a corrupt payload never enters the
            # unexpected queue. Reliable: NACK for an immediate retransmit
            # (the seq was never registered, so the clean copy is fresh).
            # Raw transport: integrity failure degenerates to a drop.
            if msg.seq is not None:
                self._send_nack(msg.src, msg.seq)
            return
        if msg.seq is not None:
            # Reliable transport: ack every arrival (the sender's copy of a
            # duplicated or retransmitted message still needs silencing),
            # deliver each sequence number at most once.
            detector = self.world.failure_detector
            if detector is not None:
                detector.observe_alive(msg.src)
            fresh = self.matcher.register_seq(msg.src, msg.seq)
            self._send_ack(msg.src, msg.seq)
            if not fresh:
                self._trace(
                    "dup-suppressed", f"<- {msg.src} tag={msg.tag} seq={msg.seq}"
                )
                return
        req = self.matcher.arrive(msg)
        if req is None:
            if msg.eager:
                self._trace("buffered", f"eager {msg.nbytes}B from {msg.src} tag={msg.tag}")
            return
        if msg.eager:
            self._deliver(req, msg.data)
        else:
            self._rndv_send_cts(msg, req)

    def _checksum_failed(
        self, payload: Any, corrupt: bool, crc: Optional[int],
        src: int, tag: int,
    ) -> bool:
        """Verify one arrival's end-to-end integrity; count+trace a failure."""
        bad = corrupt or (
            crc is not None
            and payload is not None
            and _payload_crc(payload) != crc
        )
        if bad:
            self.checksum_rejects += 1
            self._trace("crc-reject", f"<- {src} tag={tag}")
        return bad

    def _deliver_checked(
        self, req: Request, payload: Any, corrupt: bool, crc: Optional[int]
    ) -> None:
        """Raw-transport rendezvous delivery with integrity verification."""
        if self._checksum_failed(payload, corrupt, crc, req.peer, req.tag):
            return  # unreliable path: a failed checksum is a drop
        self._deliver(req, payload)

    def _deliver(self, req: Request, payload: Any) -> None:
        if req.completed:
            # A late redelivery of a cancelled (or raced) receive: drop it.
            self._trace("stale-deliver", f"<- {req.peer} tag={req.tag}")
            return
        self._trace("recv-done", f"<- {req.peer} tag={req.tag} {req.nbytes}B")
        req._complete(self.engine.now, data=payload)

    def cancel_recv(self, req: Request) -> bool:
        """Withdraw a posted receive (fault recovery). True if cancelled.

        Works whether the posting is still queued on the CPU (``_post_recv``
        then skips it) or already in the matcher (removed from the posted
        queue). A receive already matched to an in-flight rendezvous has
        completed or will strand on its own; it cannot be withdrawn.
        """
        if req.completed:
            return False
        self.matcher.cancel_recv(req)
        req.cancel()
        return True

    # -- local compute ------------------------------------------------------------------

    def compute(self, seconds: float, fn: Optional[Callable] = None, *args) -> None:
        """Charge application compute time to this rank's CPU."""
        self.cpu.execute(seconds, fn, *args)

    def reduce_local(
        self,
        nbytes: int,
        fn: Optional[Callable] = None,
        *args,
        on_gpu: bool = False,
        tag: Optional[int] = None,
    ) -> None:
        """Charge one reduction pass over ``nbytes`` of operands.

        ``on_gpu=True`` offloads to the least-loaded simulated CUDA stream
        (Section 4.2): the rank's CPU only pays the kernel-launch overhead
        and the arithmetic overlaps with communication.

        ``tag`` identifies the segment being reduced for the dependency
        analyzer; it has no runtime effect.
        """
        if self.world.observer is not None:
            fn = self.world.observer.wrap_reduce(self.rank, nbytes, tag, fn, args)
            args = ()
        if on_gpu:
            gpu = self.world.spec.node.gpu
            if gpu is None:
                raise ValueError("reduce offload requested on a GPU-less machine")
            start = self.cpu.execute(gpu.kernel_launch)
            idx = min(range(len(self._gpu_streams)), key=self._gpu_streams.__getitem__)
            begin = max(start, self._gpu_streams[idx])
            end = begin + nbytes / gpu.reduce_bandwidth
            self._gpu_streams[idx] = end
            self.reduce_seconds += end - begin
            if fn is not None:
                self.engine.call_at(end, fn, *args)
        else:
            duration = nbytes / self.world.spec.cpu_reduce_bandwidth
            self.reduce_seconds += duration
            self.cpu.execute(duration, fn, *args)


class MpiWorld:
    """A job: ``nranks`` ranks placed on a machine, sharing one fabric."""

    def __init__(
        self,
        spec: MachineSpec,
        nranks: int,
        config: RuntimeConfig = DEFAULT_RUNTIME,
        gpu_bound: bool = False,
        carry_data: bool = False,
        trace: bool = False,
        gpudirect: bool = True,
        sanitize: bool = False,
        observe: bool = False,
    ):
        # A spec out of the topology compiler (repro.topo) carries its
        # compiled model: routing swaps to the compiled link list, and
        # GPU-native families (rail pods) force GPU binding.
        compiled = getattr(spec, "compiled", None)
        if compiled is not None:
            gpu_bound = gpu_bound or compiled.gpu_bound
        self.spec = spec
        self.nranks = nranks
        self.config = config
        self.gpu_bound = gpu_bound
        self.carry_data = carry_data
        self.engine = Engine()
        self.topology = Topology(spec, nranks, gpu_bound=gpu_bound)
        if compiled is not None:
            from repro.network.topofabric import TopoFabric  # deferred: avoids cycle

            self.fabric: Fabric = TopoFabric(
                self.engine, spec, self.topology, compiled, gpudirect=gpudirect
            )
        else:
            self.fabric = Fabric(self.engine, spec, self.topology, gpudirect=gpudirect)
        self.trace = TraceRecorder(enabled=trace)
        # Analysis hooks: a dependency-graph recorder may attach as observer
        # (repro.analysis.depgraph); sanitize=True arms runtime invariant
        # checks (repro.analysis.sanitizer). Both default off and cost one
        # attribute test per hot-path event when off.
        self.observer = None
        self.sanitizer = None
        if sanitize:
            from repro.analysis.sanitizer import Sanitizer  # deferred: avoids cycle

            self.sanitizer = Sanitizer(self)
        # Observability (repro.obs): observe=True attaches a span/counter
        # recorder as world.obs; rank CPUs and the fair-share network get a
        # direct reference so their hot paths pay one pointer test when off.
        self.obs = None
        if observe:
            from repro.obs.spans import ObsRecorder  # deferred: avoids cycle

            self.obs = ObsRecorder()
        self.ranks = [RankRuntime(self, r) for r in range(nranks)]
        self.fabric.network.sanitizer = self.sanitizer
        self.fabric.network.obs = self.obs
        # Fault tolerance: a repro.faults.FailureDetector may attach here;
        # fail-stopped ranks accumulate in failed_ranks (see kill_rank).
        # Subscriptions made before a detector exists are buffered and
        # adopted by the detector at construction, so collectives may launch
        # before or after the fault injector is armed.
        self.failure_detector = None
        self._failure_subscribers: list = []
        self.failed_ranks: set[int] = set()
        # Live recovery (repro.recovery): a MembershipService attaches here
        # when ULFM-style agreement/shrink is requested.
        self.membership: Any = None
        self._next_tag = 0

    def subscribe_failures(self, fn, cpu=None, alive_fn=None) -> None:
        """Register a failure callback, detector present or not (yet).

        ``alive_fn`` (optional) hears retractions — a suspected or even
        declared-failed rank that produced liveness evidence again. It may
        fire without a preceding ``fn`` call and must be idempotent.
        """
        if self.failure_detector is not None:
            self.failure_detector.subscribe(fn, cpu=cpu, alive_fn=alive_fn)
        else:
            self._failure_subscribers.append((fn, cpu, alive_fn))

    def allocate_tags(self, count: int) -> int:
        """Reserve a contiguous tag range (collectives namespace segments)."""
        base = self._next_tag
        self._next_tag += max(1, count)
        return base

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation until quiescence. Returns final time."""
        t = self.engine.run(until=until)
        if self.sanitizer is not None and until is None:
            self.sanitizer.check_drained()
        return t

    def inject_noise(self, rank: int, duration: float) -> None:
        """Inject one noise interval into ``rank``'s CPU, starting now."""
        self.ranks[rank].cpu.inject_noise(duration)

    def kill_rank(self, rank: int) -> None:
        """Fail-stop ``rank``: its CPU halts, pending work is dropped.

        Messages already on the wire still drain (the network does not know
        the process died) but are discarded on arrival. Detection reaches the
        survivors only through the failure detector's delay, or a reliable
        sender's exhausted retry budget — never instantly.
        """
        rt = self.ranks[rank]
        if not rt.alive:
            return
        rt._trace("killed", "fail-stop")
        rt.alive = False
        rt.cpu.halt()
        self.failed_ranks.add(rank)
        # The crashed process's in-flight sends will never be acked by
        # anyone on its behalf; its own pending transport state dies with it.
        for state in rt._reliable_pending.values():
            if state.timer is not None:
                state.timer.cancel()
            state.req.cancel()
        rt._reliable_pending.clear()
        rt._parked.clear()

    def transport_stats(self) -> dict[str, int]:
        """Aggregate reliable-transport counters across ranks."""
        return {
            "transmissions": sum(rt.transmissions for rt in self.ranks),
            "retransmits": sum(rt.retransmits for rt in self.ranks),
            "acks_sent": sum(rt.acks_sent for rt in self.ranks),
            "nacks_sent": sum(rt.nacks_sent for rt in self.ranks),
            "checksum_rejects": sum(rt.checksum_rejects for rt in self.ranks),
            "sends_abandoned": sum(rt.sends_abandoned for rt in self.ranks),
            "sends_parked": sum(rt.sends_parked for rt in self.ranks),
            "msgs_lost_dead": sum(rt.msgs_lost_dead for rt in self.ranks),
            "duplicates_suppressed": sum(
                rt.matcher.duplicates_suppressed for rt in self.ranks
            ),
            "fresh_deliveries": sum(
                rt.matcher.fresh_deliveries() for rt in self.ranks
            ),
        }

    def total_unexpected(self) -> int:
        return sum(rt.matcher.unexpected_eager_count for rt in self.ranks)
