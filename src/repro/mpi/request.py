"""Requests: handles to in-flight non-blocking operations.

A :class:`Request` completes exactly once; completion callbacks added with
:meth:`Request.add_callback` run on the owning rank's CPU — this is the hook
ADAPT's ``set_Isend_cb`` / ``set_Irecv_cb`` (paper Figure 4) attach to, and
also what the proclet layer's ``Wait``/``Waitall`` suspend on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Request:
    """Handle to one non-blocking send or recv."""

    __slots__ = (
        "kind",
        "rank",
        "peer",
        "tag",
        "nbytes",
        "completed",
        "cancelled",
        "completion_time",
        "post_time",
        "data",
        "_callbacks",
        "_runtime",
    )

    def __init__(self, runtime, kind: str, rank: int, peer: int, tag: int, nbytes: int):
        self.kind = kind        # "send" | "recv"
        self.rank = rank        # owning rank
        self.peer = peer        # other side
        self.tag = tag
        self.nbytes = nbytes
        self.completed = False
        self.cancelled = False
        self.completion_time: Optional[float] = None
        self.post_time: float = runtime.engine.now if runtime is not None else 0.0
        self.data: Any = None   # payload, set on recv completion in data mode
        self._callbacks: list[Callable[["Request"], None]] = []
        self._runtime = runtime

    def add_callback(self, fn: Callable[["Request"], None]) -> None:
        """Run ``fn(request)`` on the owning rank's CPU at completion.

        If the request already completed, the callback is scheduled
        immediately (still via the CPU, so noise delays it).
        """
        if self.completed:
            self._dispatch_callback(fn)
        else:
            self._callbacks.append(fn)

    def _dispatch_callback(self, fn: Callable[["Request"], None]) -> None:
        """Schedule one completion callback on the owning rank's CPU.

        When a dependency recorder observes the world, user callbacks run
        inside a recorded context so operations they post are attributed to
        this request; proclet-internal resumption callbacks are marked
        ``_depgraph_internal`` and stay on the plain path (the proclet
        driver records its own wait context).
        """
        observer = getattr(getattr(self._runtime, "world", None), "observer", None)
        if observer is not None and not getattr(fn, "_depgraph_internal", False):
            self._runtime.cpu.when_available(observer.run_callback, self, fn)
        else:
            self._runtime.cpu.when_available(fn, self)

    def _complete(self, now: float, data: Any = None) -> None:
        """Mark complete and dispatch callbacks (runtime-internal)."""
        if self.completed:
            raise RuntimeError(f"request completed twice: {self!r}")
        self.completed = True
        self.completion_time = now
        if data is not None:
            self.data = data
        world = getattr(self._runtime, "world", None)
        if world is not None:
            if world.observer is not None:
                world.observer.op_completed(self)
            if world.sanitizer is not None:
                world.sanitizer.on_complete(self)
            if world.obs is not None:
                arrow = "->" if self.kind == "send" else "<-"
                world.obs.add(
                    self.kind, f"{self.kind} {arrow} {self.peer}",
                    ("rank", self.rank), self.post_time, now,
                    {"tag": self.tag, "nbytes": self.nbytes, "peer": self.peer},
                )
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._dispatch_callback(fn)

    def cancel(self) -> None:
        """Abandon an in-flight operation (fault tolerance, MPI_Cancel-like).

        The request resolves without having happened: completion callbacks
        are dropped — they must not mistake a cancellation for a delivery —
        and the sanitizer is told the request is accounted for. Idempotent;
        a no-op on an already-completed request.
        """
        if self.completed:
            return
        self.completed = True
        self.cancelled = True
        self._callbacks = []
        world = getattr(self._runtime, "world", None)
        if world is not None:
            self.completion_time = world.engine.now
            observer = world.observer
            if observer is not None:
                # The recorder tracks requests by identity; without this
                # notification a cancelled request's node stays forever
                # "incomplete" and the linter misreads it as leaked.
                cancelled = getattr(observer, "op_cancelled", None)
                if cancelled is not None:
                    cancelled(self)
            if world.sanitizer is not None:
                world.sanitizer.on_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("done" if self.completed else "pending")
        return (
            f"<Request {self.kind} rank={self.rank} peer={self.peer} "
            f"tag={self.tag} {self.nbytes}B {state}>"
        )
