"""Predefined MPI reduction operations.

Each op carries the actual numpy combine function — used when a simulation
carries real payloads so tests can assert bit-correct reduce results — and
is associative/commutative, matching the predefined MPI ops the paper's
CUDA kernels implement (Section 4.2 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """One reduction operator."""

    name: str
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a, b):
        """Combine two operands (arrays or scalars) elementwise."""
        return self.combine(a, b)


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum)
MIN = ReduceOp("min", np.minimum)

ALL_OPS = (SUM, PROD, MAX, MIN)
