"""Simulated MPI runtime.

The stand-in for Open MPI's communication engine (DESIGN.md S5). Exposes, per
rank, non-blocking point-to-point operations with **completion callbacks** —
the low-level hook the real ADAPT attaches ``Isend_cb``/``Irecv_cb`` to — and,
on top of those, a generator-coroutine layer (:mod:`repro.mpi.proclet`) with
blocking ``Send``/``Recv``/``Wait``/``Waitall`` semantics used to implement
the paper's baseline collectives (its Algorithms 1 and 2).

Protocols: messages at or below the eager threshold are buffered eagerly
(unexpected arrivals pay an extra copy — Section 2.2.1's motivation for
``M > N``); larger messages use a rendezvous handshake (RTS/CTS), which is
how a delayed receiver stalls a blocking sender (Section 2.1.1).
"""

from repro.mpi.datatypes import DataType, BYTE, FLOAT32, FLOAT64, INT32, INT64
from repro.mpi.ops import ReduceOp, SUM, MAX, MIN, PROD
from repro.mpi.request import Request
from repro.mpi.runtime import MpiWorld, RankRuntime
from repro.mpi.communicator import Communicator
from repro.mpi.proclet import (
    Compute,
    ProcletDriver,
    Sleep,
    WaitAll,
    WaitAny,
)

__all__ = [
    "DataType",
    "BYTE",
    "FLOAT32",
    "FLOAT64",
    "INT32",
    "INT64",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Request",
    "MpiWorld",
    "RankRuntime",
    "Communicator",
    "Compute",
    "Sleep",
    "WaitAll",
    "WaitAny",
    "ProcletDriver",
]
