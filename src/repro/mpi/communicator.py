"""Communicators: ordered rank groups over an :class:`~repro.mpi.runtime.MpiWorld`.

A communicator maps local ranks (0..size-1) to world ranks. The hierarchical
multi-communicator collectives of Section 3.1 (the approach ADAPT's single
topology-aware tree replaces) split the world communicator into per-node /
per-socket sub-communicators plus a leader communicator, exactly as
MVAPICH-style implementations do.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.spec import CommLevel
from repro.mpi.runtime import MpiWorld, RankRuntime


class Communicator:
    """An ordered group of world ranks."""

    def __init__(self, world: MpiWorld, ranks: Sequence[int] | None = None):
        self.world = world
        self.ranks: tuple[int, ...] = (
            tuple(range(world.nranks)) if ranks is None else tuple(ranks)
        )
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("duplicate ranks in communicator")
        self._local_of = {w: i for i, w in enumerate(self.ranks)}

    @property
    def size(self) -> int:
        return len(self.ranks)

    def world_rank(self, local: int) -> int:
        return self.ranks[local]

    def local_rank(self, world_rank: int) -> int:
        return self._local_of[world_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._local_of

    def runtime(self, local: int) -> RankRuntime:
        return self.world.ranks[self.ranks[local]]

    # -- topology-driven splits (Section 3.1 baseline) -------------------------

    def split_by_level(self, level: CommLevel) -> dict[tuple, "Communicator"]:
        """Partition into sub-communicators of ranks sharing a ``level`` group."""
        groups: dict[tuple, list[int]] = {}
        topo = self.world.topology
        for w in self.ranks:
            groups.setdefault(topo.group_key(w, level), []).append(w)
        return {key: Communicator(self.world, ranks) for key, ranks in groups.items()}

    def leaders_comm(self, level: CommLevel) -> "Communicator":
        """Communicator of the first rank of each ``level`` group."""
        seen: dict[tuple, int] = {}
        topo = self.world.topology
        for w in self.ranks:
            key = topo.group_key(w, level)
            if key not in seen:
                seen[key] = w
        return Communicator(self.world, sorted(seen.values()))
