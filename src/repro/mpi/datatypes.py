"""MPI datatypes (sizes + numpy dtype mapping)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DataType:
    """An MPI elementary datatype."""

    name: str
    size: int          # bytes per element
    np_dtype: np.dtype

    def count_for(self, nbytes: int) -> int:
        """Element count in a buffer of ``nbytes`` (must divide evenly)."""
        if nbytes % self.size:
            raise ValueError(f"{nbytes} bytes is not a whole number of {self.name}")
        return nbytes // self.size


BYTE = DataType("byte", 1, np.dtype(np.uint8))
INT32 = DataType("int32", 4, np.dtype(np.int32))
INT64 = DataType("int64", 8, np.dtype(np.int64))
FLOAT32 = DataType("float32", 4, np.dtype(np.float32))
FLOAT64 = DataType("float64", 8, np.dtype(np.float64))
