"""Staleness-tolerant data-parallel SGD (DESIGN.md S25's consumer).

The relaxed collectives exist to serve algorithms that *tolerate* partial
participation; synchronous data-parallel SGD with gradient averaging is the
canonical one (SSP-style bounded staleness). Each epoch every rank computes
a gradient for ``compute_per_epoch`` seconds, then the gradients are
averaged with an allreduce — exact ADAPT (``quorum=None``) or
:func:`~repro.relaxed.allreduce_quorum` under a
:class:`~repro.relaxed.QuorumPolicy`. A straggler whose gradient misses the
quorum merges it into a later epoch (within the staleness window) or loses
it to an accounted discard.

Two entry points, mirroring :mod:`repro.apps.asp`:

* :func:`run_sgd` — the timed experiment: epochs run through the simulator
  with per-rank chaining; the run's *provenance* (which rank contributed to
  which epoch, which gradients merged late and where) then drives a real
  numpy replay of the optimization, so the reported ``excess_loss`` is the
  genuine numerical cost of the staleness the schedule produced. The model
  problem is a per-rank quadratic ``f_r(x) = ||x - t_r||^2 / 2`` (gradient
  ``x - t_r``), whose exact optimum is the mean of the seeded targets —
  excess loss has a closed form to compare against.
* :func:`sgd_reference` — the replay itself, usable directly by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig, RuntimeConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.libraries.presets import library_by_name, prepare_operation
from repro.machine.spec import MachineSpec
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MpiWorld
from repro.noise.injector import NoiseInjector

#: Model-problem dimensionality: small enough that the replay is free, large
#: enough that seeded targets are in general position.
_DIM = 64


@dataclass
class SgdResult:
    """One SGD run: simulated timing + replayed optimization quality."""

    nranks: int
    epochs: int
    grad_bytes: int
    quorum: Optional[Union[int, float]]
    min_quorum: int
    staleness_window: int
    noise_percent: float
    seed: int
    total_runtime: float = 0.0
    epoch_times: list = field(default_factory=list)
    # The numerical cost of staleness: f(x_final) - f(x*) on the replayed
    # quadratic (0 = converged exactly as a fault-free synchronous run).
    excess_loss: float = 0.0
    # Provenance accounting across all epochs.
    on_time_fraction: float = 1.0
    late_merged: int = 0
    discarded: int = 0
    degraded: bool = False
    completed: bool = True

    def to_dict(self) -> dict:
        """JSON-able form (the parallel executor's wire/cache format)."""
        return {
            "nranks": self.nranks,
            "epochs": self.epochs,
            "grad_bytes": self.grad_bytes,
            "quorum": self.quorum,
            "min_quorum": self.min_quorum,
            "staleness_window": self.staleness_window,
            "noise_percent": self.noise_percent,
            "seed": self.seed,
            "total_runtime": self.total_runtime,
            "epoch_times": list(self.epoch_times),
            "excess_loss": self.excess_loss,
            "on_time_fraction": self.on_time_fraction,
            "late_merged": self.late_merged,
            "discarded": self.discarded,
            "degraded": self.degraded,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SgdResult":
        return cls(**d)


def sgd_reference(
    nranks: int,
    provenance: list,
    *,
    seed: int = 0,
    lr: float = 0.1,
    dim: int = _DIM,
) -> tuple[np.ndarray, float]:
    """Replay an SGD schedule's provenance as a real optimization.

    ``provenance`` is one entry per epoch: ``(on_time_ranks, late)`` where
    ``late`` lists ``(rank, from_epoch_index)`` gradients merged into this
    epoch but *computed against the iterate that epoch started from* — the
    SSP staleness semantics. Returns ``(x_final, excess_loss)``.
    """
    rng = np.random.default_rng(seed)
    targets = rng.standard_normal((nranks, dim))
    xs = [np.zeros(dim)]
    for on_time, late in provenance:
        x = xs[-1]
        grads = [x - targets[r] for r in sorted(on_time)]
        grads += [
            xs[from_idx] - targets[r]
            for r, from_idx in sorted(late)
        ]
        if grads:
            x = x - lr * np.mean(grads, axis=0)
        xs.append(x)
    x_star = targets.mean(axis=0)

    def f(x: np.ndarray) -> float:
        return float(0.5 * np.mean(np.sum((x[None, :] - targets) ** 2, axis=1)))

    return xs[-1], f(xs[-1]) - f(x_star)


def run_sgd(
    spec: MachineSpec,
    nranks: int,
    *,
    epochs: int = 8,
    grad_bytes: int = 1 << 20,
    compute_per_epoch: float = 1e-3,
    quorum: Optional[Union[int, float]] = None,
    min_quorum: int = 1,
    staleness_window: int = 1,
    noise_percent: float = 0.0,
    noise_ranks: Union[str, list] = "per-node",
    noise_frequency: float = 10.0,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    sanitize: bool = False,
    time_limit: Optional[float] = None,
    lr: float = 0.1,
    config: CollectiveConfig = DEFAULT_COLLECTIVE,
) -> SgdResult:
    """Run data-parallel SGD through the simulator and replay its numerics.

    ``quorum=None`` runs the exact ADAPT allreduce (the synchronous
    comparator); anything else relaxes the gradient averaging with
    :func:`~repro.relaxed.allreduce_quorum` under the given policy.
    """
    from repro.harness.runner import _drive

    reliable = bool(
        fault_plan is not None
        and (fault_plan.losses or fault_plan.corrupts or fault_plan.partitions)
    )
    if (
        fault_plan is not None
        and (fault_plan.kills or fault_plan.partitions)
        and time_limit is None
    ):
        time_limit = 10.0
    world = MpiWorld(
        spec, nranks, config=RuntimeConfig(reliable=reliable),
        carry_data=False, sanitize=sanitize,
    )
    comm = Communicator(world)
    injectors: list = []
    if fault_plan is not None:
        injectors.append(FaultInjector(world, fault_plan))
    if noise_percent > 0:
        if noise_ranks == "per-node":
            targets = sorted(
                {min(world.topology.ranks_on_node(n))
                 for n in range(spec.nodes)
                 if world.topology.ranks_on_node(n)}
            )
        elif noise_ranks == "all":
            targets = list(range(nranks))
        else:
            targets = list(noise_ranks)
        injectors.append(NoiseInjector(
            world, noise_percent, frequency_hz=noise_frequency, seed=seed,
            ranks=targets,
        ))
    library = library_by_name("OMPI-adapt")
    if quorum is None:
        prepare = prepare_operation(library, "allreduce")
    else:
        from repro.relaxed import QuorumPolicy

        prepare = prepare_operation(
            library, "allreduce_quorum",
            policy=QuorumPolicy(quorum=quorum, min_quorum=min_quorum,
                                staleness_window=staleness_window),
        )

    preps = [None] * epochs
    handles = [None] * epochs

    def get_prep(k: int):
        if preps[k] is None:
            preps[k] = prepare(comm, 0, grad_bytes, config)
        return preps[k]

    def enter(local: int, k: int) -> None:
        h = get_prep(k).launch(ranks=[local])
        if handles[k] is None:
            handles[k] = h
            chain(h, k)

    def chain(handle, k: int) -> None:
        def rank_done(local: int, _time: float) -> None:
            rt = world.ranks[comm.world_rank(local)]
            if k + 1 < epochs:
                rt.cpu.execute(
                    compute_per_epoch, lambda: enter(local, k + 1)
                )

        handle.on_rank_done.append(rank_done)
        for local, t in list(handle.done_time.items()):
            rank_done(local, t)

    # Every rank computes its first gradient, then enters epoch 0.
    start = world.engine.now
    for local in range(nranks):
        world.ranks[comm.world_rank(local)].cpu.execute(
            compute_per_epoch, lambda local=local: enter(local, 0)
        )
    deadline = (start + time_limit) if time_limit is not None else None
    last = epochs - 1

    def all_done() -> bool:
        h = handles[last]
        return h is not None and h.done

    _drive(world, injectors, all_done, deadline)
    world.run()

    result = SgdResult(
        nranks=nranks, epochs=epochs, grad_bytes=grad_bytes,
        quorum=quorum, min_quorum=min_quorum,
        staleness_window=staleness_window,
        noise_percent=noise_percent, seed=seed,
    )
    result.completed = all_done()
    # Completion is measured from the handles, not ``engine.now`` — the
    # drive loop runs in coarse horizons and the world keeps draining
    # detector timers long after the last epoch seals.
    prev = start
    for h in handles:
        if h is not None and h.done and h.done_time:
            e = max(h.done_time.values())
            result.epoch_times.append(max(e - prev, 0.0))
            prev = max(prev, e)
        else:
            result.epoch_times.append(float("inf"))
    result.total_runtime = (
        prev - start if result.completed else world.engine.now - start
    )
    live = [h for h in handles if h is not None]
    result.degraded = any(h.report.degraded for h in live)

    # -- provenance -> numpy replay ------------------------------------------
    frontier = getattr(world, "staleness_frontier", None)
    if frontier is not None:
        frontier.flush_pending()
    by_epoch = {
        h.report.staleness_epoch: i
        for i, h in enumerate(handles)
        if h is not None and h.report.staleness_epoch
    }
    provenance: list = []
    for h in handles:
        if h is None:
            provenance.append((set(), []))
        elif h.report.staleness_epoch:
            provenance.append((set(h.report.contributed_ranks), []))
        else:
            provenance.append((set(h.done_time), []))
    on_time_total = 0
    for i, h in enumerate(handles):
        if h is None:
            continue
        on_time_total += len(provenance[i][0])
        for rank, from_e, into_e in h.report.late_merges:
            if into_e >= 0 and into_e in by_epoch and from_e in by_epoch:
                provenance[by_epoch[into_e]][1].append(
                    (rank, by_epoch[from_e])
                )
                result.late_merged += 1
            else:
                result.discarded += 1
    result.on_time_fraction = (
        on_time_total / float(epochs * nranks) if epochs and nranks else 1.0
    )
    _, result.excess_loss = sgd_reference(
        nranks, provenance, seed=seed, lr=lr
    )
    return result
