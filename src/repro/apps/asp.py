"""ASP: all-pairs shortest paths by parallel Floyd-Warshall (paper Section 5.3).

The paper's application benchmark [30]: the distance matrix is distributed by
row blocks; at iteration ``k`` the owner of row ``k`` broadcasts it, then
every rank relaxes its rows (``d[i][j] = min(d[i][j], d[i][k] + d[k][j])``).
Communication is one broadcast per iteration with a rotating root, so the
broadcast implementation dominates the runtime (Table 1).

Two entry points:

* :func:`run_asp` — the performance experiment: iterations run through the
  simulator with per-rank chaining (a rank starts iteration k+1's broadcast
  as soon as it finished its iteration-k compute), reproducing Table 1's
  communication/total split. The problem is scaled down from the paper's
  256K (DESIGN.md documents the scaling); the per-iteration compute time is
  the workload constant the paper's Table 1 implies (total - communication
  is the same ~3.2 s for every library).
* :func:`asp_reference` — a real (non-simulated) Floyd-Warshall used by the
  tests to validate the algorithm the workload models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig
from repro.libraries.presets import LibraryModel, library_by_name
from repro.machine.spec import MachineSpec
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MpiWorld


@dataclass
class AspResult:
    """Timing split of one ASP run (one Table 1 column)."""

    library: str
    nranks: int
    iterations: int
    row_bytes: int
    total_runtime: float
    compute_time: float

    def to_dict(self) -> dict:
        """JSON-able form (the parallel executor's wire/cache format)."""
        return {
            "library": self.library,
            "nranks": self.nranks,
            "iterations": self.iterations,
            "row_bytes": self.row_bytes,
            "total_runtime": self.total_runtime,
            "compute_time": self.compute_time,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AspResult":
        return cls(**d)

    @property
    def communication_time(self) -> float:
        return self.total_runtime - self.compute_time

    @property
    def communication_fraction(self) -> float:
        return self.communication_time / self.total_runtime


def run_asp(
    spec: MachineSpec,
    nranks: int,
    library: Union[LibraryModel, str],
    *,
    iterations: int = 48,
    row_bytes: int = 1 << 20,
    compute_per_iteration: float = 1.57e-3,
    config: CollectiveConfig = DEFAULT_COLLECTIVE,
) -> AspResult:
    """Run the ASP communication/compute pattern through the simulator.

    ``compute_per_iteration`` is each rank's relaxation time per iteration
    (the paper's Table 1 implies ~1.57 ms: every library's total minus
    communication is the same ~3.22 s over ~2048 iterations).
    """
    if isinstance(library, str):
        library = library_by_name(library)
    world = MpiWorld(spec, nranks, carry_data=False)
    comm = Communicator(world)
    rows_per_rank = max(1, iterations // nranks)

    # Per-rank iteration chaining: enter bcast k, on completion compute, then
    # enter bcast k+1.
    preps = [None] * iterations
    handles = [None] * iterations

    def owner(k: int) -> int:
        return (k // rows_per_rank) % nranks

    def get_prep(k: int):
        if preps[k] is None:
            preps[k] = library.bcast(comm, owner(k), row_bytes, config)
        return preps[k]

    def chain(handle, k: int) -> None:
        def rank_done(local: int, _time: float) -> None:
            rt = world.ranks[comm.world_rank(local)]
            if k + 1 < iterations:
                def enter_next() -> None:
                    nxt = get_prep(k + 1)
                    if nxt.chain_ranks is None or local in nxt.chain_ranks:
                        h = nxt.launch(ranks=[local])
                        if handles[k + 1] is None:
                            handles[k + 1] = h
                            chain(h, k + 1)
                    elif handles[k + 1] is None:
                        # Ensure the next iteration's handle exists even when
                        # this rank is not self-starting.
                        handles[k + 1] = nxt.launch(ranks=[])
                        chain(handles[k + 1], k + 1)
                rt.cpu.execute(compute_per_iteration, enter_next)
            else:
                # Final iteration: the relaxation still takes time; schedule
                # a no-op completion so the clock covers it.
                rt.cpu.execute(compute_per_iteration, lambda: None)

        handle.on_rank_done.append(rank_done)
        for local, t in list(handle.done_time.items()):
            rank_done(local, t)

    start = world.engine.now
    h0 = get_prep(0).launch()
    handles[0] = h0
    chain(h0, 0)
    world.run()
    h_last = handles[-1]
    if h_last is None or not h_last.done:  # pragma: no cover - defensive
        raise RuntimeError(f"ASP with {library.name} did not complete")
    total = world.engine.now - start
    return AspResult(
        library=library.name,
        nranks=nranks,
        iterations=iterations,
        row_bytes=row_bytes,
        total_runtime=total,
        compute_time=iterations * compute_per_iteration,
    )


def asp_reference(weights: np.ndarray) -> np.ndarray:
    """Sequential Floyd-Warshall (the numerics the workload stands for).

    ``weights[i, j]`` is the edge weight i->j (``inf`` when absent); returns
    the all-pairs shortest path matrix. Used by tests to pin the algorithm.
    """
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"weights must be square, got {weights.shape}")
    dist = weights.astype(np.float64, copy=True)
    n = dist.shape[0]
    np.fill_diagonal(dist, np.minimum(np.diag(dist), 0.0))
    for k in range(n):
        # Vectorized relaxation: one broadcast row per iteration, exactly the
        # communication pattern run_asp models.
        dist = np.minimum(dist, dist[:, k, None] + dist[None, k, :])
    return dist
