"""Applications driven through the simulated MPI runtime."""

from repro.apps.asp import AspResult, run_asp, asp_reference
from repro.apps.sgd import SgdResult, run_sgd, sgd_reference

__all__ = [
    "AspResult",
    "SgdResult",
    "asp_reference",
    "run_asp",
    "run_sgd",
    "sgd_reference",
]
