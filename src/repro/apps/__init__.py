"""Applications driven through the simulated MPI runtime."""

from repro.apps.asp import AspResult, run_asp, asp_reference

__all__ = ["AspResult", "run_asp", "asp_reference"]
