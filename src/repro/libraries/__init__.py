"""Behavioural models of the MPI libraries the paper compares against."""

from repro.libraries.presets import (
    LibraryModel,
    cray_mpi,
    intel_mpi,
    intel_topo_bcast_variants,
    intel_topo_reduce_variants,
    mvapich,
    ompi_adapt,
    ompi_default,
    ompi_default_topo,
    library_by_name,
)

__all__ = [
    "LibraryModel",
    "cray_mpi",
    "intel_mpi",
    "intel_topo_bcast_variants",
    "intel_topo_reduce_variants",
    "mvapich",
    "ompi_adapt",
    "ompi_default",
    "ompi_default_topo",
    "library_by_name",
]
