"""Library models.

The paper compares ADAPT against Intel MPI, Cray MPI, MVAPICH2 and Open MPI's
default ``tuned`` module. The proprietary ones cannot be cloned; each is
modelled as the algorithm family it documents/is known to use, running on the
same simulated substrate (DESIGN.md's substitution table). The models are:

* **ompi_adapt** — the paper's system: event-driven framework + single
  topology-aware tree (chain at every level, Section 5.2.1); on GPU worlds,
  explicit CPU-buffer staging on node leaders and GPU-offloaded reduction.
* **ompi_default** — Open MPI ``tuned``: non-blocking + Waitall with the
  fixed decision function (algorithm switch visible at 256 KB in Figure 9a);
  not topology-aware.
* **ompi_default_topo** — the paper's own control (Figures 8): the default
  non-blocking framework given ADAPT's topology-aware tree, isolating the
  event-driven contribution from the tree's.
* **intel_mpi** — hierarchical SHM-based collectives (Section 3.1 style);
  reduce uses the vectorized Shumilin model.
* **cray_mpi** — blocking segmented binomial (Cray MPICH heritage): good
  uncontended performance, heavy synchronization dependencies.
* **mvapich** — scatter-allgather broadcast for large messages and blocking
  binomial reduce; the ring phase's P-1 synchronous steps make it the most
  noise-sensitive model, matching its 868% slowdown in Figure 7b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.collectives import (
    allgather_adapt,
    allreduce_adapt,
    alltoall_adapt,
    barrier_adapt,
    bcast_adapt,
    bcast_blocking,
    bcast_nonblocking,
    bcast_scatter_allgather,
    bcast_tuned,
    gather_adapt,
    reduce_adapt,
    reduce_blocking,
    reduce_nonblocking,
    reduce_rabenseifner,
    reduce_scatter_adapt,
    reduce_shumilin,
    reduce_tuned,
    scatter_adapt,
)
from repro.collectives.hierarchical import HierarchicalBcast, HierarchicalReduce
from repro.collectives.base import CollectiveContext, CollectiveHandle
from repro.machine.spec import CommLevel
from repro.mpi.communicator import Communicator
from repro.mpi.ops import SUM, ReduceOp
from repro.trees.base import Tree
from repro.trees.builders import binomial_tree
from repro.trees.topo_tree import topology_aware_tree


class PreparedCollective:
    """One collective operation, prepared but not yet launched.

    ``launch(ranks)`` starts the given communicator-local ranks (all by
    default); repeated calls with different ranks join the same operation —
    the mechanism the IMB-style runner uses to let each rank enter iteration
    i+1 the moment it finishes iteration i. ``chain_ranks`` restricts which
    ranks are self-starting (hierarchical algorithms launch the rest
    internally at phase boundaries).
    """

    def __init__(self, launch_fn: Callable, chain_ranks: Optional[set[int]] = None):
        self._launch_fn = launch_fn
        self.handle: Optional[CollectiveHandle] = None
        self.chain_ranks = chain_ranks

    def launch(self, ranks=None) -> CollectiveHandle:
        self.handle = self._launch_fn(self.handle, ranks)
        return self.handle


@dataclass(frozen=True)
class LibraryModel:
    """One library's bcast/reduce behaviour. Calling ``bcast``/``reduce``
    returns a :class:`PreparedCollective`."""

    name: str
    bcast: Callable[..., PreparedCollective]
    reduce: Callable[..., PreparedCollective]


def _prepared(fn: Callable, ctx: CollectiveContext, **fnkw) -> PreparedCollective:
    return PreparedCollective(
        lambda handle, ranks: fn(ctx, handle=handle, ranks=ranks, **fnkw)
    )


def _topo_tree(comm: Communicator, root: int) -> Tree:
    return topology_aware_tree(comm.world.topology, list(comm.ranks), root)


def _staging_ranks(comm: Communicator, tree: Tree, root: int) -> set[int]:
    """Node leaders (tree members whose parent edge crosses nodes) + root —
    the ranks that cache GPU segments in an explicit CPU buffer (Section 4.1)."""
    topo = comm.world.topology
    staged = {root}
    for local in range(comm.size):
        p = tree.parent[local]
        if p is not None and topo.level(
            comm.world_rank(local), comm.world_rank(p)
        ) == CommLevel.INTER_NODE:
            staged.add(local)
    return staged


def _ctx(comm, root, nbytes, config, **kw) -> CollectiveContext:
    return CollectiveContext(comm, root, nbytes, config, **kw)


# -- OMPI-adapt -----------------------------------------------------------------


def _adapt_bcast(comm, root, nbytes, config, data=None, **kw):
    tree = _topo_tree(comm, root)
    staging: set[int] = set()
    if comm.world.gpu_bound:
        staging = _staging_ranks(comm, tree, root)
    ctx = _ctx(comm, root, nbytes, config, tree=tree, data=data, host_staging=staging)
    return _prepared(bcast_adapt, ctx)


def _adapt_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    tree = _topo_tree(comm, root)
    ctx = _ctx(
        comm, root, nbytes, config, tree=tree, data=data, op=op,
        reduce_on_gpu=comm.world.gpu_bound,
    )
    return _prepared(reduce_adapt, ctx)


def ompi_adapt() -> LibraryModel:
    return LibraryModel("OMPI-adapt", _adapt_bcast, _adapt_reduce)


# -- OMPI-default (tuned) ----------------------------------------------------------


def _tuned_bcast(comm, root, nbytes, config, data=None, **kw):
    return _prepared(bcast_tuned, _ctx(comm, root, nbytes, config, data=data))


def _tuned_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    return _prepared(reduce_tuned, _ctx(comm, root, nbytes, config, data=data, op=op))


def ompi_default() -> LibraryModel:
    return LibraryModel("OMPI-default", _tuned_bcast, _tuned_reduce)


# -- OMPI-default-topo (control: default framework + ADAPT's tree) -------------------


def _default_topo_bcast(comm, root, nbytes, config, data=None, **kw):
    ctx = _ctx(comm, root, nbytes, config, tree=_topo_tree(comm, root), data=data)
    return _prepared(bcast_nonblocking, ctx)


def _default_topo_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    ctx = _ctx(
        comm, root, nbytes, config, tree=_topo_tree(comm, root), data=data, op=op
    )
    return _prepared(reduce_nonblocking, ctx)


def ompi_default_topo() -> LibraryModel:
    return LibraryModel("OMPI-default-topo", _default_topo_bcast, _default_topo_reduce)


# -- Intel MPI ------------------------------------------------------------------------


def _intel_bcast(comm, root, nbytes, config, data=None, **kw):
    ctx = _ctx(comm, root, nbytes, config, data=data)
    hb = HierarchicalBcast(ctx, outer="binomial", inner="knomial4",
                           name="Intel-SHM-knomial")
    return PreparedCollective(lambda handle, ranks: hb.launch(ranks),
                              chain_ranks=hb.chain_ranks)


def _intel_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    ctx = _ctx(comm, root, nbytes, config, data=data, op=op)
    # Intel MPI picks per-fabric defaults: on Omni-Path machines it uses the
    # Shumilin algorithm (whose vectorized arithmetic + OPA-tuned P2P beat
    # ADAPT's reduce on Stampede2, Section 5.1.2); elsewhere the SHM-based
    # hierarchical reduce.
    if comm.world.spec.name == "stampede2":
        return _prepared(reduce_shumilin, ctx)
    hr = HierarchicalReduce(ctx, outer="binomial", inner="knomial4",
                            name="Intel-SHM-knomial")
    return PreparedCollective(lambda handle, ranks: hr.launch(ranks),
                              chain_ranks=hr.chain_ranks)


def intel_mpi() -> LibraryModel:
    return LibraryModel("Intel MPI", _intel_bcast, _intel_reduce)


# -- Cray MPI ----------------------------------------------------------------------------


def _cray_bcast(comm, root, nbytes, config, data=None, **kw):
    tree = binomial_tree(comm.size).reroot_relabelled(root)
    ctx = _ctx(comm, root, nbytes, config, tree=tree, data=data)
    return _prepared(bcast_blocking, ctx)


def _cray_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    tree = binomial_tree(comm.size).reroot_relabelled(root)
    ctx = _ctx(comm, root, nbytes, config, tree=tree, data=data, op=op)
    return _prepared(reduce_blocking, ctx)


def cray_mpi() -> LibraryModel:
    return LibraryModel("Cray MPI", _cray_bcast, _cray_reduce)


# -- MVAPICH -----------------------------------------------------------------------------


def _mvapich_bcast(comm, root, nbytes, config, data=None, **kw):
    if nbytes > 64 * 1024 and comm.size > 2:
        ctx = _ctx(comm, root, nbytes, config, data=data)
        return _prepared(bcast_scatter_allgather, ctx)
    tree = binomial_tree(comm.size).reroot_relabelled(root)
    ctx = _ctx(comm, root, nbytes, config, tree=tree, data=data)
    return _prepared(bcast_blocking, ctx)


def _mvapich_reduce(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
    tree = binomial_tree(comm.size).reroot_relabelled(root)
    ctx = _ctx(comm, root, nbytes, config, tree=tree, data=data, op=op)
    return _prepared(reduce_blocking, ctx)


def mvapich() -> LibraryModel:
    return LibraryModel("MVAPICH", _mvapich_bcast, _mvapich_reduce)


# -- Intel topology-aware algorithm families (Figure 8 legends) ----------------------------


def intel_topo_bcast_variants() -> dict[str, Callable[..., CollectiveHandle]]:
    """The topology-aware broadcast algorithms of Intel MPI (Figure 8)."""

    def hier(outer: str, inner: str, label: str):
        def run(comm, root, nbytes, config, data=None, **kw):
            ctx = _ctx(comm, root, nbytes, config, data=data)
            hb = HierarchicalBcast(ctx, outer=outer, inner=inner, name=label)
            return PreparedCollective(lambda handle, ranks: hb.launch(ranks),
                                      chain_ranks=hb.chain_ranks)

        return run

    def recursive_doubling(comm, root, nbytes, config, data=None, **kw):
        # Non-pipelined binomial: whole message per hop.
        tree = binomial_tree(comm.size).reroot_relabelled(root)
        cfg = config.with_(segment_size=max(nbytes, 1))
        ctx = _ctx(comm, root, nbytes, cfg, tree=tree, data=data)
        return _prepared(bcast_nonblocking, ctx)

    return {
        "Intel-topo-binomial": hier("binomial", "binomial", "topo-binomial"),
        "Intel-topo-recursive_doubling": recursive_doubling,
        "Intel-topo-ring": hier("chain", "chain", "topo-ring"),
        "Intel-topo-SHM-flat": hier("binomial", "flat", "SHM-flat"),
        "Intel-topo-SHM-Knomial": hier("binomial", "knomial4", "SHM-knomial"),
        "Intel-topo-SHM-Knary": hier("binomial", "kary4", "SHM-knary"),
    }


def intel_topo_reduce_variants() -> dict[str, Callable[..., CollectiveHandle]]:
    """The topology-aware reduce algorithms of Intel MPI (Figure 8)."""

    def hier(outer: str, inner: str, label: str):
        def run(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
            ctx = _ctx(comm, root, nbytes, config, data=data, op=op)
            hr = HierarchicalReduce(ctx, outer=outer, inner=inner, name=label)
            return PreparedCollective(lambda handle, ranks: hr.launch(ranks),
                                      chain_ranks=hr.chain_ranks)

        return run

    def shumilin(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
        return _prepared(reduce_shumilin, _ctx(comm, root, nbytes, config, data=data, op=op))

    def rabenseifner(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
        return _prepared(reduce_rabenseifner, _ctx(comm, root, nbytes, config, data=data, op=op))

    return {
        "Intel-topo-Shumilin": shumilin,
        "Intel-topo-binomial": hier("binomial", "binomial", "topo-binomial"),
        "Intel-topo-Rabenseifner": rabenseifner,
        "Intel-topo-SHM-flat": hier("binomial", "flat", "SHM-flat"),
        "Intel-topo-SHM-Knomial": hier("binomial", "knomial4", "SHM-knomial"),
        "Intel-topo-SHM-Knary": hier("binomial", "kary4", "SHM-knary"),
        "Intel-topo-SHM-binomial": hier("binomial", "binary", "SHM-binomial"),
    }


# -- full ADAPT operation coverage (DESIGN.md S20) ------------------------------------

#: Every collective the ADAPT framework implements. bcast/reduce go through
#: the library models; the rest are ADAPT-only (the comparison libraries
#: model bcast/reduce, the operations the paper measures).
ADAPT_OPERATIONS = (
    "bcast",
    "reduce",
    "scatter",
    "gather",
    "allreduce",
    "allgather",
    "reduce_scatter",
    "alltoall",
    "barrier",
)

_TREE_OPS = {
    "bcast": bcast_adapt,
    "reduce": reduce_adapt,
    "scatter": scatter_adapt,
    "gather": gather_adapt,
    "allreduce": allreduce_adapt,
    "barrier": barrier_adapt,
}
_RING_OPS = {
    "allgather": allgather_adapt,
    "reduce_scatter": reduce_scatter_adapt,
    "alltoall": alltoall_adapt,
}


def prepare_operation(
    library: LibraryModel, operation: str, *, recover: bool = False,
    policy=None,
):
    """Resolve (library, operation) to a prepare callable.

    bcast/reduce without recovery go through the library model (the paper's
    comparison surface); every other operation — and any operation with
    ``recover=True`` — runs the ADAPT implementation on the topology-aware
    tree (ring collectives are tree-free). With ``recover``, the launch goes
    through :func:`repro.recovery.launch_recover`, which arms ULFM-style
    membership agreement and epoch-restart/in-place repair; recovery
    launches every rank up front, so per-rank iteration chaining degrades to
    a single launch.

    The relaxed quorum family (``*_quorum``, DESIGN.md S25) is ADAPT-only
    and takes a :class:`~repro.relaxed.QuorumPolicy`; quorum completion
    already *is* a degraded-completion strategy, so combining it with
    ``recover`` is rejected.
    """
    from repro.relaxed import RELAXED_OPERATIONS

    if operation in RELAXED_OPERATIONS:
        return _prepare_relaxed(operation, recover=recover, policy=policy)
    if operation not in ADAPT_OPERATIONS:
        raise ValueError(
            f"unknown operation {operation!r}; known: "
            f"{list(ADAPT_OPERATIONS) + list(RELAXED_OPERATIONS)}"
        )
    if not recover:
        if operation == "bcast":
            return library.bcast
        if operation == "reduce":
            return library.reduce

    needs_op = operation in ("reduce", "allreduce", "reduce_scatter")

    def prepare(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
        tree = _topo_tree(comm, root) if operation in _TREE_OPS else None
        ctx = _ctx(
            comm, root, nbytes, config, tree=tree, data=data,
            op=op if needs_op else None,
        )
        if not recover:
            fn = _TREE_OPS.get(operation) or _RING_OPS[operation]
            return _prepared(fn, ctx)

        from repro.recovery import launch_recover

        def launch(handle, ranks):
            if handle is not None:
                return handle  # all ranks launched by the first call
            return launch_recover(operation, ctx)

        return PreparedCollective(launch)

    return prepare


def _prepare_relaxed(operation: str, *, recover: bool, policy):
    """Prepare a quorum collective (`bcast_quorum` etc., DESIGN.md S25)."""
    from repro.relaxed import (
        QuorumPolicy,
        allreduce_quorum,
        bcast_quorum,
        reduce_quorum,
    )

    if recover:
        raise ValueError(
            f"{operation!r} cannot combine with recover=True: quorum "
            "completion is itself the degraded-completion strategy "
            "(min_quorum is the floor that hands back to recovery semantics)"
        )
    fns = {
        "bcast_quorum": bcast_quorum,
        "reduce_quorum": reduce_quorum,
        "allreduce_quorum": allreduce_quorum,
    }
    fn = fns[operation]
    needs_tree = operation in ("bcast_quorum", "allreduce_quorum")
    needs_op = operation in ("reduce_quorum", "allreduce_quorum")

    def prepare(comm, root, nbytes, config, data=None, op: ReduceOp = SUM, **kw):
        ctx = _ctx(
            comm, root, nbytes, config,
            tree=_topo_tree(comm, root) if needs_tree else None,
            data=data, op=op if needs_op else None,
        )
        return _prepared(fn, ctx, policy=policy or QuorumPolicy())

    return prepare


_LIBRARIES = {
    "OMPI-adapt": ompi_adapt,
    "OMPI-default": ompi_default,
    "OMPI-default-topo": ompi_default_topo,
    "Intel MPI": intel_mpi,
    "Cray MPI": cray_mpi,
    "MVAPICH": mvapich,
}


def library_by_name(name: str) -> LibraryModel:
    try:
        return _LIBRARIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown library {name!r}; known: {sorted(_LIBRARIES)}"
        ) from None
