"""Noise injector.

Reproduces the paper's methodology (after Beckman et al. [2]): each rank
independently receives noise events at a fixed frequency (10 Hz), each
stealing the CPU for a uniformly distributed duration — 0-10 ms for "5%"
noise, 0-20 ms for "10%" (duty cycle = frequency x mean duration). Low
frequency + long duration is the profile with the greatest collective-
performance impact (Ferreira et al. [10]), which is why the paper uses it.

Injection windows are armed explicitly (:meth:`NoiseInjector.arm`) rather
than self-rescheduling forever, so a drained event queue still means "the
simulation is finished". Each rank gets an independent random phase, and the
generator is seeded — identical seeds give identical noise timelines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mpi.runtime import MpiWorld


def noise_profile(percent: float, frequency_hz: float = 10.0) -> float:
    """Max noise duration for a duty-cycle percentage.

    ``percent=5`` -> uniform(0, 10 ms) at 10 Hz (mean 5 ms -> 5% duty).
    """
    if percent < 0:
        raise ValueError(f"negative noise percentage {percent}")
    mean = (percent / 100.0) / frequency_hz
    return 2.0 * mean


class NoiseInjector:
    """Per-rank uniform noise at fixed frequency."""

    def __init__(
        self,
        world: MpiWorld,
        percent: float,
        frequency_hz: float = 10.0,
        seed: int = 0,
        ranks: Optional[Sequence[int]] = None,
    ):
        self.world = world
        self.percent = percent
        self.frequency_hz = frequency_hz
        self.max_duration = noise_profile(percent, frequency_hz)
        self.ranks = list(ranks) if ranks is not None else list(range(world.nranks))
        for r in self.ranks:
            if not 0 <= r < world.nranks:
                raise ValueError(
                    f"noise rank {r} outside [0, {world.nranks})"
                )
        self.rng = np.random.default_rng(seed)
        # Independent phase per rank, fixed for the injector's lifetime.
        self._phase = {
            r: float(self.rng.uniform(0.0, 1.0 / frequency_hz)) for r in self.ranks
        }
        self._armed_until = {r: 0.0 for r in self.ranks}
        self.events_injected = 0
        self.total_injected_time = 0.0

    def arm(self, horizon: float) -> int:
        """Schedule injections from now until ``now + horizon``.

        Idempotent over overlapping windows: each rank's already-armed region
        is never double-injected. Returns the number of events scheduled.
        """
        if self.percent == 0:
            return 0
        eng = self.world.engine
        period = 1.0 / self.frequency_hz
        end = eng.now + horizon
        scheduled = 0
        for r in self.ranks:
            start = max(eng.now, self._armed_until[r])
            # First tick at or after `start` respecting the rank's phase.
            k = max(0, int(np.ceil((start - self._phase[r]) / period)))
            t = self._phase[r] + k * period
            while t < end:
                duration = float(self.rng.uniform(0.0, self.max_duration))
                eng.call_at(t, self.world.inject_noise, r, duration)
                self.events_injected += 1
                self.total_injected_time += duration
                scheduled += 1
                t += period
            self._armed_until[r] = end
        return scheduled
