"""System-noise injection (paper Section 5.1.1 methodology)."""

from repro.noise.injector import NoiseInjector, noise_profile
from repro.noise.microscope import (
    PropagationReport,
    classify_relation,
    probe_propagation,
)

__all__ = [
    "NoiseInjector",
    "noise_profile",
    "PropagationReport",
    "classify_relation",
    "probe_propagation",
]
