"""Noise-propagation microscope: the paper's Figure 2 analysis as a tool.

Runs the same collective twice — clean, and with one delayed process — and
classifies every rank's extra completion delay by its tree relationship to
the noise source: *descendant* (data dependency: unavoidable), *sibling*,
*ancestor*, or *unrelated* (all three reachable only through synchronization
dependencies). The paper's argument is exactly this classification:

* blocking P2P: noise reaches siblings, the parent, and transitively every
  process (Figure 2c);
* non-blocking + Waitall: still reaches siblings through the Waitall
  (Section 2.1.2);
* ADAPT: only descendants are delayed (Section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.collectives.base import CollectiveContext, CollectiveHandle
from repro.config import CollectiveConfig
from repro.machine.spec import MachineSpec
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MpiWorld
from repro.trees.base import Tree


@dataclass
class PropagationReport:
    """Per-relationship delay summary of one noise-injection experiment."""

    algorithm: str
    source: int
    noise: float
    delays: dict[int, float] = field(default_factory=dict)
    relation: dict[int, str] = field(default_factory=dict)

    def max_delay(self, relation: str) -> float:
        vals = [
            d for r, d in self.delays.items() if self.relation[r] == relation
        ]
        return max(vals, default=0.0)

    def affected(self, relation: str, threshold: float) -> list[int]:
        """Ranks of the given relation delayed beyond ``threshold``."""
        return sorted(
            r
            for r, d in self.delays.items()
            if self.relation[r] == relation and d > threshold
        )

    def summary(self) -> str:
        lines = [
            f"{self.algorithm}: noise {self.noise * 1e3:.1f} ms on rank {self.source}"
        ]
        for rel in ("descendant", "sibling", "ancestor", "unrelated"):
            lines.append(
                f"  {rel:<11} max extra delay {self.max_delay(rel) * 1e6:9.1f} us"
            )
        return "\n".join(lines)


def classify_relation(tree: Tree, source: int, rank: int) -> str:
    """Tree relationship of ``rank`` to the noise ``source``."""
    if rank == source:
        return "descendant"  # the source delays itself via its data deps
    if rank in set(tree.descendants(source)):
        return "descendant"
    # Ancestors: walk up from source.
    r: Optional[int] = tree.parent[source]
    ancestors = set()
    while r is not None:
        ancestors.add(r)
        r = tree.parent[r]
    if rank in ancestors:
        return "ancestor"
    parent = tree.parent[source]
    if parent is not None and rank in tree.children[parent]:
        return "sibling"
    return "unrelated"


def probe_propagation(
    spec: MachineSpec,
    nranks: int,
    algorithm: Callable[[CollectiveContext], CollectiveHandle],
    tree_builder: Callable[..., Tree],
    source: int,
    noise: float = 5e-3,
    nbytes: int = 1 << 20,
    config: Optional[CollectiveConfig] = None,
    root: int = 0,
) -> PropagationReport:
    """Measure per-rank delay caused by freezing ``source`` for ``noise`` s."""
    config = config or CollectiveConfig()

    def run(delay: float) -> tuple[dict[int, float], Tree]:
        world = MpiWorld(spec, nranks)
        comm = Communicator(world)
        tree = tree_builder(world, comm)
        if delay > 0:
            world.inject_noise(source, delay)
        ctx = CollectiveContext(comm, root, nbytes, config, tree=tree)
        handle = algorithm(ctx)
        world.run()
        assert handle.done
        return dict(handle.done_time), tree

    clean, tree = run(0.0)
    noisy, _ = run(noise)
    report = PropagationReport(
        algorithm=getattr(algorithm, "__name__", str(algorithm)),
        source=source,
        noise=noise,
    )
    for r in range(nranks):
        report.delays[r] = noisy[r] - clean[r]
        report.relation[r] = classify_relation(tree, source, r)
    return report
