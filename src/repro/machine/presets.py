"""Cluster presets mirroring the paper's three testbeds.

Parameters are calibrated to land the paper's 4 MB-class collectives in the
millisecond regime (Section 5's figures); DESIGN.md Section 5 documents the
calibration and the ablation bench shows the reproduced *shapes* are robust
to ±2x parameter changes.
"""

from __future__ import annotations

from repro.machine.spec import GpuSpec, LinkParams, MachineSpec, NodeSpec


def cori(nodes: int = 32) -> MachineSpec:
    """Cori-like CPU cluster: 2x Intel Xeon E5-2698v3 (16 cores/socket),
    Cray Aries fabric. The paper uses 1024 ranks = 32 nodes."""
    return MachineSpec(
        name="cori",
        nodes=nodes,
        node=NodeSpec(sockets=2, cores_per_socket=16),
        shm=LinkParams(alpha=0.3e-6, bandwidth=16e9),
        qpi=LinkParams(alpha=0.7e-6, bandwidth=12e9),
        fabric=LinkParams(alpha=1.5e-6, bandwidth=10e9),
    )


def stampede2(nodes: int = 32) -> MachineSpec:
    """Stampede2-like CPU cluster: 2x Intel Xeon Platinum 8160
    (24 cores/socket), Intel Omni-Path. 1536 ranks = 32 nodes.

    Omni-Path is modelled slightly faster than Aries, matching the paper's
    observation that Stampede2 absolute times are lower (Fig 9b vs 9a)."""
    return MachineSpec(
        name="stampede2",
        nodes=nodes,
        node=NodeSpec(sockets=2, cores_per_socket=24),
        shm=LinkParams(alpha=0.25e-6, bandwidth=18e9),
        qpi=LinkParams(alpha=0.6e-6, bandwidth=14e9),
        fabric=LinkParams(alpha=1.2e-6, bandwidth=12e9),
    )


def psg_gpu(nodes: int = 8) -> MachineSpec:
    """PSG-like GPU cluster: 2 sockets x 2 K40 GPUs per node (4 GPUs/node),
    deca-core Ivy Bridge CPUs, FDR InfiniBand (40 Gb/s ~ 5 GB/s)."""
    return MachineSpec(
        name="psg",
        nodes=nodes,
        node=NodeSpec(
            sockets=2,
            cores_per_socket=10,
            gpu=GpuSpec(
                gpus_per_socket=2,
                pcie=LinkParams(alpha=1.3e-6, bandwidth=12e9),
                reduce_bandwidth=180e9,
                kernel_launch=4e-6,
                streams=4,
            ),
        ),
        shm=LinkParams(alpha=0.3e-6, bandwidth=16e9),
        qpi=LinkParams(alpha=0.7e-6, bandwidth=12e9),
        fabric=LinkParams(alpha=1.8e-6, bandwidth=5e9),
    )


#: Preset factories addressable by name (the scale knob's lookup table).
PRESETS = {
    "cori": cori,
    "stampede2": stampede2,
    "psg": psg_gpu,
}

#: Compiled topology families (repro.topo) addressable everywhere preset
#: names are: ``for_ranks``, ``repro bench --scale``, parallel sim jobs.
TOPO_FAMILY_NAMES = ("fattree", "dragonfly", "railpod")


def ranks_per_node(name: str) -> int:
    """Ranks one node of preset ``name`` contributes (cores, or GPUs when
    the preset is GPU-bound)."""
    spec = PRESETS[name]()
    node = spec.node
    if name == "psg":
        return node.sockets * node.gpu.gpus_per_socket
    return node.sockets * node.cores_per_socket


def for_ranks(name: str, world_size: int) -> MachineSpec:
    """The ``world_size``-driven scale knob (DESIGN.md §23): build preset
    ``name`` with exactly enough nodes for ``world_size`` ranks.

    ``repro bench --scale`` uses this to stand up 1K/4K/16K-rank clusters
    from the same calibrated per-link parameters as the paper-sized runs —
    node count is the only thing that varies with scale.

    Topology-family names (``fattree``/``dragonfly``/``railpod``) resolve
    through the topology compiler instead: the family spec is resized to
    the smallest shape fitting ``world_size`` and compiled.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if name in TOPO_FAMILY_NAMES:
        from repro.topo import family_for_ranks  # deferred: avoids cycle

        return family_for_ranks(name, world_size)
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    per_node = ranks_per_node(name)
    nodes = -(-world_size // per_node)  # ceil division
    return PRESETS[name](nodes)


def small_test_machine(
    nodes: int = 3,
    sockets: int = 2,
    cores_per_socket: int = 4,
    gpus_per_socket: int = 0,
) -> MachineSpec:
    """Tiny cluster for unit tests — the Figure 5 layout by default
    (4 cores/socket, 2 sockets/node)."""
    gpu = GpuSpec(gpus_per_socket=gpus_per_socket) if gpus_per_socket else None
    return MachineSpec(
        name="testbox",
        nodes=nodes,
        node=NodeSpec(sockets=sockets, cores_per_socket=cores_per_socket, gpu=gpu),
    )
