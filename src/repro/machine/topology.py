"""Rank placement and topology queries (the hwloc/PMIx stand-in).

Ranks are placed block-wise: rank ``r`` lives on node ``r // cores_per_node``,
socket ``(r % cores_per_node) // cores_per_socket``, core
``r % cores_per_socket`` — the default "by core" mapping of mpirun. For GPU
runs, one rank is bound to one GPU (Section 4's assumption), placed
block-wise over sockets the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.machine.spec import CommLevel, MachineSpec


@dataclass(frozen=True)
class Placement:
    """Physical location of one rank."""

    rank: int
    node: int
    socket: int
    core: int          # index within the socket
    gpu: int | None    # index within the socket, when GPU-bound

    @property
    def socket_global(self) -> tuple[int, int]:
        """Socket key unique across the whole machine (for link naming).

        A collision-free ``(node, socket)`` tuple. The previous encoding
        (``node * 1_000_000 + socket``) silently collided for pathological
        specs — e.g. ``(node=0, socket=1_000_000)`` aliased
        ``(node=1, socket=0)`` — so the key is structural, not arithmetic.
        """
        return (self.node, self.socket)


class Topology:
    """Placement of ``nranks`` ranks on a :class:`MachineSpec`.

    ``gpu_bound=True`` binds one rank per GPU instead of one per core.
    """

    def __init__(self, spec: MachineSpec, nranks: int, gpu_bound: bool = False):
        self.spec = spec
        self.nranks = nranks
        self.gpu_bound = gpu_bound
        if gpu_bound:
            if spec.node.gpu is None:
                raise ValueError(f"machine {spec.name!r} has no GPUs")
            per_node = spec.node.gpus
        else:
            per_node = spec.node.cores
        if nranks > per_node * spec.nodes:
            raise ValueError(
                f"{nranks} ranks do not fit on {spec.nodes} nodes "
                f"x {per_node} slots ({spec.name})"
            )
        self._per_node = per_node
        if gpu_bound:
            assert spec.node.gpu is not None
            self._per_socket = spec.node.gpu.gpus_per_socket
        else:
            self._per_socket = spec.node.cores_per_socket

    def placement(self, rank: int) -> Placement:
        """Location of ``rank``."""
        if not (0 <= rank < self.nranks):
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        node = rank // self._per_node
        within = rank % self._per_node
        socket = within // self._per_socket
        slot = within % self._per_socket
        if self.gpu_bound:
            return Placement(rank, node, socket, core=slot, gpu=slot)
        return Placement(rank, node, socket, core=slot, gpu=None)

    @lru_cache(maxsize=None)
    def _placement_cached(self, rank: int) -> Placement:
        return self.placement(rank)

    def level(self, a: int, b: int) -> CommLevel:
        """Outermost boundary ranks ``a`` and ``b`` straddle."""
        if a == b:
            return CommLevel.SELF
        pa, pb = self._placement_cached(a), self._placement_cached(b)
        if pa.node != pb.node:
            return CommLevel.INTER_NODE
        if pa.socket != pb.socket:
            return CommLevel.INTER_SOCKET
        return CommLevel.INTRA_SOCKET

    def node_of(self, rank: int) -> int:
        return self._placement_cached(rank).node

    def socket_of(self, rank: int) -> tuple[int, int]:
        p = self._placement_cached(rank)
        return (p.node, p.socket)

    def ranks_on_node(self, node: int) -> list[int]:
        return [r for r in range(self.nranks) if self.node_of(r) == node]

    def ranks_on_socket(self, node: int, socket: int) -> list[int]:
        return [r for r in range(self.nranks) if self.socket_of(r) == (node, socket)]

    def group_key(self, rank: int, level: CommLevel) -> tuple:
        """Identifier of the ``level``-group containing ``rank``.

        Two ranks are in the same group iff they can communicate at a level
        *at or below* ``level``. Used by the topology-aware tree builder.
        """
        p = self._placement_cached(rank)
        if level == CommLevel.INTRA_SOCKET:
            return (p.node, p.socket)
        if level == CommLevel.INTER_SOCKET:
            return (p.node,)
        if level == CommLevel.INTER_NODE:
            return ()
        raise ValueError(f"no grouping at level {level!r}")
