"""Machine specification dataclasses.

A :class:`MachineSpec` describes a homogeneous cluster: every node has the
same socket/core/GPU layout, and each communication level carries Hockney
``(alpha, bandwidth)`` parameters. The network fabric (:mod:`repro.network`)
instantiates actual contended links from this description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class CommLevel(enum.IntEnum):
    """Communication levels, ordered innermost (fastest) to outermost.

    The integer ordering is load-bearing: the topology-aware tree builder
    groups ranks bottom-up by increasing level, and routing picks the level
    of a pair of ranks as the *outermost* boundary they straddle.
    """

    SELF = 0          # same rank (no traffic)
    INTRA_SOCKET = 1  # shared memory within one socket
    INTER_SOCKET = 2  # QPI / HyperTransport within one node
    INTER_NODE = 3    # NIC + switch fabric


class GpuLinkKind(enum.Enum):
    """Data-movement lanes specific to GPU clusters (Section 4).

    The fabric instantiates one ingress and one egress lane per GPU; all
    outgoing copies from a GPU (D2H staging, CUDA-IPC peer sends, GPUDirect
    sends) share its egress lane — the congestion of the paper's Figure 6a.
    """

    PCIE_OUT = "pcie_out"    # device egress (D2H / peer send / GPUDirect)
    PCIE_IN = "pcie_in"      # device ingress (H2D / peer receive)
    NIC_PCIE = "nic_pcie"    # NIC's own PCIe lanes (GPUDirect path)


@dataclass(frozen=True)
class LinkParams:
    """Hockney parameters of one link class.

    ``alpha``: per-message latency in seconds.
    ``bandwidth``: bytes per second available on one physical link instance.
    """

    alpha: float
    bandwidth: float

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended α + m/B time for a message of ``nbytes``."""
        return self.alpha + nbytes / self.bandwidth


@dataclass(frozen=True)
class GpuSpec:
    """GPUs attached to each socket and their bus parameters."""

    gpus_per_socket: int
    pcie: LinkParams = field(default=LinkParams(1.3e-6, 12e9))
    # Effective GPU-side reduction throughput (bytes/s) and kernel launch cost.
    reduce_bandwidth: float = 180e9
    kernel_launch: float = 4e-6
    # Number of concurrent CUDA streams for async copies/kernels.
    streams: int = 4


@dataclass(frozen=True)
class NodeSpec:
    """One node's internal layout."""

    sockets: int
    cores_per_socket: int
    gpu: GpuSpec | None = None

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def gpus(self) -> int:
        return 0 if self.gpu is None else self.sockets * self.gpu.gpus_per_socket


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster.

    ``shm``/``qpi``/``fabric`` give the per-level link parameters;
    ``nics_per_node`` bounds inter-node injection (all inter-node flows of a
    node share its NIC — the sharing Section 4 worries about).
    """

    name: str
    nodes: int
    node: NodeSpec
    shm: LinkParams = field(default=LinkParams(0.3e-6, 16e9))
    qpi: LinkParams = field(default=LinkParams(0.7e-6, 12e9))
    fabric: LinkParams = field(default=LinkParams(1.5e-6, 10e9))
    nics_per_node: int = 1
    # CPU-side per-message software overhead (LogP's `o`): posting a send or
    # recv, matching, running a completion callback.
    cpu_overhead: float = 0.4e-6
    # Memory-copy bandwidth used for staging / unexpected-message copies.
    memcpy_bandwidth: float = 6e9
    # CPU-side reduction throughput (bytes of operand reduced per second).
    cpu_reduce_bandwidth: float = 5e9
    # Compiled topology (repro.topo.CompiledTopology) riding along when this
    # spec came out of the topology compiler: MpiWorld then routes inter-node
    # traffic over the compiled link list instead of the flat NIC pair.
    # Excluded from equality/hash — the compiled model is a pure function of
    # the fields that *are* compared.
    compiled: Any = field(default=None, compare=False, repr=False)

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.node.gpus

    def level_params(self, level: CommLevel) -> LinkParams:
        """Link parameters of a CPU communication level."""
        if level == CommLevel.INTRA_SOCKET:
            return self.shm
        if level == CommLevel.INTER_SOCKET:
            return self.qpi
        if level == CommLevel.INTER_NODE:
            return self.fabric
        raise ValueError(f"no link parameters for level {level!r}")
