"""Hardware model: clusters, nodes, sockets, cores, GPUs, and link parameters.

This subsystem plays the role hwloc + the PMIx runtime play for the real
ADAPT (Section 3.2.1 of the paper): it exposes, to every rank, the placement
of every other rank and the communication level (intra-socket, inter-socket,
inter-node, PCIe hop count) between any pair — the inputs to the
topology-aware tree builder and to network path routing.
"""

from repro.machine.spec import (
    CommLevel,
    GpuSpec,
    LinkParams,
    MachineSpec,
    NodeSpec,
)
from repro.machine.topology import Placement, Topology
from repro.machine.presets import (
    TOPO_FAMILY_NAMES,
    cori,
    for_ranks,
    ranks_per_node,
    stampede2,
    psg_gpu,
    small_test_machine,
)


def from_topo(topo):
    """Lower a topology spec/compiled model to a :class:`MachineSpec`.

    Re-exported from :mod:`repro.topo` lazily — the topo package imports
    machine submodules, so a static import here would be cyclic.
    """
    from repro.topo import from_topo as _from_topo

    return _from_topo(topo)


__all__ = [
    "CommLevel",
    "GpuSpec",
    "LinkParams",
    "MachineSpec",
    "NodeSpec",
    "Placement",
    "Topology",
    "TOPO_FAMILY_NAMES",
    "cori",
    "for_ranks",
    "from_topo",
    "ranks_per_node",
    "stampede2",
    "psg_gpu",
    "small_test_machine",
]
