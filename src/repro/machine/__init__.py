"""Hardware model: clusters, nodes, sockets, cores, GPUs, and link parameters.

This subsystem plays the role hwloc + the PMIx runtime play for the real
ADAPT (Section 3.2.1 of the paper): it exposes, to every rank, the placement
of every other rank and the communication level (intra-socket, inter-socket,
inter-node, PCIe hop count) between any pair — the inputs to the
topology-aware tree builder and to network path routing.
"""

from repro.machine.spec import (
    CommLevel,
    GpuSpec,
    LinkParams,
    MachineSpec,
    NodeSpec,
)
from repro.machine.topology import Placement, Topology
from repro.machine.presets import (
    cori,
    for_ranks,
    ranks_per_node,
    stampede2,
    psg_gpu,
    small_test_machine,
)

__all__ = [
    "CommLevel",
    "GpuSpec",
    "LinkParams",
    "MachineSpec",
    "NodeSpec",
    "Placement",
    "Topology",
    "cori",
    "for_ranks",
    "ranks_per_node",
    "stampede2",
    "psg_gpu",
    "small_test_machine",
]
