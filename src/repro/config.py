"""Tunables shared across the MPI runtime and collective frameworks.

These mirror the knobs the paper discusses: the eager/rendezvous threshold
(whose handshake is the noise-propagation mechanism of Section 2.1.1), the
segment size of pipelined collectives, and ADAPT's pipeline depths ``N``
(in-flight sends per child) and ``M`` (pre-posted recvs from the parent),
with ``M > N`` to avoid unexpected messages (Section 2.2.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class RuntimeConfig:
    """Point-to-point protocol configuration."""

    # Messages at or below this size are sent eagerly (buffered on the
    # receiver if unexpected); larger messages use the rendezvous handshake.
    eager_threshold: int = 16 * 1024
    # Control messages (RTS/CTS) are latency-only wire messages of this size.
    control_bytes: int = 64
    # Reliability (opt-in, for lossy fabrics — repro.faults): every data
    # message carries a sequence number, the receiver acks delivery, and the
    # sender retransmits on timeout with exponential backoff until the retry
    # budget is exhausted, at which point the peer is reported to the failure
    # detector and the send abandoned. RTS/CTS/acks travel a reliable
    # control channel (credit-based hardware assumption, DESIGN.md S17).
    reliable: bool = False
    # First retransmission fires this long after a transmission.
    ack_timeout: float = 2e-3
    # Each further retransmission waits `backoff` times longer.
    retry_backoff: float = 2.0
    # Transmission attempts per message before declaring the peer failed.
    retry_limit: int = 10

    def with_(self, **kw) -> "RuntimeConfig":
        return replace(self, **kw)


@dataclass(frozen=True)
class CollectiveConfig:
    """Collective algorithm configuration."""

    # Pipelining: messages larger than one segment are split.
    segment_size: int = 128 * 1024
    # ADAPT depths: N concurrent in-flight sends per child, M posted recvs.
    inflight_sends: int = 2
    posted_recvs: int = 3
    # Cap on total segments to keep tiny messages single-segment.
    max_segments: int = 1024

    def with_(self, **kw) -> "CollectiveConfig":
        return replace(self, **kw)

    def segments_for(self, nbytes: int) -> list[int]:
        """Split ``nbytes`` into pipeline segment sizes.

        Every segment is ``segment_size`` bytes except a possibly smaller
        tail; a message never splits into more than ``max_segments`` pieces
        (the segment size grows instead).
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if nbytes == 0:
            return [0]
        seg = self.segment_size
        nseg = -(-nbytes // seg)  # ceil
        if nseg > self.max_segments:
            seg = -(-nbytes // self.max_segments)
            nseg = -(-nbytes // seg)
        sizes = [seg] * (nseg - 1)
        sizes.append(nbytes - seg * (nseg - 1))
        return sizes


@dataclass(frozen=True)
class ParallelConfig:
    """Sweep-execution configuration (repro.parallel).

    ``jobs`` is the worker-process count for parameter sweeps (1 = run
    in-process, sequentially). ``cache_dir`` holds the content-addressed
    result cache; ``use_cache`` turns it off wholesale (the CLI's
    ``--no-cache``). Environment overrides: ``REPRO_JOBS``,
    ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``.
    """

    jobs: int = 1
    cache_dir: str = ".repro-cache"
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def with_(self, **kw) -> "ParallelConfig":
        return replace(self, **kw)

    @classmethod
    def from_env(cls, jobs: Optional[int] = None) -> "ParallelConfig":
        """Defaults from the environment; an explicit ``jobs`` wins."""
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        return cls(
            jobs=jobs,
            cache_dir=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
            use_cache=not os.environ.get("REPRO_NO_CACHE"),
        )


DEFAULT_RUNTIME = RuntimeConfig()
DEFAULT_COLLECTIVE = CollectiveConfig()
DEFAULT_PARALLEL = ParallelConfig()
