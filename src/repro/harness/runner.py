"""Collective benchmark runner (the IMB stand-in).

One *measurement* = a fresh simulated world, an optional armed noise
injector, and ``iterations`` launches of the collective.

Two iteration modes, matching how real benchmarks behave:

* ``mode="imb"`` (default, the paper's methodology): iterations run
  back-to-back **per rank** — a rank enters iteration i+1 the moment its own
  part of iteration i returns, with no global barrier, exactly like the
  ``for (i..) MPI_Bcast(...)`` timing loop of the Intel MPI Benchmark. Ranks
  drift, successive iterations pipeline, and noise can be *absorbed* by that
  slack — the effect the paper measures. Reported times are the per-iteration
  completion intervals (total/iterations on average).
* ``mode="sequential"``: a global barrier between iterations (every iteration
  starts only after the previous fully completed). Pessimistic for noise;
  useful for isolating single-shot latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig, RuntimeConfig
from repro.libraries.presets import LibraryModel, PreparedCollective, library_by_name
from repro.machine.spec import MachineSpec
from repro.mpi.communicator import Communicator
from repro.mpi.ops import SUM, ReduceOp
from repro.mpi.runtime import MpiWorld
from repro.noise.injector import NoiseInjector


@dataclass
class RunResult:
    """Timings of one measurement."""

    library: str
    operation: str
    machine: str
    nranks: int
    nbytes: int
    noise_percent: float
    times: list[float] = field(default_factory=list)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def min_time(self) -> float:
        return float(np.min(self.times))

    @property
    def max_time(self) -> float:
        return float(np.max(self.times))

    def __str__(self) -> str:
        return (
            f"{self.library:<20} {self.operation:<8} P={self.nranks:<5} "
            f"{self.nbytes:>9}B noise={self.noise_percent:>4.1f}% "
            f"mean={self.mean_time * 1e3:8.3f} ms"
        )


def _drive(world: MpiWorld, injector: Optional[NoiseInjector], done) -> None:
    """Run the world until ``done()`` is true, keeping noise armed."""
    horizon = 0.05
    if injector is None:
        world.run()
        return
    while not done():
        injector.arm(horizon)
        world.run(until=world.engine.now + horizon)
        horizon = min(horizon * 2, 5.0)


def run_collective(
    spec: MachineSpec,
    nranks: int,
    library: Union[LibraryModel, str],
    operation: str = "bcast",
    nbytes: int = 4 << 20,
    *,
    iterations: int = 3,
    mode: str = "imb",
    noise_percent: float = 0.0,
    noise_ranks: Union[str, list[int]] = "per-node",
    noise_frequency: float = 10.0,
    seed: int = 0,
    gpu: bool = False,
    root: int = 0,
    op: ReduceOp = SUM,
    config: CollectiveConfig = DEFAULT_COLLECTIVE,
    runtime_config: Optional[RuntimeConfig] = None,
    custom_algorithm: Optional[Callable] = None,
) -> RunResult:
    """Measure one (library, operation, size, noise) point.

    ``custom_algorithm`` overrides the library's function — used by the
    Figure 8 sweeps, which iterate over Intel's per-algorithm variants.
    """
    if isinstance(library, str):
        library = library_by_name(library)
    if operation not in ("bcast", "reduce"):
        raise ValueError(f"unknown operation {operation!r}")
    if mode not in ("imb", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    world = MpiWorld(
        spec,
        nranks,
        config=runtime_config or RuntimeConfig(),
        gpu_bound=gpu,
        carry_data=False,
    )
    comm = Communicator(world)
    injector = None
    if noise_percent > 0:
        if noise_ranks == "per-node":
            # Kernel-level noise daemons steal one core per node (the
            # Beckman et al. [2] methodology the paper follows): the rank
            # sharing that core sees the noise, its node-mates do not.
            targets = sorted(
                {min(world.topology.ranks_on_node(n)) for n in range(spec.nodes)
                 if world.topology.ranks_on_node(n)}
            )
        elif noise_ranks == "all":
            targets = list(range(nranks))
        else:
            targets = list(noise_ranks)  # type: ignore[arg-type]
        injector = NoiseInjector(
            world, noise_percent, frequency_hz=noise_frequency, seed=seed,
            ranks=targets,
        )
    prepare = custom_algorithm or (
        library.bcast if operation == "bcast" else library.reduce
    )
    result = RunResult(
        library=library.name,
        operation=operation,
        machine=spec.name,
        nranks=nranks,
        nbytes=nbytes,
        noise_percent=noise_percent,
    )

    if mode == "sequential":
        for _ in range(iterations):
            start = world.engine.now
            prep: PreparedCollective = prepare(comm, root, nbytes, config, op=op)
            handle = prep.launch()
            _drive(world, injector, lambda: handle.done)
            result.times.append(max(handle.done_time.values()) - start)
        world.run()
        return result

    # -- IMB mode: per-rank chained iterations ------------------------------------
    preps: list[Optional[PreparedCollective]] = [None] * iterations
    handles = [None] * iterations

    def get_prep(i: int) -> PreparedCollective:
        p = preps[i]
        if p is None:
            p = prepare(comm, root, nbytes, config, op=op)
            preps[i] = p
        return p

    def hook(handle, i: int) -> None:
        if i + 1 >= iterations:
            return

        def rank_done(local: int, _time: float) -> None:
            nxt = get_prep(i + 1)
            if nxt.chain_ranks is None or local in nxt.chain_ranks:
                h = nxt.launch(ranks=[local])
                if handles[i + 1] is None:
                    handles[i + 1] = h
                    hook(h, i + 1)

        handle.on_rank_done.append(rank_done)
        for local, t in list(handle.done_time.items()):
            rank_done(local, t)

    start = world.engine.now
    first = get_prep(0)
    h0 = first.launch()
    handles[0] = h0
    hook(h0, 0)
    last = iterations - 1

    def all_done() -> bool:
        h = handles[last]
        return h is not None and h.done

    _drive(world, injector, all_done)
    if not all_done():  # pragma: no cover - defensive
        raise RuntimeError(f"{library.name} {operation}: iterations did not complete")
    # Per-iteration completion intervals (first includes pipeline fill).
    ends = [max(h.done_time.values()) for h in handles]  # type: ignore[union-attr]
    prev = start
    for e in ends:
        result.times.append(max(e - prev, 0.0))
        prev = max(prev, e)
    world.run()
    return result
