"""Collective benchmark runner (the IMB stand-in).

One *measurement* = a fresh simulated world, an optional armed noise
injector, and ``iterations`` launches of the collective.

Two iteration modes, matching how real benchmarks behave:

* ``mode="imb"`` (default, the paper's methodology): iterations run
  back-to-back **per rank** — a rank enters iteration i+1 the moment its own
  part of iteration i returns, with no global barrier, exactly like the
  ``for (i..) MPI_Bcast(...)`` timing loop of the Intel MPI Benchmark. Ranks
  drift, successive iterations pipeline, and noise can be *absorbed* by that
  slack — the effect the paper measures. Reported times are the per-iteration
  completion intervals (total/iterations on average).
* ``mode="sequential"``: a global barrier between iterations (every iteration
  starts only after the previous fully completed). Pessimistic for noise;
  useful for isolating single-shot latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.config import DEFAULT_COLLECTIVE, CollectiveConfig, RuntimeConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.libraries.presets import (
    ADAPT_OPERATIONS,
    LibraryModel,
    PreparedCollective,
    library_by_name,
    prepare_operation,
)
from repro.machine.spec import MachineSpec
from repro.mpi.communicator import Communicator
from repro.mpi.ops import SUM, ReduceOp
from repro.mpi.runtime import MpiWorld
from repro.noise.injector import NoiseInjector


@dataclass
class RunResult:
    """Timings of one measurement."""

    library: str
    operation: str
    machine: str
    nranks: int
    nbytes: int
    noise_percent: float
    times: list[float] = field(default_factory=list)
    seed: int = 0
    # Fault runs (repro.faults): transport counters, degraded completions,
    # and whether every iteration actually finished (a dead rank leaves
    # blocking schedules incomplete — their times become inf).
    transport: dict = field(default_factory=dict)
    degraded: bool = False
    completed: bool = True
    # Observability (repro.obs): per-run metrics (observe="metrics"/"trace"),
    # the full span dump (observe="trace" only), and whether either the
    # event trace or the span buffer hit its cap and dropped the tail.
    metrics: Optional[dict] = None
    obs: Optional[dict] = None
    trace_truncated: bool = False
    # Live recovery (repro.recovery): the membership protocol's agreed
    # failed set (world ranks) and its worst suspect-to-commit latency.
    failed_ranks: list = field(default_factory=list)
    time_to_repair: Optional[float] = None
    # Partition tolerance (repro.faults.detector): ranks the adaptive
    # detector confirmed failed and later retracted (false kills), and
    # how many membership rounds parked awaiting quorum.
    false_kills: int = 0
    quorum_parks: int = 0
    # Engine counters at the end of the run (events processed, pending,
    # cancelled-parked); the bench scale leg derives events/sec from these.
    engine_stats: dict = field(default_factory=dict)
    # Relaxed quorum collectives (repro.relaxed, DESIGN.md S25): the union
    # of contributing ranks across iterations (result provenance), the last
    # staleness-frontier epoch (0 = exact operations only), and every
    # straggler's fate as [rank, from_epoch, into_epoch] (into -1 =
    # discarded).
    contributed_ranks: list = field(default_factory=list)
    staleness_epoch: int = 0
    late_merges: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-able form (the parallel executor's wire/cache format)."""
        return {
            "library": self.library,
            "operation": self.operation,
            "machine": self.machine,
            "nranks": self.nranks,
            "nbytes": self.nbytes,
            "noise_percent": self.noise_percent,
            "times": list(self.times),
            "seed": self.seed,
            "transport": dict(self.transport),
            "degraded": self.degraded,
            "completed": self.completed,
            "metrics": self.metrics,
            "obs": self.obs,
            "trace_truncated": self.trace_truncated,
            "failed_ranks": list(self.failed_ranks),
            "time_to_repair": self.time_to_repair,
            "false_kills": self.false_kills,
            "quorum_parks": self.quorum_parks,
            "engine_stats": dict(self.engine_stats),
            "contributed_ranks": list(self.contributed_ranks),
            "staleness_epoch": self.staleness_epoch,
            "late_merges": [list(m) for m in self.late_merges],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        return cls(**d)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def min_time(self) -> float:
        return float(np.min(self.times))

    @property
    def max_time(self) -> float:
        return float(np.max(self.times))

    def __str__(self) -> str:
        line = (
            f"{self.library:<20} {self.operation:<8} P={self.nranks:<5} "
            f"{self.nbytes:>9}B noise={self.noise_percent:>4.1f}% "
            f"mean={self.mean_time * 1e3:8.3f} ms seed={self.seed}"
        )
        if self.transport:
            line += (
                f" [drops={self.transport.get('dropped', 0)}"
                f" retransmits={self.transport.get('retransmits', 0)}"
            )
            if self.degraded:
                line += " degraded"
            if not self.completed:
                line += " INCOMPLETE"
            line += "]"
        return line


def _drive(world: MpiWorld, injectors: list, done, deadline: Optional[float] = None) -> None:
    """Run the world until ``done()``, keeping noise/fault injectors armed.

    Stops early at ``deadline`` (simulated seconds) or when the world
    quiesces with nothing armed — the fate of a blocking schedule whose
    peer fail-stopped.
    """
    if not injectors and deadline is None:
        world.run()
        return
    horizon = 0.05
    while not done():
        scheduled = sum(inj.arm(horizon) for inj in injectors)
        before = world.engine.now
        world.run(until=before + horizon)
        if deadline is not None and world.engine.now >= deadline:
            break
        if world.engine.now == before and scheduled == 0:
            break  # quiesced: nothing is left that could make progress
        horizon = min(horizon * 2, 5.0)


def run_collective(
    spec: MachineSpec,
    nranks: int,
    library: Union[LibraryModel, str],
    operation: str = "bcast",
    nbytes: int = 4 << 20,
    *,
    iterations: int = 3,
    mode: str = "imb",
    noise_percent: float = 0.0,
    noise_ranks: Union[str, list[int]] = "per-node",
    noise_frequency: float = 10.0,
    seed: int = 0,
    gpu: bool = False,
    root: int = 0,
    op: ReduceOp = SUM,
    config: CollectiveConfig = DEFAULT_COLLECTIVE,
    runtime_config: Optional[RuntimeConfig] = None,
    custom_algorithm: Optional[Callable] = None,
    fault_plan: Optional[FaultPlan] = None,
    sanitize: bool = False,
    time_limit: Optional[float] = None,
    observe: Optional[str] = None,
    recover: bool = False,
    quorum: Optional[Union[int, float]] = None,
    min_quorum: int = 1,
    staleness_window: int = 1,
) -> RunResult:
    """Measure one (library, operation, size, noise) point.

    ``custom_algorithm`` overrides the library's function — used by the
    Figure 8 sweeps, which iterate over Intel's per-algorithm variants.

    ``fault_plan`` arms a :class:`~repro.faults.FaultInjector` over the run;
    a plan with losses implies the reliable transport unless
    ``runtime_config`` says otherwise, and a plan with kills bounds the
    measurement at ``time_limit`` (default 10 simulated seconds) so hanging
    schedules report ``inf`` instead of looping forever.

    ``observe`` attaches a span recorder to the world (see :mod:`repro.obs`):
    ``"metrics"`` distills it into ``result.metrics``; ``"trace"``
    additionally ships the full span dump in ``result.obs`` (the Chrome
    exporter's input). Recording is retrospective and never perturbs the
    simulated timeline — an observed run reports the exact times an
    unobserved one does.
    """
    from repro.relaxed import RELAXED_OPERATIONS, QuorumPolicy

    if isinstance(library, str):
        library = library_by_name(library)
    if operation not in ADAPT_OPERATIONS + RELAXED_OPERATIONS:
        raise ValueError(
            f"unknown operation {operation!r}; known: "
            f"{list(ADAPT_OPERATIONS) + list(RELAXED_OPERATIONS)}"
        )
    policy = None
    if operation in RELAXED_OPERATIONS:
        policy = QuorumPolicy(
            quorum=1.0 if quorum is None else quorum,
            min_quorum=min_quorum,
            staleness_window=staleness_window,
        )
    elif quorum is not None:
        raise ValueError(
            f"quorum applies only to {list(RELAXED_OPERATIONS)}, "
            f"not {operation!r}"
        )
    if mode not in ("imb", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    if observe not in (None, "metrics", "trace"):
        raise ValueError(f"unknown observe mode {observe!r}")
    if recover and mode == "imb":
        # Recovery launches every rank up front (the membership protocol
        # owns relaunch), so per-rank iteration chaining has nothing to
        # chain — run iterations back-to-back instead.
        mode = "sequential"
    if runtime_config is None:
        # Corruption needs the reliable transport too: a checksum-rejected
        # rendezvous on the raw transport is just a lost message.
        # Partitions need it likewise: severed traffic must be retried
        # (heal-before-deadline) or abandoned (confirmed failure), and the
        # raw transport can do neither.
        reliable = bool(
            fault_plan is not None
            and (fault_plan.losses or fault_plan.corrupts or fault_plan.partitions)
        )
        runtime_config = RuntimeConfig(reliable=reliable)
    if (
        fault_plan is not None
        and (fault_plan.kills or fault_plan.partitions)
        and time_limit is None
    ):
        time_limit = 10.0
    world = MpiWorld(
        spec,
        nranks,
        config=runtime_config,
        gpu_bound=gpu,
        carry_data=False,
        sanitize=sanitize,
        observe=observe is not None,
    )
    comm = Communicator(world)
    injectors: list = []
    if fault_plan is not None:
        injectors.append(FaultInjector(world, fault_plan))
    injector = None
    if noise_percent > 0:
        if noise_ranks == "per-node":
            # Kernel-level noise daemons steal one core per node (the
            # Beckman et al. [2] methodology the paper follows): the rank
            # sharing that core sees the noise, its node-mates do not.
            targets = sorted(
                {min(world.topology.ranks_on_node(n)) for n in range(spec.nodes)
                 if world.topology.ranks_on_node(n)}
            )
        elif noise_ranks == "all":
            targets = list(range(nranks))
        else:
            targets = list(noise_ranks)  # type: ignore[arg-type]
        injector = NoiseInjector(
            world, noise_percent, frequency_hz=noise_frequency, seed=seed,
            ranks=targets,
        )
        injectors.append(injector)
    prepare = custom_algorithm or prepare_operation(
        library, operation, recover=recover, policy=policy
    )
    result = RunResult(
        library=library.name,
        operation=operation,
        machine=spec.name,
        nranks=nranks,
        nbytes=nbytes,
        noise_percent=noise_percent,
        seed=seed,
    )
    deadline = (world.engine.now + time_limit) if time_limit is not None else None

    def _finalize(handles) -> None:
        result.engine_stats = world.engine.stats()
        if fault_plan is not None:
            result.transport = world.transport_stats()
            faults = world.fabric.faults
            if faults is not None:
                result.transport["dropped"] = faults._injector.dropped
                result.transport["duplicated"] = faults._injector.duplicated
                result.transport["severed"] = faults._injector.severed
                result.transport["severed_control"] = (
                    faults._injector.severed_control
                )
        live = [h for h in handles if h is not None]
        result.degraded = any(h.report.degraded for h in live)
        result.completed = bool(live) and all(h.done for h in live) and (
            len(live) == len(handles)
        )
        detector = world.failure_detector
        if detector is not None:
            result.false_kills = detector.false_kills
        membership = getattr(world, "membership", None)
        if membership is not None:
            result.failed_ranks = sorted(membership.view.failed)
            result.time_to_repair = membership.time_to_repair()
            result.quorum_parks = membership.quorum_parks
        elif live:
            agreed: set = set()
            for h in live:
                agreed |= h.report.failed_ranks
            result.failed_ranks = sorted(agreed)
        frontier = getattr(world, "staleness_frontier", None)
        if frontier is not None:
            # The run is over: parked stragglers resolve (into accounted
            # discards) so the reports below carry their final fate.
            frontier.flush_pending()
        contributed: set = set()
        for h in live:
            rep = h.report
            if rep.staleness_epoch:
                contributed |= rep.contributed_ranks
                result.staleness_epoch = max(
                    result.staleness_epoch, rep.staleness_epoch
                )
                result.late_merges.extend(list(m) for m in rep.late_merges)
        if contributed:
            result.contributed_ranks = sorted(contributed)
        if observe is not None:
            from repro.obs.metrics import compute_metrics

            result.metrics = compute_metrics(world).to_dict()
            if observe == "trace":
                result.obs = world.obs.to_dict()
        truncated = world.trace.truncated or (
            world.obs is not None and world.obs.truncated
        )
        if truncated:
            result.trace_truncated = True
            import warnings

            warnings.warn(
                f"{library.name} {operation}: event/span buffer cap hit, "
                "tail events dropped (raise max_events/max_spans for a full "
                "record)",
                RuntimeWarning,
                stacklevel=3,
            )

    if mode == "sequential":
        handles = []
        for _ in range(iterations):
            start = world.engine.now
            prep: PreparedCollective = prepare(comm, root, nbytes, config, op=op)
            handle = prep.launch()
            handles.append(handle)
            _drive(world, injectors, lambda: handle.done, deadline)
            if handle.done and handle.done_time:
                result.times.append(max(handle.done_time.values()) - start)
            else:
                result.times.append(float("inf"))
            if not handle.done:
                break  # a hung iteration will not unhang
        world.run()
        _finalize(handles)
        return result

    # -- IMB mode: per-rank chained iterations ------------------------------------
    preps: list[Optional[PreparedCollective]] = [None] * iterations
    handles = [None] * iterations

    def get_prep(i: int) -> PreparedCollective:
        p = preps[i]
        if p is None:
            p = prepare(comm, root, nbytes, config, op=op)
            preps[i] = p
        return p

    def hook(handle, i: int) -> None:
        if i + 1 >= iterations:
            return

        def rank_done(local: int, _time: float) -> None:
            nxt = get_prep(i + 1)
            if nxt.chain_ranks is None or local in nxt.chain_ranks:
                h = nxt.launch(ranks=[local])
                if handles[i + 1] is None:
                    handles[i + 1] = h
                    hook(h, i + 1)

        handle.on_rank_done.append(rank_done)
        for local, t in list(handle.done_time.items()):
            rank_done(local, t)

    start = world.engine.now
    first = get_prep(0)
    h0 = first.launch()
    handles[0] = h0
    hook(h0, 0)
    last = iterations - 1

    def all_done() -> bool:
        h = handles[last]
        return h is not None and h.done

    _drive(world, injectors, all_done, deadline)
    if not all_done():
        if fault_plan is None:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{library.name} {operation}: iterations did not complete"
            )
        # Under faults an incomplete run is a *result*: a hung schedule.
    # Per-iteration completion intervals (first includes pipeline fill).
    prev = start
    for h in handles:
        if h is not None and h.done and h.done_time:
            e = max(h.done_time.values())
            result.times.append(max(e - prev, 0.0))
            prev = max(prev, e)
        else:
            result.times.append(float("inf"))
    world.run()
    _finalize(handles)
    return result
