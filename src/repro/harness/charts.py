"""Terminal charts for experiment results.

Dependency-free ASCII rendering so the CLI and examples can show the
paper's figures as pictures, not just tables: grouped bars (Figure 7's
noise groups, Table 1's stacks) and multi-series lines over a log-x axis
(Figures 8/9's message-size sweeps, Figures 10/11's scaling curves).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _scaled_bar(value: float, vmax: float, width: int) -> str:
    """A horizontal bar of fractional-width unicode blocks."""
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = cells - full
    bar = "█" * full
    idx = int(frac * (len(_BLOCKS) - 1))
    if idx > 0:
        bar += _BLOCKS[idx]
    return bar


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 48,
    unit: str = "ms",
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        raise ValueError("bar_chart needs at least one value")
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title, "-" * len(title)]
    for label, v in values.items():
        lines.append(
            f"{label:<{label_w}} |{_scaled_bar(v, vmax, width):<{width}}| "
            f"{v:10.3f} {unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "ms",
) -> str:
    """Bars grouped under headers — e.g. per-library noise levels (Fig 7)."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    vmax = max(v for g in groups.values() for v in g.values())
    label_w = max(len(k) for g in groups.values() for k in g)
    lines = [title, "=" * len(title)]
    for group, values in groups.items():
        lines.append(group)
        for label, v in values.items():
            lines.append(
                f"  {label:<{label_w}} |{_scaled_bar(v, vmax, width):<{width}}| "
                f"{v:9.3f} {unit}"
            )
    return "\n".join(lines)


def line_chart(
    title: str,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 14,
    width: int = 64,
    logx: bool = True,
    logy: bool = True,
    y_unit: str = "ms",
) -> str:
    """Multi-series scatter/line over an optionally log-scaled plane.

    Each series gets a distinct marker; collisions show the later series'
    marker. Axis extremes are annotated.
    """
    if not series or not x:
        raise ValueError("line_chart needs x values and at least one series")
    markers = "ox+*#@%&"
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length != x length")

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    xmin, xmax = tx(min(x)), tx(max(x))
    all_y = [v for ys in series.values() for v in ys if v > 0 or not logy]
    ymin, ymax = ty(min(all_y)), ty(max(all_y))
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for xv, yv in zip(x, ys):
            col = int((tx(xv) - xmin) / xspan * (width - 1))
            row = height - 1 - int((ty(yv) - ymin) / yspan * (height - 1))
            grid[row][col] = marker
    lines = [title, "=" * len(title)]
    top_label = f"{10 ** ymax if logy else ymax:.3g} {y_unit}"
    bot_label = f"{10 ** ymin if logy else ymin:.3g} {y_unit}"
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (bot_label if i == height - 1 else "")
        lines.append(f"{prefix:>12} |{''.join(row)}")
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(
        " " * 13
        + f"{min(x):<10g}{'':^{max(0, width - 20)}}{max(x):>10g}"
    )
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(f"{'':>13} {legend}")
    return "\n".join(lines)


def experiment_line_chart(
    result,
    value_col: str = "mean_ms",
    series_col: str = "library",
    x_col: str = "nbytes",
    filters: Optional[dict] = None,
) -> str:
    """Render an :class:`ExperimentResult` sweep (Figures 8/9 style)."""
    rows = result.lookup(**filters) if filters else result.rows
    si = result.headers.index(series_col)
    xi = result.headers.index(x_col)
    vi = result.headers.index(value_col)
    xs = sorted({r[xi] for r in rows})
    series: dict[str, list[float]] = {}
    for name in sorted({r[si] for r in rows}):
        by_x = {r[xi]: r[vi] for r in rows if r[si] == name}
        if set(by_x) == set(xs):
            series[name] = [by_x[x] for x in xs]
    return line_chart(f"{result.experiment}: {result.title}", xs, series)
