"""Core performance benchmarks behind ``repro bench`` (DESIGN.md §18).

Three subsystems, three throughput numbers:

* **engine** — raw discrete-event throughput (events/sec) on a synthetic
  workload of interleaved self-rescheduling event chains with a cancelled
  fraction, exercising the heap push/pop path and lazy cancellation.
* **allocator** — max-min fair allocation rounds/sec on a dense component
  (many flows with distinct rate caps over shared links, forcing many fill
  rounds per call). Both the optimized :func:`maxmin_rates` and the pre-PR
  :func:`maxmin_rates_reference` are timed so the speedup is recorded in
  the output, not just claimed.
* **fig09** — end-to-end experiment cells/sec for the Figure 9 sweep grid,
  sequentially and (when ``--jobs`` > 1) through the process pool, with a
  byte-identity check between the two result lists.

A fourth, opt-in leg (``repro bench --scale``) measures full ADAPT
bcast/allreduce simulations at 1K/4K/16K ranks — engine events/sec over the
wall clock plus allocator rounds/sec on a world-sized component — so the
scaling story is recorded per rank count, not just on microbenchmarks.

``run_core_bench`` returns a plain dict; ``repro bench --json`` writes it
as ``BENCH_core.json`` (the CI perf-smoke artifact).
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from typing import Any, Callable, Optional

from repro import __version__
from repro.network.fairshare import maxmin_rates, maxmin_rates_reference
from repro.network.flows import Flow
from repro.network.links import Link
from repro.sim.engine import Engine

#: Benchmark sizing per scale (events for the engine workload, timed
#: allocator calls, repeated timing passes).
_SIZES = {
    "small": {"events": 200_000, "alloc_calls": 30, "repeats": 3},
    "medium": {"events": 1_000_000, "alloc_calls": 100, "repeats": 5},
    "paper": {"events": 4_000_000, "alloc_calls": 300, "repeats": 5},
}

#: The allocator scenario: enough flows with distinct caps that every call
#: runs hundreds of fill rounds — the regime the heap variant targets.
ALLOC_FLOWS = 512
ALLOC_LINKS = 32


def default_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in _SIZES:
        raise ValueError(
            f"unknown bench scale {scale!r}; choose from {sorted(_SIZES)}"
        )
    return scale


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best (minimum) wall time of ``repeats`` runs — the standard defence
    against scheduler noise on a shared machine."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- engine ----------------------------------------------------------------


def _chain_workload(n_events: int) -> Engine:
    """Interleaved event chains plus a cancelled fraction.

    64 chains each reschedule themselves with slightly different periods, so
    the heap stays mixed (no degenerate FIFO order); every 8th event also
    schedules-and-cancels a decoy to exercise lazy cancellation.
    """
    eng = Engine()
    nchains = 64
    per_chain = n_events // nchains

    def tick(chain: int, remaining: int) -> None:
        if remaining <= 0:
            return
        h = eng.call_after(2e-6, tick, chain, 0)  # decoy
        if remaining % 8:
            h.cancel()
        eng.call_after(1e-6 * (1 + chain % 7), tick, chain, remaining - 1)

    for chain in range(nchains):
        eng.call_at(1e-9 * chain, tick, chain, per_chain)
    eng.run()
    return eng


#: Events per wave in the epoch workload — sized like a large collective's
#: completion wave (one event per rank at 4K ranks).
_EPOCH_WAVE = 4096


def _epoch_workload(n_events: int) -> Engine:
    """Waves of same-timestamp events — the epoch-draining design regime.

    Deterministic collective models land whole completion waves on
    bit-identical timestamps; each wave here is one ``post_batch`` (a single
    heap touch) drained by one loop over its bucket (DESIGN.md §23).
    """
    eng = Engine()
    nwaves = max(1, n_events // _EPOCH_WAVE)
    sink = [0]

    def evt() -> None:
        sink[0] += 1

    batch = [evt] * _EPOCH_WAVE
    for wave in range(nwaves):
        eng.post_batch((wave + 1) * 1e-6, batch)
    eng.run()
    return eng


def bench_engine(scale: str) -> dict:
    """Engine throughput in both regimes.

    The headline ``events_per_sec`` is the epoch (wave) regime — the
    workload shape the two-level schedule is built for and the one large
    collective simulations present. The chain regime (scattered distinct
    timestamps, heap traffic per event) is reported alongside so the cost
    of epoch bookkeeping on unfavourable workloads stays visible.
    """
    sizes = _SIZES[scale]
    n_events = sizes["events"]
    repeats = sizes["repeats"]

    counts: list[int] = []
    epoch_s = _best_of(
        lambda: counts.append(_epoch_workload(n_events).events_processed),
        repeats,
    )
    epoch_events = counts[0]  # deterministic workload: every pass is identical

    counts.clear()
    chain_s = _best_of(
        lambda: counts.append(_chain_workload(n_events).events_processed),
        repeats,
    )
    chain_events = counts[0]

    return {
        "workload": (
            f"epoch: {_EPOCH_WAVE}-event same-timestamp waves; "
            "chain: 64 interleaved chains, 1-in-8 cancelled decoys"
        ),
        "events": epoch_events,
        "seconds": round(epoch_s, 6),
        "events_per_sec": round(epoch_events / epoch_s),
        "chain": {
            "events": chain_events,
            "seconds": round(chain_s, 6),
            "events_per_sec": round(chain_events / chain_s),
        },
    }


# -- allocator -------------------------------------------------------------


def allocator_scenario(
    nflows: int = ALLOC_FLOWS, nlinks: int = ALLOC_LINKS, seed: int = 7
) -> tuple[list[Flow], list[Link]]:
    """A dense, cap-diverse component: distinct per-flow caps force the
    progressive filling to run many rounds per call."""
    rng = random.Random(seed)
    links = [Link(f"l{i}", 1e9 * (1 + i % 7)) for i in range(nlinks)]
    flows = []
    for fid in range(nflows):
        path = rng.sample(links, rng.randint(1, min(4, nlinks)))
        flows.append(Flow(fid, path, 1 << 20, 1e6 * (fid + 1), lambda _f: None))
    return flows, links


def bench_allocator(scale: str) -> dict:
    sizes = _SIZES[scale]
    calls = sizes["alloc_calls"]
    flows, links = allocator_scenario()

    def run_calls(fn: Callable) -> None:
        for _ in range(calls):
            fn(flows, links)

    t_new = _best_of(lambda: run_calls(maxmin_rates), sizes["repeats"])
    t_ref = _best_of(lambda: run_calls(maxmin_rates_reference), sizes["repeats"])
    assert maxmin_rates(flows, links) == maxmin_rates_reference(flows, links)
    return {
        "scenario": f"{len(flows)} flows with distinct caps over {len(links)} links",
        "calls": calls,
        "rounds_per_sec": round(calls / t_new, 2),
        "reference_rounds_per_sec": round(calls / t_ref, 2),
        "speedup_vs_reference": round(t_ref / t_new, 3),
    }


# -- rank-count scaling ----------------------------------------------------

#: Default rank counts for the ``--scale`` leg (ISSUE: 1K/4K/16K).
SCALE_RANKS = (1024, 4096, 16384)

#: (operation, payload bytes) measured at each rank count. Bcast at 4 MiB is
#: the paper's headline large-message case; allreduce at 1 MiB keeps the
#: reduction pipeline in the measurement without doubling the wall time.
SCALE_OPS = (("bcast", 4 << 20), ("allreduce", 1 << 20))


def bench_scale(
    ranks: tuple[int, ...] = SCALE_RANKS, preset: str = "cori"
) -> dict:
    """End-to-end collective simulations at increasing world sizes.

    For each rank count: run ADAPT bcast/allreduce through the full harness
    (``for_ranks`` grows the preset's node count at its native ranks-per-node
    density) and report engine events/sec over the wall clock, plus max-min
    allocation rounds/sec on a component sized to that world (the regime the
    vectorized variant targets once past ``_VEC_THRESHOLD`` flows).

    Single-shot walls, not best-of-N: a 16K-rank bcast is tens of seconds,
    so repeating it would dominate the whole suite for ±10% noise that the
    events/sec figure already averages over millions of events.
    """
    from repro.harness.runner import run_collective
    from repro.machine import for_ranks

    entries = []
    for nranks in ranks:
        spec = for_ranks(preset, nranks)
        entry: dict[str, Any] = {
            "ranks": nranks,
            "nodes": spec.nodes,
            "collectives": {},
        }
        for op, nbytes in SCALE_OPS:
            t0 = time.perf_counter()
            res = run_collective(
                spec, nranks, "OMPI-adapt", op, nbytes=nbytes, iterations=1
            )
            wall = time.perf_counter() - t0
            events = int(res.engine_stats.get("events_processed", 0))
            entry["collectives"][op] = {
                "nbytes": nbytes,
                "wall_seconds": round(wall, 3),
                "sim_time_ms": round(res.mean_time * 1e3, 6),
                "events": events,
                "events_per_sec": round(events / wall) if wall > 0 else 0,
            }
        nlinks = max(ALLOC_LINKS, nranks // 16)
        flows, links = allocator_scenario(nflows=nranks, nlinks=nlinks, seed=7)
        calls = 3
        t_alloc = _best_of(
            lambda: [maxmin_rates(flows, links) for _ in range(calls)], 2
        )
        entry["allocator"] = {
            "flows": nranks,
            "links": nlinks,
            "calls": calls,
            "rounds_per_sec": round(calls / t_alloc, 3),
        }
        entries.append(entry)
    return {"preset": preset, "library": "OMPI-adapt", "entries": entries}


# -- fig09 end-to-end ------------------------------------------------------


def bench_fig09(scale: str, n_jobs: Optional[int] = None) -> dict:
    from repro.harness.experiments import fig09_msgsize
    from repro.parallel import run_jobs

    cells = fig09_msgsize.jobs("cori", scale, "bcast")
    t0 = time.perf_counter()
    seq = run_jobs(cells, n_jobs=1, cache=None)
    t_seq = time.perf_counter() - t0
    out = {
        "cells": len(cells),
        "seconds_sequential": round(t_seq, 3),
        "cells_per_sec_sequential": round(len(cells) / t_seq, 3),
    }
    if n_jobs is not None and n_jobs > 1:
        t0 = time.perf_counter()
        par = run_jobs(cells, n_jobs=n_jobs, cache=None)
        t_par = time.perf_counter() - t0
        out.update({
            "jobs": n_jobs,
            "seconds_parallel": round(t_par, 3),
            "cells_per_sec_parallel": round(len(cells) / t_par, 3),
            "parallel_speedup": round(t_seq / t_par, 3),
            "parallel_identical": (
                [r.to_dict() for r in seq] == [r.to_dict() for r in par]
            ),
        })
    return out


# -- driver ----------------------------------------------------------------


def run_core_bench(
    scale: Optional[str] = None,
    n_jobs: Optional[int] = None,
    *,
    sections: tuple[str, ...] = ("engine", "allocator", "fig09"),
    scale_ranks: tuple[int, ...] = SCALE_RANKS,
    scale_preset: str = "cori",
) -> dict:
    """Run the core benchmark suite; the returned dict is BENCH_core.json.

    Include ``"scale"`` in ``sections`` (CLI: ``repro bench --scale``) to
    append the rank-count scaling leg at ``scale_ranks`` world sizes on
    ``scale_preset`` — a flat preset or a compiled topology family
    (``fattree``/``dragonfly``/``railpod``; CLI: ``--machine``).
    """
    scale = scale or default_scale()
    if scale not in _SIZES:
        raise ValueError(
            f"unknown bench scale {scale!r}; choose from {sorted(_SIZES)}"
        )
    out: dict[str, Any] = {
        "benchmark": "BENCH_core",
        "repro_version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "scale": scale,
    }
    if "engine" in sections:
        out["engine"] = bench_engine(scale)
    if "allocator" in sections:
        out["allocator"] = bench_allocator(scale)
    if "fig09" in sections:
        out["fig09"] = bench_fig09(scale, n_jobs)
    if "scale" in sections:
        out["scale_ranks"] = bench_scale(scale_ranks, preset=scale_preset)
    return out


def render(result: dict) -> str:
    """Human-readable summary of a ``run_core_bench`` dict."""
    lines = [
        f"BENCH_core  repro {result['repro_version']}  python "
        f"{result['python']}  {result['cpu_count']} cpus  "
        f"scale={result['scale']}",
    ]
    eng = result.get("engine")
    if eng:
        lines.append(
            f"engine      {eng['events_per_sec']:>12,} events/sec   "
            f"({eng['events']:,} events in {eng['seconds']:.3f}s, epoch waves)"
        )
        chain = eng.get("chain")
        if chain:
            lines.append(
                f"            {chain['events_per_sec']:>12,} events/sec   "
                f"({chain['events']:,} events in {chain['seconds']:.3f}s, "
                f"mixed chains)"
            )
    alloc = result.get("allocator")
    if alloc:
        lines.append(
            f"allocator   {alloc['rounds_per_sec']:>12,.1f} rounds/sec   "
            f"(reference {alloc['reference_rounds_per_sec']:,.1f}; "
            f"speedup {alloc['speedup_vs_reference']:.2f}x)"
        )
    sc = result.get("scale_ranks")
    if sc:
        for entry in sc["entries"]:
            for op, cell in entry["collectives"].items():
                lines.append(
                    f"scale {entry['ranks']:>6,} ranks  {op:<9} "
                    f"{cell['events_per_sec']:>10,} events/sec   "
                    f"({cell['events']:,} events in {cell['wall_seconds']:.1f}s"
                    f", sim {cell['sim_time_ms']:.3f}ms)"
                )
            alloc = entry["allocator"]
            lines.append(
                f"scale {entry['ranks']:>6,} ranks  allocator "
                f"{alloc['rounds_per_sec']:>10,.2f} rounds/sec   "
                f"({alloc['flows']:,} flows over {alloc['links']} links)"
            )
    fig = result.get("fig09")
    if fig:
        lines.append(
            f"fig09       {fig['cells_per_sec_sequential']:>12,.3f} cells/sec   "
            f"({fig['cells']} cells in {fig['seconds_sequential']:.2f}s, "
            f"sequential)"
        )
        if "cells_per_sec_parallel" in fig:
            ident = "identical" if fig["parallel_identical"] else "MISMATCH"
            lines.append(
                f"            {fig['cells_per_sec_parallel']:>12,.3f} cells/sec   "
                f"(--jobs {fig['jobs']}; speedup "
                f"{fig['parallel_speedup']:.2f}x, results {ident})"
            )
    return "\n".join(lines)


def write_json(result: dict, path: str) -> None:
    dirname = os.path.dirname(path)
    if dirname:
        os.makedirs(dirname, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
