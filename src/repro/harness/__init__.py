"""Experiment harness: runners, sweeps, and per-figure experiment drivers."""

from repro.harness.runner import RunResult, run_collective
from repro.harness.report import format_table, slowdown_percent

__all__ = ["RunResult", "run_collective", "format_table", "slowdown_percent"]
