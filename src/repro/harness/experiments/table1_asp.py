"""Table 1 — ASP (parallel Floyd-Warshall) application performance
(Section 5.3).

The paper runs ASP with problem size 256K on 1K Cori cores and reports
communication vs total runtime for {Cray, Intel MPI, OMPI-adapt,
OMPI-tuned}: ADAPT spends 38% of the runtime communicating, Cray 48%, Intel
and tuned over 80%.

We run the same communication/compute pattern (one ~1 MB broadcast with a
rotating root per iteration, fixed relaxation compute per iteration) at a
scaled-down iteration count — DESIGN.md documents the scaling; the
reproduced quantity is the per-library communication share and ordering.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, sweep
from repro.machine import cori
from repro.parallel import SimJob

LIBRARIES = ["Cray MPI", "Intel MPI", "OMPI-adapt", "OMPI-default"]


def jobs(scale: str = "small", iterations: int | None = None) -> list[SimJob]:
    """One ASP application run per library, in table-row order."""
    iters = iterations or {"small": 24, "medium": 48, "paper": 256}[scale]
    return [
        SimJob(
            kind="asp",
            machine="cori",
            nodes=SCALES[scale]["cori_nodes"],
            library=lib,
            iterations=iters,
        )
        for lib in LIBRARIES
    ]


def run(
    scale: str = "small",
    iterations: int | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    nranks = cori(nodes=SCALES[scale]["cori_nodes"]).total_cores
    iters = iterations or {"small": 24, "medium": 48, "paper": 256}[scale]
    cells = jobs(scale, iterations)
    result = ExperimentResult(
        experiment="Table 1",
        title=f"ASP, cori, {nranks} ranks, {iters} iterations of 1 MB rows",
        headers=["library", "communication_s", "total_s", "comm_fraction"],
        notes=["paper: ADAPT 38% communication, Cray 48%, Intel/tuned >80%"],
    )
    for job, res in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        result.add(
            job.library,
            round(res.communication_time, 4),
            round(res.total_runtime, 4),
            round(res.communication_fraction, 3),
        )
    return result
