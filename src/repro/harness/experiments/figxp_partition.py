"""Figure X-P (ours) — partition tolerance: heal time vs completion.

Companion to :mod:`figx_recovery` (DESIGN.md S22): where Figure X-R kills
ranks outright, this experiment *partitions* the fabric — a contiguous
minority third of the machine is severed mid-collective — and sweeps the
heal time across the adaptive failure detector's deadline (the phi
threshold crossing plus the confirmation delay, ~19.4 ms at defaults):

* **heal before the deadline** — the partition is absorbed: severed
  traffic parks on the reliable transport and resumes at the heal, the
  phi-accrual detector never confirms a failure, and the collective
  completes on the *original* tree with zero false kills (``status=ok``).
* **heal after the deadline** — the cut falls through to the kill path:
  the quorum side commits a survivor view excluding the minority,
  completes degraded (``status=recovered``), and the healed stragglers
  are evicted at reconcile time. Every evicted rank was ground-truth
  alive — the ``false_kills`` column counts them, the figure's cost-of-
  impatience axis.

The Waitall comparator rows ride the same plans: the blocking schedule
always completes *eventually* (the reliable transport retries through the
heal), but its completion time tracks the full partition duration —
unbounded as the heal recedes — where ADAPT's is capped at the detection
deadline by the degraded completion. A partition that never heals would
hang Waitall forever (``status=hung``); the sweep keeps heals finite so
the cost shows up as latency, the honest axis.

Determinism: seeded plans, the RNG-free membership protocol, and the
event-count-free detector make the emitted JSON byte-identical across
worker counts (CI asserts ``--jobs 1`` vs ``--jobs 2``).
"""

from __future__ import annotations

import math

from repro.faults import FaultPlan, PartitionSpec
from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    fmt_bytes,
    sweep,
)
from repro.libraries.presets import ADAPT_OPERATIONS
from repro.machine import cori
from repro.parallel import SimJob

MSG = 256 << 10
ITERS = 1
#: Fraction of the fault-free single-shot time at which the cut lands.
PART_FRACTION = 0.3
#: Heal times as multiples of the detection deadline: two cells safely
#: inside the retraction window, two safely past it.
HEAL_FACTORS = (0.25, 0.5, 2.0, 4.0)
#: Waitall-style comparator, for the operations the baselines implement.
COMPARATOR = "OMPI-default-topo"
COMPARATOR_OPS = ("bcast", "reduce")


def detection_deadline(plan_defaults: FaultPlan | None = None) -> float:
    """Silence that confirms a failure: phi crossing + confirm delay."""
    p = plan_defaults or FaultPlan()
    return (
        p.phi_threshold * p.heartbeat_period * math.log(10.0)
        + p.detect_delay
    )


def status_of(r) -> str:
    if not r.completed:
        return "hung"
    return "recovered" if r.degraded else "ok"


def _partition_groups(nranks: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Majority prefix (with the root) vs a contiguous minority third."""
    cut = nranks - nranks // 3
    return tuple(range(cut)), tuple(range(cut, nranks))


def run(
    scale: str = "small",
    *,
    n_jobs: int | None = None,
    cache=None,
    operations: tuple[str, ...] = ADAPT_OPERATIONS,
) -> ExperimentResult:
    """Two-stage sweep: fault-free probes calibrate each cut time (stage 1);
    the heal-time grid and comparator cells fan out from them (stage 2)."""
    cfg = SCALES[scale]
    spec = cori(nodes=cfg["cori_nodes"])
    nranks = spec.total_cores
    nodes = cfg["cori_nodes"]
    groups = _partition_groups(nranks)
    minority = groups[1]
    deadline = detection_deadline()
    result = ExperimentResult(
        experiment="Figure X-P",
        title=(
            f"partition tolerance, cori, {nranks} ranks, {fmt_bytes(MSG)}, "
            f"minority={len(minority)} ranks"
        ),
        headers=["operation", "heal_ms", "library", "status", "false_kills",
                 "failed", "ttr_ms", "severed", "mean_ms"],
        notes=[
            f"a contiguous minority of {len(minority)} rank(s) is severed at "
            f"{PART_FRACTION:g}x the fault-free time; heal swept at "
            f"{', '.join(f'{f:g}x' for f in HEAL_FACTORS)} the detection "
            f"deadline ({deadline * 1e3:.1f} ms: phi crossing + confirm)",
            "heal < deadline: absorbed — parked sends resume, original "
            "tree, zero false kills (status 'ok')",
            "heal > deadline: kill-path fall-through — quorum side commits "
            "a survivor view, healed stragglers are evicted; false_kills "
            "counts evicted-though-alive ranks",
            "comparator rows: the Waitall schedule under the same cut — "
            "it completes only after the heal, so its latency tracks the "
            "partition duration where OMPI-adapt's is capped at the "
            "deadline; its false_kills count ranks the detector confirmed "
            "then retracted ('hung' = never completed, reported inf)",
        ],
    )

    probe_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library="OMPI-adapt", operation=op,
            nbytes=MSG, iterations=1, mode="sequential", seed=1,
        )
        for op in operations
    ]
    probes = sweep(probe_jobs, n_jobs=n_jobs, cache=cache)

    def plan_for(probe, factor: float) -> FaultPlan:
        start = PART_FRACTION * probe.mean_time
        return FaultPlan(
            partitions=[
                PartitionSpec(
                    groups=groups, start=start,
                    heal=start + factor * deadline,
                )
            ],
            seed=3,
        )

    adapt_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library="OMPI-adapt", operation=op,
            nbytes=MSG, iterations=ITERS, mode="sequential", seed=1,
            recover=True, fault_plan=plan_for(probe, factor),
        )
        for op, probe in zip(operations, probes)
        for factor in HEAL_FACTORS
    ]
    comparator_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library=COMPARATOR, operation=op,
            nbytes=MSG, iterations=ITERS, mode="sequential", seed=1,
            fault_plan=plan_for(probe, factor),
            # Waitall completes shortly after the heal (<= ~0.13 s at the
            # 4x cell); the limit only guards against a real hang.
            time_limit=0.5,
        )
        for op, probe in zip(operations, probes)
        for factor in HEAL_FACTORS
        if op in COMPARATOR_OPS
    ]
    stage2 = sweep(adapt_jobs + comparator_jobs, n_jobs=n_jobs, cache=cache)
    adapts = stage2[: len(adapt_jobs)]
    comparators = stage2[len(adapt_jobs):]

    def add_row(op: str, factor: float, probe, library: str, r) -> None:
        mean = r.mean_time
        ttr = r.time_to_repair
        heal_ms = (PART_FRACTION * probe.mean_time + factor * deadline) * 1e3
        result.add(
            op, round(heal_ms, 3), library, status_of(r),
            r.false_kills,
            ",".join(map(str, r.failed_ranks)) or "-",
            round(ttr * 1e3, 3) if ttr is not None else None,
            r.transport.get("severed", 0),
            round(mean * 1e3, 3) if math.isfinite(mean) else float("inf"),
        )

    it = iter(adapts)
    for op, probe in zip(operations, probes):
        for factor in HEAL_FACTORS:
            add_row(op, factor, probe, "OMPI-adapt", next(it))
    comp_it = iter(comparators)
    for op, probe in zip(operations, probes):
        if op not in COMPARATOR_OPS:
            continue
        for factor in HEAL_FACTORS:
            add_row(op, factor, probe, COMPARATOR, next(comp_it))
    return result
