"""Figure 7 — noise impact on broadcast and reduce (Section 5.1.1).

The paper injects uniform-duration noise at a fixed low frequency — 0-10 ms
@10 Hz ("5%", i.e. 5% duty cycle) and 0-20 ms @10 Hz ("10%") — and reports
each library's slowdown at 4 MB. Figure 7a (Cori) compares {Intel MPI,
Cray MPI, OMPI-default, OMPI-adapt}; Figure 7b (Stampede2) compares
{Intel MPI, MVAPICH, OMPI-default, OMPI-adapt} with the MVAPICH reduce row
absent (the paper reports it segfaults at 4 MB).

Methodological scaling (documented in DESIGN/EXPERIMENTS): the paper's noise
regime is *long-duration, low-frequency* relative to the collective — events
a few times longer than one collective, arriving much less often than one
per collective. At our smaller simulated scale the collectives are faster,
so we preserve the regime by scaling the event duration to 4x the measured
noise-free time of each library's collective and deriving the frequency from
the requested duty cycle; noise comes from a single source process placed
mid-tree (the propagation methodology of the paper's Section 2 analysis).
Measurements chain iterations per rank (the IMB loop) over a window covering
many noise periods.

Shape claims the bench asserts: OMPI-adapt's slowdown is the smallest at
both noise levels, and blocking/ring-based libraries amplify noise by a
large factor over ADAPT.
"""

from __future__ import annotations


from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    machine_nodes,
    sweep,
)
from repro.harness.report import slowdown_percent
from repro.machine import cori, stampede2
from repro.parallel import SimJob

MSG = 4 << 20
NOISE_LEVELS = (5.0, 10.0)
DURATION_FACTOR = 4.0   # noise event max duration = 4x collective time
# 80 chained iterations cover ~2 noise periods at 5% duty and ~4 at 10%
# (noise frequency is derived from the duty cycle and the scaled event
# duration); events arrive at fixed frequency, so the event *count* per
# window is deterministic and only durations are random — enough sampling
# for stable slowdown ordering at fixed seeds.
MAX_ITERS = 80
PROBE_ITERS = 12        # short calibration run to size the noise events


def _machine(name: str, scale: str):
    cfg = SCALES[scale]
    if name == "cori":
        return cori(nodes=cfg["cori_nodes"])
    if name == "stampede2":
        return stampede2(nodes=cfg["stampede2_nodes"])
    raise ValueError(f"unknown machine {name!r}")


def libraries(machine: str) -> list[str]:
    if machine == "cori":
        return ["Intel MPI", "Cray MPI", "OMPI-default", "OMPI-adapt"]
    return ["Intel MPI", "MVAPICH", "OMPI-default", "OMPI-adapt"]


def _steady_mean(run) -> float:
    # Drop the first interval (pipeline fill) so measurements with
    # different iteration counts are comparable.
    times = run.times[1:] if len(run.times) > 1 else run.times
    return sum(times) / len(times)


def _pairs(machine: str) -> list[tuple[str, str]]:
    # The paper's MVAPICH reduce segfaults at 4 MB, hence the missing row.
    return [
        (operation, lib)
        for operation in ("bcast", "reduce")
        for lib in libraries(machine)
        if not (operation == "reduce" and lib == "MVAPICH")
    ]


def run(
    machine: str = "cori",
    scale: str = "small",
    *,
    n_jobs: int | None = None,
    cache=None,
    msg: int = MSG,
    max_iters: int = MAX_ITERS,
    probe_iters: int = PROBE_ITERS,
) -> ExperimentResult:
    """Two-stage sweep: the calibration probes and noise-free baselines are
    all independent (stage 1); the noisy measurements depend on each probe's
    time — their event duration and frequency derive from it — so they form
    a second fan-out (stage 2)."""
    spec = _machine(machine, scale)
    nodes = machine_nodes(machine, scale)
    nranks = spec.total_cores
    noisy_rank = nranks // 3  # an intermediate rank in every topology
    result = ExperimentResult(
        experiment="Figure 7" + ("a" if machine == "cori" else "b"),
        title=f"noise impact, {machine}, {nranks} ranks, 4 MB",
        headers=["operation", "library", "noise%", "mean_ms", "slowdown%",
                 "sync_wait%"],
        notes=[
            f"single noise source (rank {noisy_rank}); event duration scaled to "
            f"{DURATION_FACTOR}x the noise-free collective time, duty cycle as labelled",
        ],
    )
    pairs = _pairs(machine)

    def cell(operation: str, lib: str, **kw) -> SimJob:
        return SimJob(
            machine=machine, nodes=nodes, library=lib, operation=operation,
            nbytes=msg, seed=1, **kw,
        )

    # Stage 1: a short probe sizes the noise events; the reported baseline
    # runs over the same iteration count as the noisy measurements, so
    # deep-pipeline convergence effects cancel in the slowdown.
    probe_jobs = [cell(op, lib, iterations=probe_iters) for op, lib in pairs]
    base_jobs = [
        cell(op, lib, iterations=max_iters, observe="metrics")
        for op, lib in pairs
    ]
    stage1 = sweep(probe_jobs + base_jobs, n_jobs=n_jobs, cache=cache)
    probes, bases = stage1[: len(pairs)], stage1[len(pairs):]

    # Stage 2: noisy measurements, parameterized by the probe results.
    noisy_jobs = []
    for (operation, lib), probe in zip(pairs, probes):
        max_duration = DURATION_FACTOR * _steady_mean(probe)
        for noise in NOISE_LEVELS:
            freq = (noise / 100.0) / (max_duration / 2.0)
            noisy_jobs.append(SimJob(
                machine=machine, nodes=nodes, library=lib, operation=operation,
                nbytes=msg, iterations=max_iters, noise_percent=noise,
                noise_ranks=(noisy_rank,), seed=int(noise) + 1,
                noise_frequency=freq, observe="metrics",
            ))
    stage2 = iter(sweep(noisy_jobs, n_jobs=n_jobs, cache=cache))

    def _sync_wait_pct(run) -> float:
        m = run.metrics or {}
        return round(100.0 * m.get("sync_wait_fraction", 0.0), 2)

    for (operation, lib), base_run in zip(pairs, bases):
        base = _steady_mean(base_run)
        result.add(operation, lib, 0.0, round(base * 1e3, 3), 0.0,
                   _sync_wait_pct(base_run))
        for noise in NOISE_LEVELS:
            r = next(stage2)
            slow = slowdown_percent(_steady_mean(r), base)
            result.add(operation, lib, noise, round(_steady_mean(r) * 1e3, 3),
                       round(slow, 1), _sync_wait_pct(r))
    return result
