"""Figure Q (ours) — the SGD staleness frontier: accuracy vs latency.

Companion to :mod:`figx_recovery` and :mod:`figxp_partition` (DESIGN.md
S25): where those experiments measure what *exact* collectives cost under
faults, this one measures what giving up exactness *buys*. Data-parallel
SGD (:mod:`repro.apps.sgd`) averages gradients every epoch; the sweep
crosses three disturbance scenarios with a staleness-policy grid:

* **scenarios** — a seeded straggler grid (``FaultPlan.stall_sweep``), a
  mid-run fail-stop (``FaultPlan.single_kill``), and fig07-style injected
  OS noise. Each also runs fault-free as its own control.
* **variants** — exact ADAPT allreduce (``quorum=None``: every epoch is a
  barrier), the quorum grid (``allreduce_quorum`` at quorum x staleness
  window), and a Waitall-style latency comparator (the blocking baseline
  under the same plan; it computes no gradients, so its accuracy column
  is ``-``).

Every quorum row reports both axes of the frontier: ``runtime_ms`` (what
relaxation buys) and ``excess_loss`` (what it costs — the replayed
optimization's distance from the synchronous optimum), plus the full
contribution accounting (``on_time``/``late``/``disc``) certifying that
no gradient was silently lost (the sanitizer's conservation rule).

Determinism: seeded plans and the event-count-free engine make the
emitted JSON byte-identical across worker counts (CI asserts ``--jobs 1``
vs ``--jobs 2``).
"""

from __future__ import annotations

import math

from repro.faults import FaultPlan
from repro.harness.experiments.common import ExperimentResult, fmt_bytes, sweep
from repro.parallel import SimJob

#: The sgd cells: epochs x gradient size x per-epoch compute. Sized so one
#: straggler epoch dominates an epoch's critical path (the frontier's
#: interesting regime) while the whole grid stays a sub-second sweep.
EPOCHS = 6
GRAD_BYTES = 16 << 10
COMPUTE = 5e-4
#: Policy grid: completion quorum x staleness window.
QUORUMS = (0.75, 0.9)
WINDOWS = (1, 2)
#: Waitall-style comparator (latency only — it computes no gradients).
COMPARATOR = "OMPI-default-topo"

#: Scale -> testbox nodes (8 ranks/node) for the sgd world.
_NODES = {"small": 2, "medium": 4, "paper": 8}


def _scenarios(nranks: int) -> list[tuple[str, FaultPlan | None, float]]:
    """(name, fault plan, noise_percent) — the disturbance axis."""
    return [
        ("fault-free", None, 0.0),
        # Two stragglers stall for longer than the whole run: exact SGD
        # waits out the stall, the quorum rows never do.
        ("stall", FaultPlan.stall_sweep(
            nranks, victims=2, duration=8e-3, start=2e-3, seed=5,
        ), 0.0),
        # One straggler lags by ~2 epochs: its stale gradients come back
        # while later epochs are still open, so the staleness *window*
        # decides merge-vs-discard (the axis the long stall can't show).
        ("lag", FaultPlan.stall_sweep(
            nranks, victims=1, duration=1.1e-3, start=5e-4, seed=7,
        ), 0.0),
        # One rank dies mid-run; the quorum shrinks, exact ADAPT degrades.
        ("fail-stop", FaultPlan.single_kill(nranks - 2, 2e-3), 0.0),
        ("noise", None, 2.5),
    ]


def run(
    scale: str = "small",
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    nodes = _NODES.get(scale, _NODES["small"])
    nranks = nodes * 8
    scenarios = _scenarios(nranks)
    result = ExperimentResult(
        experiment="Figure Q",
        title=(
            f"SGD staleness frontier, testbox, {nranks} ranks, "
            f"{EPOCHS} epochs, {fmt_bytes(GRAD_BYTES)} gradients"
        ),
        headers=["scenario", "variant", "quorum", "window", "runtime_ms",
                 "excess_loss", "on_time", "late", "disc", "status"],
        notes=[
            "exact rows: every epoch is a barrier (ADAPT allreduce); "
            "quorum rows: epochs seal at the quorum, stragglers merge "
            "into a later epoch inside the window or are discarded with "
            "accounting",
            "excess_loss: f(x_final) - f(x*) of the replayed quadratic — "
            "the numerical price of the staleness the schedule produced "
            "(0 = exactly the synchronous optimum path)",
            "on_time: fraction of all rank-epoch gradients that made "
            "their own epoch's quorum; late/disc: merged-late vs "
            "discarded counts (conservation-checked — nothing is "
            "silently lost)",
            f"comparator rows: {COMPARATOR} reduce under the same plan — "
            "latency of the blocking schedule, no gradient replay "
            "('hung' = never completed)",
        ],
    )

    def sgd_job(plan, noise, quorum, window) -> SimJob:
        return SimJob(
            kind="sgd", machine="testbox", nodes=nodes, nranks=nranks,
            library="OMPI-adapt",
            operation="allreduce" if quorum is None else "allreduce_quorum",
            nbytes=GRAD_BYTES, iterations=EPOCHS,
            compute_per_iteration=COMPUTE,
            quorum=quorum, staleness_window=window,
            noise_percent=noise, noise_frequency=2000.0, seed=4,
            fault_plan=plan,
            sanitize=plan is None or not plan.kills,
            time_limit=0.5 if plan is not None and plan.kills else None,
        )

    jobs: list[SimJob] = []
    labels: list[tuple[str, str, object, object]] = []
    for name, plan, noise in scenarios:
        jobs.append(sgd_job(plan, noise, None, 1))
        labels.append((name, "exact", "-", "-"))
        for q in QUORUMS:
            for w in WINDOWS:
                jobs.append(sgd_job(plan, noise, q, w))
                labels.append((name, "quorum", q, w))
        jobs.append(SimJob(
            kind="collective", machine="testbox", nodes=nodes,
            nranks=nranks, library=COMPARATOR, operation="reduce",
            nbytes=GRAD_BYTES, iterations=EPOCHS, mode="sequential",
            noise_percent=noise, noise_frequency=2000.0, seed=4,
            fault_plan=plan, time_limit=0.5,
        ))
        labels.append((name, "waitall", "-", "-"))

    results = sweep(jobs, n_jobs=n_jobs, cache=cache)

    for (name, variant, q, w), r in zip(labels, results):
        if variant == "waitall":
            mean = r.mean_time
            total = mean * EPOCHS if math.isfinite(mean) else float("inf")
            result.add(
                name, variant, q, w,
                round(total * 1e3, 3) if math.isfinite(total) else float("inf"),
                "-", "-", "-", "-",
                "ok" if r.completed else "hung",
            )
            continue
        status = "ok" if r.completed else "hung"
        if r.completed and r.degraded:
            status = "degraded"
        result.add(
            name, variant, q, w,
            round(r.total_runtime * 1e3, 3) if r.completed else float("inf"),
            round(r.excess_loss, 6),
            round(r.on_time_fraction, 4),
            r.late_merged, r.discarded, status,
        )
    return result
