"""Figure X (ours) — collectives on a faulty fabric (DESIGN.md §17).

The paper evaluates ADAPT under *noise*; this companion experiment evaluates
it under *faults*, using the fault-injection layer (``repro.faults``):

* **Loss sweep** — every link drops each data transfer independently with
  probability p ∈ {0, 0.5%, 1%, 2%}. The reliable transport (ack/retransmit,
  duplicate suppression) is enabled for every point including p=0, so the
  baseline already pays the ack overhead and the slowdown isolates the cost
  of *recovery*, not of the protocol. ADAPT's event-driven schedules absorb
  retransmit delay the same way they absorb noise — a late segment only
  delays its own subtree — while the Waitall-style comparator
  (OMPI-default-topo: same topology-aware tree, nonblocking + Waitall)
  resynchronizes every rank on the slowest retransmission.

* **Fail-stop** — one non-root interior rank is killed partway through the
  collective. ADAPT's degraded mode re-routes around the corpse (the parent
  adopts the orphaned grandchildren; a reduce drops the dead subtree's
  contribution) and completes with ``status=degraded``. The Waitall schedule
  has no recovery path: its survivors block forever and the run reports
  ``hung`` (times are ``inf``).

Shape claims the bench asserts: ADAPT completes every point (ok/degraded,
never hung); retransmits grow with the drop rate; the killed-rank row is
``degraded`` for ADAPT and ``hung`` for the Waitall comparator.
"""

from __future__ import annotations

import math

from repro.faults import FaultPlan, KillSpec, LossSpec
from repro.harness.experiments.common import SCALES, ExperimentResult, fmt_bytes
from repro.harness.runner import run_collective
from repro.harness.report import slowdown_percent
from repro.machine import cori

MSG = 512 << 10
DROP_RATES = (0.0, 0.005, 0.01, 0.02)
LIBRARIES = ("OMPI-adapt", "OMPI-default-topo")
ITERS = 4
#: Fraction of the fault-free single-shot time at which the victim is killed.
KILL_FRACTION = 0.3


def fault_label(drop: float) -> str:
    return "none" if drop == 0 else f"drop {drop * 100:g}%"


def run(scale: str = "small") -> ExperimentResult:
    cfg = SCALES[scale]
    spec = cori(nodes=cfg["cori_nodes"])
    nranks = spec.total_cores
    victim = nranks // 3  # an interior, non-root rank in every topology
    result = ExperimentResult(
        experiment="Figure X",
        title=f"faulty fabric, cori, {nranks} ranks, {fmt_bytes(MSG)}",
        headers=["operation", "library", "fault", "mean_ms", "slowdown%",
                 "retransmits", "status"],
        notes=[
            "reliable transport (ack/retransmit) enabled at every point, "
            "including the drop-0 baseline",
            f"kill rows: rank {victim} fail-stops at "
            f"{KILL_FRACTION:g}x the fault-free time; 'hung' means the "
            "schedule never completed (reported inf)",
        ],
    )

    def status(r) -> str:
        if not r.completed:
            return "hung"
        return "degraded" if r.degraded else "ok"

    for operation in ("bcast", "reduce"):
        for lib in LIBRARIES:
            base = None
            for drop in DROP_RATES:
                # One seed across the sweep: the drop decisions at a higher
                # rate are a superset of the lower rate's (same uniform
                # stream), so retransmit counts grow with the rate.
                plan = FaultPlan(
                    losses=[LossSpec(drop=drop, duplicate=drop / 10)], seed=2
                )
                r = run_collective(
                    spec, nranks, lib, operation, MSG,
                    iterations=ITERS, seed=1, fault_plan=plan,
                )
                mean = r.mean_time
                if base is None:
                    base = mean
                slow = slowdown_percent(mean, base) if math.isfinite(mean) else float("inf")
                result.add(
                    operation, lib, fault_label(drop),
                    round(mean * 1e3, 3), round(slow, 1),
                    r.transport.get("retransmits", 0), status(r),
                )
            # Fail-stop: single-shot latency, kill mid-collective.
            probe = run_collective(
                spec, nranks, lib, operation, MSG,
                iterations=1, mode="sequential", seed=1,
            )
            kill_at = KILL_FRACTION * probe.mean_time
            plan = FaultPlan(kills=[KillSpec(rank=victim, time=kill_at)], seed=3)
            r = run_collective(
                spec, nranks, lib, operation, MSG,
                iterations=1, mode="sequential", seed=1, fault_plan=plan,
            )
            mean = r.mean_time
            slow = (
                slowdown_percent(mean, probe.mean_time)
                if math.isfinite(mean) else float("inf")
            )
            result.add(
                operation, lib, f"kill rank {victim}",
                round(mean * 1e3, 3) if math.isfinite(mean) else float("inf"),
                round(slow, 1) if math.isfinite(slow) else float("inf"),
                r.transport.get("retransmits", 0), status(r),
            )
    return result
