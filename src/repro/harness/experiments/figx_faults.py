"""Figure X (ours) — collectives on a faulty fabric (DESIGN.md §17).

The paper evaluates ADAPT under *noise*; this companion experiment evaluates
it under *faults*, using the fault-injection layer (``repro.faults``):

* **Loss sweep** — every link drops each data transfer independently with
  probability p ∈ {0, 0.5%, 1%, 2%}. The reliable transport (ack/retransmit,
  duplicate suppression) is enabled for every point including p=0, so the
  baseline already pays the ack overhead and the slowdown isolates the cost
  of *recovery*, not of the protocol. ADAPT's event-driven schedules absorb
  retransmit delay the same way they absorb noise — a late segment only
  delays its own subtree — while the Waitall-style comparator
  (OMPI-default-topo: same topology-aware tree, nonblocking + Waitall)
  resynchronizes every rank on the slowest retransmission.

* **Fail-stop** — one non-root interior rank is killed partway through the
  collective. ADAPT's degraded mode re-routes around the corpse (the parent
  adopts the orphaned grandchildren; a reduce drops the dead subtree's
  contribution) and completes with ``status=degraded``. The Waitall schedule
  has no recovery path: its survivors block forever and the run reports
  ``hung`` (times are ``inf``).

Shape claims the bench asserts: ADAPT completes every point (ok/degraded,
never hung); retransmits grow with the drop rate; the killed-rank row is
``degraded`` for ADAPT and ``hung`` for the Waitall comparator.
"""

from __future__ import annotations

import math

from repro.faults import FaultPlan, KillSpec, LossSpec
from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    fmt_bytes,
    sweep,
)
from repro.harness.report import slowdown_percent
from repro.machine import cori
from repro.parallel import SimJob

MSG = 512 << 10
DROP_RATES = (0.0, 0.005, 0.01, 0.02)
LIBRARIES = ("OMPI-adapt", "OMPI-default-topo")
ITERS = 4
#: Fraction of the fault-free single-shot time at which the victim is killed.
KILL_FRACTION = 0.3


def fault_label(drop: float) -> str:
    return "none" if drop == 0 else f"drop {drop * 100:g}%"


def run(
    scale: str = "small",
    *,
    n_jobs: int | None = None,
    cache=None,
    operations: tuple[str, ...] = ("bcast", "reduce"),
    drops: tuple[float, ...] = DROP_RATES,
) -> ExperimentResult:
    """Two-stage sweep: the loss-sweep cells and the fault-free kill probes
    are all independent (stage 1); each kill cell's fail-stop time derives
    from its probe, so the kill runs form a second fan-out (stage 2)."""
    cfg = SCALES[scale]
    spec = cori(nodes=cfg["cori_nodes"])
    nranks = spec.total_cores
    nodes = cfg["cori_nodes"]
    victim = nranks // 3  # an interior, non-root rank in every topology
    result = ExperimentResult(
        experiment="Figure X",
        title=f"faulty fabric, cori, {nranks} ranks, {fmt_bytes(MSG)}",
        headers=["operation", "library", "fault", "mean_ms", "slowdown%",
                 "retransmits", "status"],
        notes=[
            "reliable transport (ack/retransmit) enabled at every point, "
            "including the drop-0 baseline",
            f"kill rows: rank {victim} fail-stops at "
            f"{KILL_FRACTION:g}x the fault-free time; 'hung' means the "
            "schedule never completed (reported inf)",
        ],
    )

    def status(r) -> str:
        if not r.completed:
            return "hung"
        return "degraded" if r.degraded else "ok"

    pairs = [(op, lib) for op in operations for lib in LIBRARIES]

    # Stage 1: the loss sweep (one seed across the sweep: the drop decisions
    # at a higher rate are a superset of the lower rate's — same uniform
    # stream — so retransmit counts grow with the rate) plus the fault-free
    # single-shot probes that calibrate each kill time.
    loss_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library=lib, operation=op,
            nbytes=MSG, iterations=ITERS, seed=1,
            fault_plan=FaultPlan(
                losses=[LossSpec(drop=drop, duplicate=drop / 10)], seed=2
            ),
        )
        for op, lib in pairs
        for drop in drops
    ]
    probe_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library=lib, operation=op,
            nbytes=MSG, iterations=1, mode="sequential", seed=1,
        )
        for op, lib in pairs
    ]
    stage1 = sweep(loss_jobs + probe_jobs, n_jobs=n_jobs, cache=cache)
    loss_runs = stage1[: len(loss_jobs)]
    probes = stage1[len(loss_jobs):]

    # Stage 2: fail-stop mid-collective, timed off each probe.
    kill_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library=lib, operation=op,
            nbytes=MSG, iterations=1, mode="sequential", seed=1,
            fault_plan=FaultPlan(
                kills=[KillSpec(rank=victim, time=KILL_FRACTION * probe.mean_time)],
                seed=3,
            ),
        )
        for (op, lib), probe in zip(pairs, probes)
    ]
    kill_runs = sweep(kill_jobs, n_jobs=n_jobs, cache=cache)

    loss_iter = iter(loss_runs)
    for (operation, lib), probe, kill_run in zip(pairs, probes, kill_runs):
        base = None
        for drop in drops:
            r = next(loss_iter)
            mean = r.mean_time
            if base is None:
                base = mean
            slow = slowdown_percent(mean, base) if math.isfinite(mean) else float("inf")
            result.add(
                operation, lib, fault_label(drop),
                round(mean * 1e3, 3), round(slow, 1),
                r.transport.get("retransmits", 0), status(r),
            )
        mean = kill_run.mean_time
        slow = (
            slowdown_percent(mean, probe.mean_time)
            if math.isfinite(mean) else float("inf")
        )
        result.add(
            operation, lib, f"kill rank {victim}",
            round(mean * 1e3, 3) if math.isfinite(mean) else float("inf"),
            round(slow, 1) if math.isfinite(slow) else float("inf"),
            kill_run.transport.get("retransmits", 0), status(kill_run),
        )
    return result
