"""Figure 9 — end-to-end broadcast/reduce vs message size (Section 5.2.1).

Message-size sweep at fixed process count: Figure 9a on Cori compares
{Cray MPI, Intel MPI, OMPI-default, OMPI-adapt}; Figure 9b on Stampede2
swaps Cray for MVAPICH (fabric support, as in the paper).

Shape claims asserted: at 4 MB ADAPT's broadcast wins on both machines by a
large factor over OMPI-default (paper: 10x Cori / 2.8x Stampede2); the
OMPI-default decision-function switch is visible across 256 KB; ADAPT's
advantage grows with message size (pipeline criteria of the paper's Hockney
analysis); and on Stampede2 Intel's reduce beats ADAPT's while on Cori it
does not.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, fmt_bytes
from repro.harness.runner import run_collective
from repro.machine import cori, stampede2

SIZES = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20]


def libraries(machine: str) -> list[str]:
    if machine == "cori":
        return ["Cray MPI", "Intel MPI", "OMPI-default", "OMPI-adapt"]
    return ["MVAPICH", "Intel MPI", "OMPI-default", "OMPI-adapt"]


def run(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
) -> ExperimentResult:
    cfg = SCALES[scale]
    spec = cori(cfg["cori_nodes"]) if machine == "cori" else stampede2(cfg["stampede2_nodes"])
    nranks = spec.total_cores
    iters = max(3, cfg["iters"] // 4)
    sizes = sizes or SIZES
    result = ExperimentResult(
        experiment="Figure 9" + ("a" if machine == "cori" else "b"),
        title=f"{operation} vs message size, {machine}, {nranks} ranks",
        headers=["library", "nbytes", "size", "mean_ms"],
    )
    for nbytes in sizes:
        for lib in libraries(machine):
            r = run_collective(spec, nranks, lib, operation, nbytes, iterations=iters)
            result.add(lib, nbytes, fmt_bytes(nbytes), round(r.mean_time * 1e3, 3))
    return result
