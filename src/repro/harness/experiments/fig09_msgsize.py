"""Figure 9 — end-to-end broadcast/reduce vs message size (Section 5.2.1).

Message-size sweep at fixed process count: Figure 9a on Cori compares
{Cray MPI, Intel MPI, OMPI-default, OMPI-adapt}; Figure 9b on Stampede2
swaps Cray for MVAPICH (fabric support, as in the paper).

Shape claims asserted: at 4 MB ADAPT's broadcast wins on both machines by a
large factor over OMPI-default (paper: 10x Cori / 2.8x Stampede2); the
OMPI-default decision-function switch is visible across 256 KB; ADAPT's
advantage grows with message size (pipeline criteria of the paper's Hockney
analysis); and on Stampede2 Intel's reduce beats ADAPT's while on Cori it
does not.
"""

from __future__ import annotations

from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    fmt_bytes,
    machine_nodes,
    machine_spec,
    sweep,
)
from repro.parallel import SimJob

SIZES = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20]


def libraries(machine: str) -> list[str]:
    if machine == "cori":
        return ["Cray MPI", "Intel MPI", "OMPI-default", "OMPI-adapt"]
    return ["MVAPICH", "Intel MPI", "OMPI-default", "OMPI-adapt"]


def jobs(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
) -> list[SimJob]:
    """The sweep grid as independent cells, in table-row order."""
    nodes = machine_nodes(machine, scale)
    iters = max(3, SCALES[scale]["iters"] // 4)
    return [
        SimJob(
            machine=machine,
            nodes=nodes,
            library=lib,
            operation=operation,
            nbytes=nbytes,
            iterations=iters,
        )
        for nbytes in (sizes or SIZES)
        for lib in libraries(machine)
    ]


def run(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    cells = jobs(machine, scale, operation, sizes)
    nranks = machine_spec(machine, scale).total_cores
    result = ExperimentResult(
        experiment="Figure 9" + ("a" if machine == "cori" else "b"),
        title=f"{operation} vs message size, {machine}, {nranks} ranks",
        headers=["library", "nbytes", "size", "mean_ms"],
    )
    for job, r in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        result.add(
            job.library, job.nbytes, fmt_bytes(job.nbytes),
            round(r.mean_time * 1e3, 3),
        )
    return result
