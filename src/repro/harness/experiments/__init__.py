"""Per-figure experiment drivers.

One module per table/figure of the paper's evaluation (Section 5); each
exposes ``run(scale=...)`` returning an :class:`ExperimentResult` whose
``table()`` prints the same rows/series the paper plots. The benches under
``benchmarks/`` call these and assert the paper's *shape* claims (who wins,
rough factors, crossovers).

Scales (process counts chosen so a laptop regenerates every figure):

* ``small`` — minutes for the full suite; default for benches.
* ``medium`` — a few x larger; closer statistics.
* ``paper`` — the paper's process counts (1024/1536 ranks, 32 GPUs); hours.
"""

from repro.harness.experiments.common import ExperimentResult, SCALES
from repro.harness.experiments import (
    fig07_noise,
    fig08_topo,
    fig09_msgsize,
    fig10_scaling,
    fig11_gpu,
    figq_staleness,
    figx_faults,
    figx_recovery,
    table1_asp,
)

__all__ = [
    "ExperimentResult",
    "SCALES",
    "fig07_noise",
    "fig08_topo",
    "fig09_msgsize",
    "fig10_scaling",
    "fig11_gpu",
    "figq_staleness",
    "figx_faults",
    "figx_recovery",
    "table1_asp",
]
