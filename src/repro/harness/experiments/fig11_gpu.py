"""Figure 11 — broadcast/reduce with GPU data on the PSG cluster (Section 5.2.2).

One rank per GPU (4 GPUs/node). Figure 11a sweeps 1-32 MB at 8 nodes
(32 GPUs); Figure 11b is strong scaling at 32 MB from 1 to 8 nodes.
Libraries: {MVAPICH, OMPI-default, OMPI-adapt}.

Shape claims asserted: ADAPT's broadcast beats MVAPICH and OMPI-default by
the explicit CPU-buffer staging (paper: 2-3x), ADAPT's reduce wins by much
more thanks to GPU-offloaded reduction (paper: ~10x), and ADAPT's strong
scaling is near-flat while OMPI-default's decision tree picks a poor
algorithm at one node.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, fmt_bytes, sweep
from repro.machine import psg_gpu
from repro.parallel import SimJob

LIBRARIES = ["MVAPICH", "OMPI-default", "OMPI-adapt"]
SIZES_A = [1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20]


def jobs_msgsize(scale: str = "small", sizes: list[int] | None = None) -> list[SimJob]:
    cfg = SCALES[scale]
    iters = max(3, cfg["iters"] // 4)
    sizes = sizes or (SIZES_A if scale != "small" else SIZES_A[:4])
    return [
        SimJob(
            machine="psg",
            nodes=cfg["psg_nodes"],
            library=lib,
            operation=operation,
            nbytes=nbytes,
            iterations=iters,
            gpu=True,
        )
        for operation in ("bcast", "reduce")
        for nbytes in sizes
        for lib in LIBRARIES
    ]


def run_msgsize(
    scale: str = "small",
    sizes: list[int] | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    spec = psg_gpu(nodes=SCALES[scale]["psg_nodes"])
    cells = jobs_msgsize(scale, sizes)
    result = ExperimentResult(
        experiment="Figure 11a",
        title=f"GPU bcast/reduce vs message size, {spec.nodes} nodes ({spec.total_gpus} GPUs)",
        headers=["operation", "library", "nbytes", "size", "mean_ms"],
    )
    for job, r in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        result.add(job.operation, job.library, job.nbytes, fmt_bytes(job.nbytes),
                   round(r.mean_time * 1e3, 3))
    return result


def jobs_scaling(scale: str = "small", nodes: list[int] | None = None) -> list[SimJob]:
    cfg = SCALES[scale]
    iters = max(3, cfg["iters"] // 4)
    msg = 32 << 20 if scale != "small" else 8 << 20
    return [
        SimJob(
            machine="psg",
            nodes=n,
            library=lib,
            operation=operation,
            nbytes=msg,
            iterations=iters,
            gpu=True,
        )
        for operation in ("bcast", "reduce")
        for n in (nodes or list(range(1, cfg["psg_nodes"] + 1)))
        for lib in LIBRARIES
    ]


def run_scaling(
    scale: str = "small",
    nodes: list[int] | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    cfg = SCALES[scale]
    nodes = nodes or list(range(1, cfg["psg_nodes"] + 1))
    msg = 32 << 20 if scale != "small" else 8 << 20
    cells = jobs_scaling(scale, nodes)
    result = ExperimentResult(
        experiment="Figure 11b",
        title=f"GPU strong scaling, {msg >> 20} MB, nodes {nodes}",
        headers=["operation", "library", "nodes", "ngpus", "mean_ms"],
    )
    for job, r in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        result.add(job.operation, job.library, job.nodes,
                   psg_gpu(nodes=job.nodes).total_gpus, round(r.mean_time * 1e3, 3))
    return result
