"""Figure 11 — broadcast/reduce with GPU data on the PSG cluster (Section 5.2.2).

One rank per GPU (4 GPUs/node). Figure 11a sweeps 1-32 MB at 8 nodes
(32 GPUs); Figure 11b is strong scaling at 32 MB from 1 to 8 nodes.
Libraries: {MVAPICH, OMPI-default, OMPI-adapt}.

Shape claims asserted: ADAPT's broadcast beats MVAPICH and OMPI-default by
the explicit CPU-buffer staging (paper: 2-3x), ADAPT's reduce wins by much
more thanks to GPU-offloaded reduction (paper: ~10x), and ADAPT's strong
scaling is near-flat while OMPI-default's decision tree picks a poor
algorithm at one node.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, fmt_bytes
from repro.harness.runner import run_collective
from repro.machine import psg_gpu

LIBRARIES = ["MVAPICH", "OMPI-default", "OMPI-adapt"]
SIZES_A = [1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20]


def run_msgsize(scale: str = "small", sizes: list[int] | None = None) -> ExperimentResult:
    cfg = SCALES[scale]
    spec = psg_gpu(nodes=cfg["psg_nodes"])
    ngpus = spec.total_gpus
    iters = max(3, cfg["iters"] // 4)
    sizes = sizes or (SIZES_A if scale != "small" else SIZES_A[:4])
    result = ExperimentResult(
        experiment="Figure 11a",
        title=f"GPU bcast/reduce vs message size, {spec.nodes} nodes ({ngpus} GPUs)",
        headers=["operation", "library", "nbytes", "size", "mean_ms"],
    )
    for operation in ("bcast", "reduce"):
        for nbytes in sizes:
            for lib in LIBRARIES:
                r = run_collective(
                    spec, ngpus, lib, operation, nbytes, iterations=iters, gpu=True
                )
                result.add(operation, lib, nbytes, fmt_bytes(nbytes),
                           round(r.mean_time * 1e3, 3))
    return result


def run_scaling(scale: str = "small", nodes: list[int] | None = None) -> ExperimentResult:
    cfg = SCALES[scale]
    iters = max(3, cfg["iters"] // 4)
    nodes = nodes or list(range(1, cfg["psg_nodes"] + 1))
    msg = 32 << 20 if scale != "small" else 8 << 20
    result = ExperimentResult(
        experiment="Figure 11b",
        title=f"GPU strong scaling, {msg >> 20} MB, nodes {nodes}",
        headers=["operation", "library", "nodes", "ngpus", "mean_ms"],
    )
    for operation in ("bcast", "reduce"):
        for n in nodes:
            spec = psg_gpu(nodes=n)
            ngpus = spec.total_gpus
            for lib in LIBRARIES:
                r = run_collective(
                    spec, ngpus, lib, operation, msg, iterations=iters, gpu=True
                )
                result.add(operation, lib, n, ngpus, round(r.mean_time * 1e3, 3))
    return result
