"""Shared experiment plumbing."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.harness.report import format_table

#: Scale presets: (cori nodes, stampede2 nodes, psg nodes, iterations).
SCALES = {
    "small": {"cori_nodes": 2, "stampede2_nodes": 2, "psg_nodes": 4, "iters": 8},
    "medium": {"cori_nodes": 8, "stampede2_nodes": 6, "psg_nodes": 8, "iters": 16},
    "paper": {"cori_nodes": 32, "stampede2_nodes": 32, "psg_nodes": 8, "iters": 40},
}


def default_scale() -> str:
    """Bench scale, overridable via ``REPRO_BENCH_SCALE``."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def machine_nodes(machine: str, scale: str) -> int:
    """Node count of ``machine`` at ``scale`` (SCALES column lookup)."""
    try:
        return SCALES[scale][f"{machine}_nodes"]
    except KeyError:
        raise ValueError(f"unknown machine {machine!r} or scale {scale!r}") from None


def machine_spec(machine: str, scale: str):
    """The :class:`MachineSpec` an experiment's jobs run on."""
    from repro.machine import cori, psg_gpu, stampede2

    factory = {"cori": cori, "stampede2": stampede2, "psg": psg_gpu}[machine]
    return factory(machine_nodes(machine, scale))


def sweep(jobs: Sequence, *, n_jobs: Optional[int] = None, cache=None) -> list:
    """Run an experiment's job cells through the parallel executor.

    Thin indirection so every driver shares one entry point (and tests can
    monkeypatch it); results come back in job order — see
    :func:`repro.parallel.run_jobs` for the determinism argument.
    """
    from repro.parallel import run_jobs

    return run_jobs(jobs, n_jobs=n_jobs, cache=cache)


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def table(self) -> str:
        out = format_table(f"{self.experiment}: {self.title}", self.headers, self.rows)
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def column(self, header: str) -> list[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def lookup(self, **key: Any) -> list[list[Any]]:
        """Rows whose named columns equal the given values."""
        idxs = {self.headers.index(h): v for h, v in key.items()}
        return [r for r in self.rows if all(r[i] == v for i, v in idxs.items())]

    def value(self, value_col: str, **key: Any) -> Any:
        """The single ``value_col`` cell of the row matching ``key``."""
        rows = self.lookup(**key)
        if len(rows) != 1:
            raise KeyError(f"{self.experiment}: key {key} matched {len(rows)} rows")
        return rows[0][self.headers.index(value_col)]


def fmt_bytes(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}M"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10}K"
    return str(nbytes)
