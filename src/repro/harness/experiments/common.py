"""Shared experiment plumbing."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.harness.report import format_table

#: Scale presets: (cori nodes, stampede2 nodes, psg nodes, iterations).
SCALES = {
    "small": {"cori_nodes": 2, "stampede2_nodes": 2, "psg_nodes": 4, "iters": 8},
    "medium": {"cori_nodes": 8, "stampede2_nodes": 6, "psg_nodes": 8, "iters": 16},
    "paper": {"cori_nodes": 32, "stampede2_nodes": 32, "psg_nodes": 8, "iters": 40},
}


def default_scale() -> str:
    """Bench scale, overridable via ``REPRO_BENCH_SCALE``."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def table(self) -> str:
        out = format_table(f"{self.experiment}: {self.title}", self.headers, self.rows)
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def column(self, header: str) -> list[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def lookup(self, **key: Any) -> list[list[Any]]:
        """Rows whose named columns equal the given values."""
        idxs = {self.headers.index(h): v for h, v in key.items()}
        return [r for r in self.rows if all(r[i] == v for i, v in idxs.items())]

    def value(self, value_col: str, **key: Any) -> Any:
        """The single ``value_col`` cell of the row matching ``key``."""
        rows = self.lookup(**key)
        if len(rows) != 1:
            raise KeyError(f"{self.experiment}: key {key} matched {len(rows)} rows")
        return rows[0][self.headers.index(value_col)]


def fmt_bytes(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}M"
    if nbytes >= 1 << 10:
        return f"{nbytes >> 10}K"
    return str(nbytes)
