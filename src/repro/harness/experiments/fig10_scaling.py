"""Figure 10 — strong scalability with CPU data (Section 5.2.1).

4 MB broadcast/reduce while the node count grows (paper: 8 -> 32 nodes on
Cori, 128 -> 1024 ranks). The paper's claim, from the Hockney chain model
T = ns x (alpha + beta m): ADAPT's time is nearly independent of the process
count, and ADAPT scales best of all libraries.

The bench asserts: ADAPT's time grows by far less than the process count
does (near-flat), and at the largest scale ADAPT is fastest.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, sweep
from repro.machine import cori
from repro.parallel import SimJob

MSG = 4 << 20
LIBRARIES = ["Cray MPI", "Intel MPI", "OMPI-default", "OMPI-adapt"]


def node_counts(scale: str) -> list[int]:
    return {"small": [1, 2, 4], "medium": [2, 4, 8], "paper": [8, 16, 32]}[scale]


def jobs(scale: str = "small", nodes: list[int] | None = None) -> list[SimJob]:
    """The sweep grid as independent cells, in table-row order."""
    iters = max(3, SCALES[scale]["iters"] // 4)
    return [
        SimJob(
            machine="cori",
            nodes=n,
            library=lib,
            operation=operation,
            nbytes=MSG,
            iterations=iters,
        )
        for operation in ("bcast", "reduce")
        for n in (nodes or node_counts(scale))
        for lib in LIBRARIES
    ]


def run(
    scale: str = "small",
    nodes: list[int] | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    nodes = nodes or node_counts(scale)
    cells = jobs(scale, nodes)
    result = ExperimentResult(
        experiment="Figure 10",
        title=f"strong scaling, cori, 4 MB, nodes {nodes}",
        headers=["operation", "library", "nodes", "nranks", "mean_ms"],
    )
    for job, r in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        result.add(
            job.operation, job.library, job.nodes,
            cori(nodes=job.nodes).total_cores, round(r.mean_time * 1e3, 3),
        )
    return result
