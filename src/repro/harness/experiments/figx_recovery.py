"""Figure X-R (ours) — live recovery across every ADAPT collective.

Companion to :mod:`figx_faults` (DESIGN.md S20): where Figure X shows ADAPT
*degrading* gracefully (bcast adopts orphans, reduce drops the dead
subtree), this experiment arms the full recovery stack — ULFM-style
membership agreement, tree re-grafting / epoch restart, end-to-end payload
integrity — and sweeps **all nine** ADAPT collectives through two fault
scenarios:

* **kill** — one interior non-root rank fail-stops mid-flight (at a
  fraction of the fault-free probe time, so segments are genuinely in the
  air). Every collective must complete among the survivors
  (``status=recovered``) and report the agreed failed set plus the
  membership protocol's time-to-repair. The Waitall comparator rows
  (bcast/reduce, the operations the baseline libraries implement) hang
  forever in the same scenario.
* **corrupt** — the fabric flips one bit in a sampled fraction of data
  transfers. Per-segment checksums catch every corruption at delivery and
  NACK-triggered retransmits repair them, so the run completes ``ok`` —
  bit-exact, zero degraded ranks — with the repair cost visible as
  retransmissions.

Determinism: every row derives from seeded fault plans and the RNG-free
membership protocol, so the emitted JSON is byte-identical across worker
counts — asserted by the CI recovery job (``--jobs 1`` vs ``--jobs N``).
"""

from __future__ import annotations

import math

from repro.faults import FaultPlan, KillSpec
from repro.faults.plan import CorruptSpec
from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    fmt_bytes,
    sweep,
)
from repro.libraries.presets import ADAPT_OPERATIONS
from repro.machine import cori
from repro.parallel import SimJob

MSG = 256 << 10
ITERS = 1
CORRUPT_RATE = 0.02
#: Fraction of the fault-free single-shot time at which the victim is killed.
KILL_FRACTION = 0.3
#: Waitall-style comparator (same topology-aware tree, nonblocking +
#: Waitall) — only for the operations the baseline libraries implement.
COMPARATOR = "OMPI-default-topo"
COMPARATOR_OPS = ("bcast", "reduce")


def status_of(r) -> str:
    if not r.completed:
        return "hung"
    return "recovered" if r.degraded else "ok"


def run(
    scale: str = "small",
    *,
    n_jobs: int | None = None,
    cache=None,
    operations: tuple[str, ...] = ADAPT_OPERATIONS,
) -> ExperimentResult:
    """Two-stage sweep: fault-free probes calibrate each kill time (stage 1);
    the kill/corrupt/comparator cells fan out from them (stage 2)."""
    cfg = SCALES[scale]
    spec = cori(nodes=cfg["cori_nodes"])
    nranks = spec.total_cores
    nodes = cfg["cori_nodes"]
    victim = nranks // 3  # an interior, non-root rank in every topology
    result = ExperimentResult(
        experiment="Figure X-R",
        title=f"live recovery, cori, {nranks} ranks, {fmt_bytes(MSG)}",
        headers=["operation", "scenario", "library", "status", "failed",
                 "ttr_ms", "retransmits", "nacks", "mean_ms"],
        notes=[
            f"kill rows: rank {victim} fail-stops at {KILL_FRACTION:g}x the "
            "fault-free time with recovery armed (membership agreement + "
            "re-graft/restart); 'recovered' means survivors completed",
            f"corrupt rows: one bit flipped in {CORRUPT_RATE * 100:g}% of "
            "data transfers; checksums + NACK retransmits repair them "
            "(status 'ok', zero failed ranks)",
            "comparator rows: the Waitall schedule in the kill scenario "
            "('hung' = never completed, reported inf)",
        ],
    )

    probe_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library="OMPI-adapt", operation=op,
            nbytes=MSG, iterations=1, mode="sequential", seed=1,
        )
        for op in operations
    ]
    probes = sweep(probe_jobs, n_jobs=n_jobs, cache=cache)

    kill_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library="OMPI-adapt", operation=op,
            nbytes=MSG, iterations=ITERS, mode="sequential", seed=1,
            recover=True,
            fault_plan=FaultPlan(
                kills=[KillSpec(rank=victim,
                                time=KILL_FRACTION * probe.mean_time)],
                seed=3,
            ),
        )
        for op, probe in zip(operations, probes)
    ]
    corrupt_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library="OMPI-adapt", operation=op,
            nbytes=MSG, iterations=ITERS, mode="sequential", seed=1,
            recover=True,
            fault_plan=FaultPlan(
                corrupts=[CorruptSpec(rate=CORRUPT_RATE)], seed=4
            ),
        )
        for op in operations
    ]
    comparator_jobs = [
        SimJob(
            machine="cori", nodes=nodes, library=COMPARATOR, operation=op,
            nbytes=MSG, iterations=ITERS, mode="sequential", seed=1,
            fault_plan=FaultPlan(
                kills=[KillSpec(rank=victim,
                                time=KILL_FRACTION * probe.mean_time)],
                seed=3,
            ),
        )
        for op, probe in zip(operations, probes)
        if op in COMPARATOR_OPS
    ]
    stage2 = sweep(
        kill_jobs + corrupt_jobs + comparator_jobs, n_jobs=n_jobs, cache=cache
    )
    kills = stage2[: len(kill_jobs)]
    corrupts = stage2[len(kill_jobs): len(kill_jobs) + len(corrupt_jobs)]
    comparators = stage2[len(kill_jobs) + len(corrupt_jobs):]

    def add_row(op: str, scenario: str, library: str, r) -> None:
        mean = r.mean_time
        ttr = r.time_to_repair
        result.add(
            op, scenario, library, status_of(r),
            ",".join(map(str, r.failed_ranks)) or "-",
            round(ttr * 1e3, 3) if ttr is not None else None,
            r.transport.get("retransmits", 0),
            r.transport.get("nacks_sent", 0),
            round(mean * 1e3, 3) if math.isfinite(mean) else float("inf"),
        )

    for op, r in zip(operations, kills):
        add_row(op, f"kill rank {victim}", "OMPI-adapt", r)
    for op, r in zip(operations, corrupts):
        add_row(op, f"corrupt {CORRUPT_RATE * 100:g}%", "OMPI-adapt", r)
    comp_iter = iter(comparators)
    for op in operations:
        if op in COMPARATOR_OPS:
            add_row(op, f"kill rank {victim}", COMPARATOR, next(comp_iter))
    return result
