"""Figure 8 — topology-aware broadcast/reduce vs message size (Section 5.1.2).

Sweeps 64 KB - 4 MB and compares OMPI-adapt against every topology-aware
algorithm of Intel MPI (binomial, recursive doubling, ring, the SHM-based
family; Shumilin's and Rabenseifner's for reduce) plus OMPI-default-topo —
the paper's own control that isolates the event-driven framework from the
topology-aware tree.

Shape claims asserted by the bench: for large messages (>= 1 MB) ADAPT's
broadcast is the fastest; ADAPT beats OMPI-default-topo by a clear margin
(~20% in the paper) despite using the identical tree; and on Stampede2
Shumilin's reduce beats ADAPT's (the vectorization story) while on Cori it
does not.
"""

from __future__ import annotations

from repro.harness.experiments.common import (
    SCALES,
    ExperimentResult,
    fmt_bytes,
    machine_nodes,
    machine_spec,
    sweep,
)
from repro.libraries.presets import (
    intel_topo_bcast_variants,
    intel_topo_reduce_variants,
)
from repro.parallel import SimJob

SIZES = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20]


def jobs(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
) -> list[SimJob]:
    """The sweep grid as independent cells, in table-row order.

    Intel's per-algorithm variants travel by *name* (family + variant);
    the worker resolves the actual schedule function, so the cells stay
    pure config.
    """
    nodes = machine_nodes(machine, scale)
    iters = max(3, SCALES[scale]["iters"] // 4)
    family = f"intel-topo-{operation}"
    variants = (
        intel_topo_bcast_variants() if operation == "bcast"
        else intel_topo_reduce_variants()
    )
    cells = []
    for nbytes in sizes or SIZES:
        for name in variants:
            cells.append(SimJob(
                machine=machine, nodes=nodes, library="Intel MPI",
                operation=operation, nbytes=nbytes, iterations=iters,
                algo_family=family, algo_variant=name, observe="metrics",
            ))
        for lib in ("OMPI-default-topo", "OMPI-adapt"):
            cells.append(SimJob(
                machine=machine, nodes=nodes, library=lib,
                operation=operation, nbytes=nbytes, iterations=iters,
                observe="metrics",
            ))
    return cells


def run(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
    *,
    n_jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    nranks = machine_spec(machine, scale).total_cores
    cells = jobs(machine, scale, operation, sizes)
    result = ExperimentResult(
        experiment="Figure 8" + ("a" if machine == "cori" else "b"),
        title=f"topology-aware {operation} vs message size, {machine}, {nranks} ranks",
        headers=["algorithm", "nbytes", "size", "mean_ms", "peak_link_util%"],
    )
    for job, r in zip(cells, sweep(cells, n_jobs=n_jobs, cache=cache)):
        name = job.algo_variant if job.algo_variant is not None else job.library
        # Peak per-link busy fraction: how hard the schedule drives its
        # most-loaded wire (the topology-awareness signal — oversubscribed
        # trees saturate one uplink while the good ones spread the load).
        m = r.metrics or {}
        peak = max(
            (link["busy_fraction"] for link in m.get("links", [])),
            default=0.0,
        )
        result.add(name, job.nbytes, fmt_bytes(job.nbytes),
                   round(r.mean_time * 1e3, 3), round(100.0 * peak, 1))
    return result
