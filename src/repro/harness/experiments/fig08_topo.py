"""Figure 8 — topology-aware broadcast/reduce vs message size (Section 5.1.2).

Sweeps 64 KB - 4 MB and compares OMPI-adapt against every topology-aware
algorithm of Intel MPI (binomial, recursive doubling, ring, the SHM-based
family; Shumilin's and Rabenseifner's for reduce) plus OMPI-default-topo —
the paper's own control that isolates the event-driven framework from the
topology-aware tree.

Shape claims asserted by the bench: for large messages (>= 1 MB) ADAPT's
broadcast is the fastest; ADAPT beats OMPI-default-topo by a clear margin
(~20% in the paper) despite using the identical tree; and on Stampede2
Shumilin's reduce beats ADAPT's (the vectorization story) while on Cori it
does not.
"""

from __future__ import annotations

from repro.harness.experiments.common import SCALES, ExperimentResult, fmt_bytes
from repro.harness.runner import run_collective
from repro.libraries.presets import (
    intel_topo_bcast_variants,
    intel_topo_reduce_variants,
    library_by_name,
)
from repro.machine import cori, stampede2

SIZES = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20]


def run(
    machine: str = "cori",
    scale: str = "small",
    operation: str = "bcast",
    sizes: list[int] | None = None,
) -> ExperimentResult:
    cfg = SCALES[scale]
    spec = cori(cfg["cori_nodes"]) if machine == "cori" else stampede2(cfg["stampede2_nodes"])
    nranks = spec.total_cores
    iters = max(3, cfg["iters"] // 4)
    sizes = sizes or SIZES
    result = ExperimentResult(
        experiment="Figure 8" + ("a" if machine == "cori" else "b"),
        title=f"topology-aware {operation} vs message size, {machine}, {nranks} ranks",
        headers=["algorithm", "nbytes", "size", "mean_ms"],
    )
    variants = (
        intel_topo_bcast_variants() if operation == "bcast"
        else intel_topo_reduce_variants()
    )
    intel = library_by_name("Intel MPI")
    algos: list[tuple[str, object]] = [
        (name, fn) for name, fn in variants.items()
    ]
    for nbytes in sizes:
        for name, fn in algos:
            r = run_collective(
                spec, nranks, intel, operation, nbytes,
                iterations=iters, custom_algorithm=fn,
            )
            result.add(name, nbytes, fmt_bytes(nbytes), round(r.mean_time * 1e3, 3))
        for lib in ("OMPI-default-topo", "OMPI-adapt"):
            r = run_collective(spec, nranks, lib, operation, nbytes, iterations=iters)
            result.add(lib, nbytes, fmt_bytes(nbytes), round(r.mean_time * 1e3, 3))
    return result
