"""Plain-text tables for experiment output (what the benches print)."""

from __future__ import annotations

from typing import Sequence


def slowdown_percent(noisy: float, baseline: float) -> float:
    """Percentage slowdown the paper annotates above the noise bars."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return 100.0 * (noisy - baseline) / baseline


def format_findings(rows: Sequence[Sequence[object]]) -> str:
    """Render lint findings (severity, rule, rank, peer, tag, message)."""
    return format_table(
        "Findings",
        ["severity", "rule", "rank", "peer", "tag", "message"],
        rows,
    )


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule, ready for terminal output."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
