"""Per-subsystem time breakdowns behind ``repro profile`` (DESIGN.md §18).

Runs one measurement (an ad-hoc collective or a whole experiment driver)
under :mod:`cProfile` and aggregates exclusive time by repro subsystem —
``repro.sim``, ``repro.network``, ``repro.collectives``, ... — so hot-path
work starts from data, not guesses. This is the tool that identified the
allocator and the engine loop as the top two costs before this PR's
optimization pass.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable, Optional


def _subsystem(filename: str) -> str:
    """Map a profiled code location to a subsystem bucket.

    ``.../repro/network/fairshare.py`` -> ``repro.network``;
    top-level modules bucket by module (``repro.cli``); everything outside
    the package is ``stdlib/other`` and C builtins are ``builtins``.
    """
    if filename.startswith("~") or filename.startswith("<"):
        return "builtins"
    parts = filename.replace(os.sep, "/").split("/")
    try:
        i = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return "stdlib/other"
    rest = parts[i + 1:]
    if not rest:
        return "stdlib/other"
    head = rest[0]
    if head.endswith(".py"):
        head = head[:-3]
    return f"repro.{head}"


def profile_call(
    fn: Callable[[], Any]
) -> tuple[Any, pstats.Stats]:
    """Run ``fn`` under cProfile; returns (fn's result, raw stats)."""
    prof = cProfile.Profile()
    prof.enable()
    try:
        result = fn()
    finally:
        prof.disable()
    return result, pstats.Stats(prof)


def breakdown(stats: pstats.Stats) -> list[dict]:
    """Aggregate exclusive (tottime) seconds and call counts by subsystem.

    Exclusive times are disjoint, so the rows sum to the total profiled
    time — a true breakdown, unlike cumulative time which double-counts.
    """
    tot: dict[str, float] = {}
    calls: dict[str, int] = {}
    for (filename, _lineno, _name), (
        _cc, nc, tt, _ct, _callers
    ) in stats.stats.items():  # type: ignore[attr-defined]
        key = _subsystem(filename)
        tot[key] = tot.get(key, 0.0) + tt
        calls[key] = calls.get(key, 0) + nc
    return [
        {"subsystem": key, "seconds": tot[key], "calls": calls[key]}
        for key in sorted(tot, key=lambda k: tot[k], reverse=True)
    ]


def top_functions(stats: pstats.Stats, n: int) -> list[dict]:
    """The ``n`` most expensive functions by exclusive time."""
    rows = []
    for (filename, lineno, name), (
        _cc, nc, tt, ct, _callers
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "function": f"{os.path.basename(filename)}:{lineno}({name})",
            "subsystem": _subsystem(filename),
            "seconds": tt,
            "cumulative": ct,
            "calls": nc,
        })
    rows.sort(key=lambda r: r["seconds"], reverse=True)
    return rows[:n]


def render(
    stats: pstats.Stats, *, top: int = 0, title: Optional[str] = None
) -> str:
    rows = breakdown(stats)
    total = sum(r["seconds"] for r in rows) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'subsystem':<22} {'seconds':>9} {'share':>7} {'calls':>12}")
    for r in rows:
        if r["seconds"] < total * 0.001 and len(lines) > 12:
            continue  # drop sub-0.1% noise rows once the table is long
        lines.append(
            f"{r['subsystem']:<22} {r['seconds']:>9.4f} "
            f"{100 * r['seconds'] / total:>6.1f}% {r['calls']:>12,}"
        )
    lines.append(f"{'total':<22} {total:>9.4f} {'100.0%':>7}")
    if top > 0:
        lines.append("")
        lines.append(f"top {top} functions by exclusive time:")
        for r in top_functions(stats, top):
            lines.append(
                f"  {r['seconds']:>8.4f}s  {r['calls']:>10,} calls  "
                f"{r['function']}  [{r['subsystem']}]"
            )
    return "\n".join(lines)
