"""Rail-optimized GPU pod generator: NVLink islands + parallel rail planes.

Link inventory:

* per node, the NVLink island: one undirected lane per GPU pair
  (``rp:n<i>:g<a>-g<b>``, a < b) — a clique, standing in for the NVSwitch
  crossbar (the tested island invariant);
* per node and rail: the rail NIC's injection and ejection lanes onto that
  rail plane's switch (``rp:n<i>>rail<r>`` / ``rp:rail<r>>n<i>``).

The stable interface assignment of rail-optimized pods: GPU slot ``s``
owns the NIC on rail ``s % rails``. Inter-node routing rides the *source*
slot's rail; when the destination slot sits on a different rail, the
message lands on the destination island's rail-owning GPU and takes one
NVLink forwarding hop — the rail-alignment penalty rail-optimized
collectives are designed to avoid.
"""

from __future__ import annotations

from repro.topo.compile import CompiledTopology, TopoLink
from repro.topo.spec import RailPodSpec


def compile_railpod(spec: RailPodSpec) -> CompiledTopology:
    nv, rail = spec.nvlink, spec.rail_link
    gpus = spec.gpus_per_node
    links: list[TopoLink] = []
    for node in range(spec.nodes):
        for a in range(gpus):
            for b in range(a + 1, gpus):
                links.append(TopoLink(
                    f"rp:n{node}:g{a}-g{b}", f"n{node}.g{a}", f"n{node}.g{b}",
                    "nvlink", nv.bandwidth, nv.alpha,
                ))
        for r in range(spec.rails):
            links.append(TopoLink(f"rp:n{node}>rail{r}", f"n{node}", f"rail{r}",
                                  "rail-up", rail.bandwidth, rail.alpha))
            links.append(TopoLink(f"rp:rail{r}>n{node}", f"rail{r}", f"n{node}",
                                  "rail-down", rail.bandwidth, 0.0))
    switches = [f"rail{r}" for r in range(spec.rails)]
    iface = [spec.rail_of_slot(s) for s in range(gpus)]

    def nv_name(node: int, a: int, b: int) -> str:
        lo, hi = (a, b) if a < b else (b, a)
        return f"rp:n{node}:g{lo}-g{hi}"

    def path_fn(src: int, dst: int, src_slot: int, dst_slot: int) -> tuple[str, ...]:
        r = iface[src_slot % gpus]
        hops = [f"rp:n{src}>rail{r}", f"rp:rail{r}>n{dst}"]
        land = r  # slot r owns rail r's NIC (r < rails <= gpus)
        dslot = dst_slot % gpus
        if iface[dslot] != r:
            hops.append(nv_name(dst, land, dslot))
        return tuple(hops)

    def gpu_peer_fn(node: int, slot_a: int, slot_b: int) -> tuple[str, ...]:
        return (nv_name(node, slot_a, slot_b),)

    return CompiledTopology(
        spec, switches, links, path_fn,
        iface=iface, gpu_peer_fn=gpu_peer_fn, gpu_bound=True,
    )
