"""Fat-tree generator: folded-Clos leaf–spine with derived uplink capacity.

Link inventory (construction order = serialization order):

* per node ``n`` under leaf ``L``: ``ft:n<n>>l<L>`` (host injection) and
  ``ft:l<L>>n<n>`` (host ejection) at the host-link bandwidth;
* per leaf ``L`` and spine ``S``: ``ft:l<L>>s<S>`` and ``ft:s<S>>l<L>`` at
  the derived uplink bandwidth (full bisection at oversubscription 1:1).

Routing: same-leaf pairs turn around at the leaf switch (two links);
cross-leaf pairs take one of the ``spines`` equal-cost four-link paths,
selected by the deterministic spread ``(src + dst) % spines`` — ECMP with a
fixed hash, so compilation and routing are reproducible bytes.
"""

from __future__ import annotations

from repro.topo.compile import CompiledTopology, TopoLink
from repro.topo.spec import FatTreeSpec


def _leaf_of(spec: FatTreeSpec, node: int) -> int:
    return node // spec.hosts_per_leaf


def compile_fattree(spec: FatTreeSpec) -> CompiledTopology:
    host, up_bw = spec.host_link, spec.uplink_bandwidth
    links: list[TopoLink] = []
    for node in range(spec.nodes):
        leaf = _leaf_of(spec, node)
        links.append(TopoLink(f"ft:n{node}>l{leaf}", f"n{node}", f"l{leaf}",
                              "host-up", host.bandwidth, host.alpha))
        links.append(TopoLink(f"ft:l{leaf}>n{node}", f"l{leaf}", f"n{node}",
                              "host-down", host.bandwidth, 0.0))
    for leaf in range(spec.leaves):
        for spine in range(spec.spines):
            links.append(TopoLink(f"ft:l{leaf}>s{spine}", f"l{leaf}", f"s{spine}",
                                  "leaf-up", up_bw, spec.switch_latency))
            links.append(TopoLink(f"ft:s{spine}>l{leaf}", f"s{spine}", f"l{leaf}",
                                  "leaf-down", up_bw, spec.switch_latency))
    switches = [f"l{leaf}" for leaf in range(spec.leaves)]
    switches += [f"s{spine}" for spine in range(spec.spines)]

    def path_fn(src: int, dst: int, src_slot: int, dst_slot: int) -> tuple[str, ...]:
        ls, ld = _leaf_of(spec, src), _leaf_of(spec, dst)
        up, down = f"ft:n{src}>l{ls}", f"ft:l{ld}>n{dst}"
        if ls == ld:
            return (up, down)
        spine = (src + dst) % spec.spines
        return (up, f"ft:l{ls}>s{spine}", f"ft:s{spine}>l{ld}", down)

    return CompiledTopology(spec, switches, links, path_fn)


def equal_cost_paths(
    topo: CompiledTopology, src: int, dst: int
) -> list[tuple[TopoLink, ...]]:
    """All minimal paths between two distinct nodes (the ECMP set).

    Same-leaf pairs have one path; cross-leaf pairs have exactly
    ``spines`` — the tested fat-tree invariant. The deterministic route
    the fabric uses is always a member of this set.
    """
    spec: FatTreeSpec = topo.spec
    if src == dst:
        raise ValueError("equal-cost paths are defined for distinct nodes")
    ls, ld = _leaf_of(spec, src), _leaf_of(spec, dst)
    up, down = f"ft:n{src}>l{ls}", f"ft:l{ld}>n{dst}"
    if ls == ld:
        return [tuple(topo.by_name[n] for n in (up, down))]
    return [
        tuple(topo.by_name[n] for n in
              (up, f"ft:l{ls}>s{s}", f"ft:s{s}>l{ld}", down))
        for s in range(spec.spines)
    ]
