"""High-level topology descriptions (the compiler's source language).

A topology spec is a small frozen dataclass naming the *shape* of a
datacenter fabric — counts, radixes, oversubscription, per-class link
parameters — and nothing about individual links. The compiler
(:mod:`repro.topo.compile`) lowers a spec into the concrete link list and
path tables the simulator consumes. Validation lives here, in
``__post_init__``, so an unbuildable spec fails at construction with a
message naming the violated constraint, not deep inside the compiler.

Three families ship (DESIGN.md §24):

* :class:`FatTreeSpec` — folded-Clos leaf–spine: every leaf switch has one
  uplink to each of ``spines`` spine switches, so every leaf pair has
  exactly ``spines`` equal-cost two-hop paths. ``oversubscription`` scales
  the uplink bandwidth (1.0 = full bisection).
* :class:`DragonflySpec` — ``groups`` groups of ``routers_per_group``
  all-to-all routers; each router exports ``global_per_router`` global
  links, paired across groups by a deterministic circulant schedule.
* :class:`RailPodSpec` — GPU pods: per-node NVLink/NVSwitch islands
  (modelled as cliques) plus ``rails`` parallel IB rail planes with a
  stable per-rank interface assignment (GPU slot ``s`` injects on rail
  ``s % rails``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar

from repro.machine.spec import GpuSpec, LinkParams, MachineSpec, NodeSpec


def _require(cond: bool, what: str) -> None:
    if not cond:
        raise ValueError(f"invalid topology spec: {what}")


@dataclass(frozen=True)
class FatTreeSpec:
    """Folded-Clos leaf–spine fat-tree.

    ``leaves`` leaf switches, each serving ``hosts_per_leaf`` nodes and
    holding one uplink to each of ``spines`` spine switches. Uplink
    bandwidth is derived, not configured: at ``oversubscription`` 1:1 a
    leaf's aggregate uplink capacity equals its aggregate host capacity
    (full bisection); ratio ``r`` divides the uplink capacity by ``r``.
    """

    family: ClassVar[str] = "fattree"

    leaves: int = 8
    spines: int = 4
    hosts_per_leaf: int = 4
    oversubscription: float = 1.0
    node: NodeSpec = field(default=NodeSpec(sockets=2, cores_per_socket=16))
    #: Node-to-leaf link (the NIC class): its alpha is the injection latency.
    host_link: LinkParams = field(default=LinkParams(alpha=1.5e-6, bandwidth=10e9))
    #: Latency added per switch tier crossed (leaf->spine or spine->leaf hop).
    switch_latency: float = 0.3e-6
    name: str = "fattree"

    def __post_init__(self) -> None:
        _require(self.leaves >= 1, f"fat-tree needs >= 1 leaf, got {self.leaves}")
        _require(self.spines >= 1, f"fat-tree needs >= 1 spine, got {self.spines}")
        _require(self.hosts_per_leaf >= 1,
                 f"fat-tree needs >= 1 host per leaf, got {self.hosts_per_leaf}")
        _require(self.oversubscription > 0,
                 f"oversubscription must be positive, got {self.oversubscription}")

    @property
    def nodes(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def ranks_per_node(self) -> int:
        return self.node.cores

    @property
    def uplink_bandwidth(self) -> float:
        """Per-uplink capacity derived from the oversubscription ratio."""
        aggregate = self.hosts_per_leaf * self.host_link.bandwidth
        return aggregate / (self.spines * self.oversubscription)

    def for_ranks(self, world_size: int) -> "FatTreeSpec":
        """Resize to the smallest leaf count fitting ``world_size`` ranks."""
        _require(world_size >= 1, f"world_size must be >= 1, got {world_size}")
        nodes = -(-world_size // self.ranks_per_node)
        leaves = max(1, -(-nodes // self.hosts_per_leaf))
        return dataclasses.replace(self, leaves=leaves)

    def machine(self) -> MachineSpec:
        return MachineSpec(
            name=self.name, nodes=self.nodes, node=self.node,
            fabric=self.host_link,
        )


@dataclass(frozen=True)
class DragonflySpec:
    """Dragonfly: all-to-all router groups joined by global links.

    Every group holds ``routers_per_group`` routers in a full local mesh;
    each router serves ``hosts_per_router`` nodes and exports
    ``global_per_router`` global links. The compiler pairs the
    ``routers_per_group * global_per_router`` global ports of each group
    across groups with a circulant schedule, so the constraints are:

    * ``degree >= groups - 1`` — enough ports to reach every other group
      (the group graph stays connected);
    * ``groups * degree`` even — global ports pair up into links.
    """

    family: ClassVar[str] = "dragonfly"

    groups: int = 8
    routers_per_group: int = 4
    hosts_per_router: int = 1
    global_per_router: int = 2
    node: NodeSpec = field(default=NodeSpec(sockets=2, cores_per_socket=16))
    host_link: LinkParams = field(default=LinkParams(alpha=1.5e-6, bandwidth=10e9))
    local_link: LinkParams = field(default=LinkParams(alpha=0.5e-6, bandwidth=25e9))
    global_link: LinkParams = field(default=LinkParams(alpha=2.5e-6, bandwidth=12e9))
    name: str = "dragonfly"

    def __post_init__(self) -> None:
        _require(self.groups >= 2, f"dragonfly needs >= 2 groups, got {self.groups}")
        _require(self.routers_per_group >= 1,
                 f"dragonfly needs >= 1 router/group, got {self.routers_per_group}")
        _require(self.hosts_per_router >= 1,
                 f"dragonfly needs >= 1 host/router, got {self.hosts_per_router}")
        _require(self.global_per_router >= 1,
                 f"dragonfly needs >= 1 global/router, got {self.global_per_router}")
        degree = self.group_degree
        _require(
            degree >= self.groups - 1,
            f"group global degree {degree} (= {self.routers_per_group} routers x "
            f"{self.global_per_router} globals) cannot reach the other "
            f"{self.groups - 1} groups — the group graph would disconnect",
        )
        _require(
            (self.groups * degree) % 2 == 0,
            f"{self.groups} groups x {degree} global ports is odd — ports "
            f"cannot pair into links (bump global_per_router or groups)",
        )

    @property
    def group_degree(self) -> int:
        """Global links each group exports."""
        return self.routers_per_group * self.global_per_router

    @property
    def nodes(self) -> int:
        return self.groups * self.routers_per_group * self.hosts_per_router

    @property
    def ranks_per_node(self) -> int:
        return self.node.cores

    def for_ranks(self, world_size: int) -> "DragonflySpec":
        """Resize to fit ``world_size`` ranks, rebalancing a/g/h.

        Grows the group count first; when the fixed per-group radix can no
        longer reach every peer group, widens the groups (more routers)
        toward the balanced ``a ~ sqrt(nodes)`` dragonfly and raises the
        per-router global count to keep the group graph connected and the
        port total even.
        """
        _require(world_size >= 1, f"world_size must be >= 1, got {world_size}")
        nodes = -(-world_size // self.ranks_per_node)
        a, p, h = self.routers_per_group, self.hosts_per_router, self.global_per_router
        g = max(2, -(-nodes // (a * p)))
        if a * h < g - 1:
            # Radix exhausted: rebalance toward a ~ sqrt(nodes / p).
            a = max(a, int((nodes / p) ** 0.5) + 1)
            g = max(2, -(-nodes // (a * p)))
            h = max(h, -(-(g - 1) // a))
        if (g * a * h) % 2:
            h += 1
        return dataclasses.replace(
            self, groups=g, routers_per_group=a, global_per_router=h
        )

    def machine(self) -> MachineSpec:
        return MachineSpec(
            name=self.name, nodes=self.nodes, node=self.node,
            fabric=self.host_link,
        )


def _default_rail_node() -> NodeSpec:
    return NodeSpec(
        sockets=2,
        cores_per_socket=8,
        gpu=GpuSpec(
            gpus_per_socket=4,
            pcie=LinkParams(alpha=1.0e-6, bandwidth=50e9),
            reduce_bandwidth=600e9,
            kernel_launch=3e-6,
            streams=8,
        ),
    )


@dataclass(frozen=True)
class RailPodSpec:
    """Rail-optimized GPU pod: NVLink islands + parallel IB rail planes.

    Every node is one NVLink/NVSwitch island (compiled as a clique over its
    GPUs). Inter-node traffic rides ``rails`` disjoint rail planes — one
    switch crossbar per rail — with the stable interface assignment of
    rail-optimized pods: GPU slot ``s`` owns the NIC on rail
    ``s % rails``, so same-slot peers cross a single rail and mismatched
    slots pay one NVLink forwarding hop on the destination island.
    """

    family: ClassVar[str] = "railpod"

    nodes: int = 4
    rails: int = 8
    node: NodeSpec = field(default_factory=_default_rail_node)
    #: GPU-to-GPU lane inside one island (NVLink through the NVSwitch).
    nvlink: LinkParams = field(default=LinkParams(alpha=0.7e-6, bandwidth=150e9))
    #: One NIC's lane onto its rail plane (and the rail switch ports).
    rail_link: LinkParams = field(default=LinkParams(alpha=1.0e-6, bandwidth=25e9))
    name: str = "railpod"

    def __post_init__(self) -> None:
        _require(self.nodes >= 1, f"rail pod needs >= 1 node, got {self.nodes}")
        _require(self.rails >= 1, f"rail pod needs >= 1 rail, got {self.rails}")
        _require(self.node.gpu is not None, "rail pod nodes need GPUs")
        gpus = self.node.gpus
        _require(
            gpus % self.rails == 0,
            f"{gpus} GPUs/node do not spread evenly over {self.rails} rails — "
            f"the per-slot interface assignment would be unstable",
        )

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus

    @property
    def ranks_per_node(self) -> int:
        return self.node.gpus  # ranks are GPU-bound on rail pods

    def rail_of_slot(self, slot: int) -> int:
        """The stable interface assignment: slot ``s`` injects on rail ``s % rails``."""
        return slot % self.rails

    def for_ranks(self, world_size: int) -> "RailPodSpec":
        _require(world_size >= 1, f"world_size must be >= 1, got {world_size}")
        nodes = -(-world_size // self.ranks_per_node)
        return dataclasses.replace(self, nodes=nodes)

    def machine(self) -> MachineSpec:
        return MachineSpec(
            name=self.name, nodes=self.nodes, node=self.node,
            fabric=self.rail_link, nics_per_node=self.rails,
        )


TopoSpec = FatTreeSpec | DragonflySpec | RailPodSpec
