"""The compiled topology: link list, path tables, serialization.

Compilation is a pure function of the spec: the link list comes out in a
fixed construction order, path selection uses only arithmetic on node
indices (never ``hash()`` or set iteration), and serialization sorts its
keys — so identical specs compile to byte-identical JSON in any process,
at any ``PYTHONHASHSEED``, under any worker count. The golden-file tests
(``tests/test_topo_golden.py``) hold that line.

A :class:`CompiledTopology` is consumed in two places:

* ``machine``: a :class:`~repro.machine.spec.MachineSpec` carrying the
  compiled model in its ``compiled`` field — the handle every existing
  experiment/bench/fault path already passes around. ``MpiWorld`` sees the
  field and swaps its flat fabric for a
  :class:`~repro.network.topofabric.TopoFabric`.
* ``node_path`` / ``gpu_peer_path``: the routing tables the fabric reads,
  resolved per node pair (and, for rail pods, per GPU slot).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class TopoLink:
    """One compiled link: a named contention point with Hockney parameters.

    ``src``/``dst`` are endpoint ids (``n<i>`` for nodes, switch ids
    otherwise); ``kind`` classifies the tier for reports and tests.
    Directed where direction matters (host up/down, switch tiers), like the
    flat fabric's NIC lanes; NVLink island lanes are undirected cliques.
    """

    name: str
    src: str
    dst: str
    kind: str
    bandwidth: float
    latency: float

    def to_dict(self) -> dict:
        return {
            "name": self.name, "src": self.src, "dst": self.dst,
            "kind": self.kind, "bandwidth": self.bandwidth,
            "latency": self.latency,
        }


#: (src_node, dst_node, src_slot, dst_slot) -> ordered link names.
PathFn = Callable[[int, int, int, int], tuple[str, ...]]
#: (node, slot_a, slot_b) -> link names for an intra-island GPU pair.
PeerFn = Callable[[int, int, int], tuple[str, ...]]


class CompiledTopology:
    """A lowered topology: the simulator-facing product of one compile."""

    def __init__(
        self,
        spec,
        switches: Sequence[str],
        links: Sequence[TopoLink],
        path_fn: PathFn,
        iface: Optional[Sequence[int]] = None,
        gpu_peer_fn: Optional[PeerFn] = None,
        gpu_bound: bool = False,
    ):
        self.family: str = spec.family
        self.spec = spec
        self.switches = tuple(switches)
        self.links = tuple(links)
        self.by_name = {link.name: link for link in self.links}
        if len(self.by_name) != len(self.links):
            raise ValueError(f"{self.family}: duplicate link names in compile")
        self._path_fn = path_fn
        self._gpu_peer_fn = gpu_peer_fn
        #: Per-GPU-slot rail assignment (rail pods), else None.
        self.iface = None if iface is None else tuple(iface)
        self.gpu_bound = gpu_bound
        #: The MachineSpec handle existing code paths consume; carries this
        #: compiled model so MpiWorld builds a TopoFabric from it.
        self.machine: MachineSpec = dataclasses.replace(
            spec.machine(), compiled=self
        )
        self._path_cache: dict[tuple[int, int, int, int], tuple[TopoLink, ...]] = {}

    # -- shape ---------------------------------------------------------------

    @property
    def nodes(self) -> int:
        return self.machine.nodes

    @property
    def ranks(self) -> int:
        """World size the model natively carries (GPU-bound on rail pods)."""
        if self.gpu_bound:
            return self.machine.total_gpus
        return self.machine.total_cores

    # -- routing -------------------------------------------------------------

    def node_path(
        self, src: int, dst: int, src_slot: int = 0, dst_slot: int = 0
    ) -> tuple[TopoLink, ...]:
        """Ordered links of the ``src`` -> ``dst`` inter-node segment."""
        key = (src, dst, src_slot, dst_slot)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        names = self._path_fn(src, dst, src_slot, dst_slot)
        path = tuple(self.by_name[n] for n in names)
        self._path_cache[key] = path
        return path

    def gpu_peer_path(
        self, node: int, slot_a: int, slot_b: int
    ) -> Optional[tuple[TopoLink, ...]]:
        """Intra-island GPU-to-GPU links, or None when the family has none."""
        if self._gpu_peer_fn is None:
            return None
        return tuple(
            self.by_name[n] for n in self._gpu_peer_fn(node, slot_a, slot_b)
        )

    # -- reports & serialization ---------------------------------------------

    def link_census(self) -> dict[str, int]:
        """Link count per kind, insertion-ordered (for summaries)."""
        census: dict[str, int] = {}
        for link in self.links:
            census[link.kind] = census.get(link.kind, 0) + 1
        return census

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "spec": _spec_dict(self.spec),
            "nodes": self.nodes,
            "ranks": self.ranks,
            "gpu_bound": self.gpu_bound,
            "switches": list(self.switches),
            "links": [link.to_dict() for link in self.links],
            "iface": None if self.iface is None else list(self.iface),
        }

    def to_json(self) -> str:
        """Canonical serialized form: byte-identical for identical specs."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def digest(self) -> str:
        """sha256 of the canonical form (the determinism receipt)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


def _spec_dict(spec) -> dict:
    d = dataclasses.asdict(spec)
    d["family"] = spec.family
    return d


def compile_topo(spec) -> CompiledTopology:
    """Lower a high-level topology spec to its compiled model."""
    # Deferred imports: the family modules import this one for TopoLink.
    from repro.topo import dragonfly, fattree, railpod
    from repro.topo.spec import DragonflySpec, FatTreeSpec, RailPodSpec

    if isinstance(spec, FatTreeSpec):
        return fattree.compile_fattree(spec)
    if isinstance(spec, DragonflySpec):
        return dragonfly.compile_dragonfly(spec)
    if isinstance(spec, RailPodSpec):
        return railpod.compile_railpod(spec)
    raise TypeError(f"not a topology spec: {spec!r}")
