"""Topology compiler: datacenter-scale machine models from high-level specs.

The pipeline (DESIGN.md §24)::

    spec (FatTreeSpec | DragonflySpec | RailPodSpec)
      -> compile_topo(spec) : CompiledTopology   (link list + path tables)
      -> from_topo(...)     : MachineSpec        (the handle the sim consumes)

``FAMILIES`` maps the CLI/bench names to default datacenter-shaped specs;
``family_for_ranks`` is the ``for_ranks`` analogue for compiled families
(``repro bench --scale`` sweeps rank counts through it), and
``small_family_machine`` builds the tiny instances the test suite runs
collectives on.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.spec import GpuSpec, MachineSpec, NodeSpec
from repro.topo.compile import CompiledTopology, TopoLink, compile_topo
from repro.topo.spec import DragonflySpec, FatTreeSpec, RailPodSpec, TopoSpec

#: Default datacenter-shaped spec per family (1024 ranks / 32 nodes for the
#: CPU families; a 4-node, 32-GPU pod for railpod).
FAMILIES: dict[str, TopoSpec] = {
    "fattree": FatTreeSpec(),
    "dragonfly": DragonflySpec(),
    "railpod": RailPodSpec(),
}

_SMALL_NODE = NodeSpec(sockets=2, cores_per_socket=1)

#: Tiny per-family instances: a few nodes, 2 ranks/node, so worlds of 4-12
#: ranks straddle every link tier — the conformance/property sweeps' grid.
_SMALL: dict[str, TopoSpec] = {
    "fattree": FatTreeSpec(
        leaves=2, spines=2, hosts_per_leaf=2, node=_SMALL_NODE,
    ),
    "dragonfly": DragonflySpec(
        groups=3, routers_per_group=2, hosts_per_router=1, global_per_router=1,
        node=_SMALL_NODE,
    ),
    "railpod": RailPodSpec(
        nodes=3, rails=2,
        node=NodeSpec(sockets=2, cores_per_socket=2,
                      gpu=GpuSpec(gpus_per_socket=1)),
    ),
}


def _family_spec(family: str) -> TopoSpec:
    try:
        return FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {family!r}; known: {sorted(FAMILIES)}"
        ) from None


def build_family(
    family: str, *, nodes: Optional[int] = None, ranks: Optional[int] = None
) -> MachineSpec:
    """Compile a family at its default shape, or resized to nodes/ranks."""
    spec = _family_spec(family)
    if nodes is not None and ranks is not None:
        raise ValueError("pass nodes or ranks, not both")
    if nodes is not None:
        spec = spec.for_ranks(nodes * spec.ranks_per_node)
    elif ranks is not None:
        spec = spec.for_ranks(ranks)
    return from_topo(spec)


def family_for_ranks(family: str, world_size: int) -> MachineSpec:
    """``machine.for_ranks`` for compiled families: smallest fitting model."""
    return build_family(family, ranks=world_size)


def small_family_machine(family: str) -> MachineSpec:
    """Tiny compiled instance of ``family`` for unit/property tests."""
    try:
        spec = _SMALL[family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {family!r}; known: {sorted(_SMALL)}"
        ) from None
    return from_topo(spec)


def from_topo(topo) -> MachineSpec:
    """A :class:`MachineSpec` from a topo spec or compiled topology.

    The returned spec carries the compiled model in its ``compiled`` field;
    every existing entry point (``run_collective``, experiments, faults,
    recovery) accepts it unchanged, and ``MpiWorld`` routes over the
    compiled link list.
    """
    compiled = topo if isinstance(topo, CompiledTopology) else compile_topo(topo)
    return compiled.machine


__all__ = [
    "FAMILIES",
    "CompiledTopology",
    "DragonflySpec",
    "FatTreeSpec",
    "RailPodSpec",
    "TopoLink",
    "TopoSpec",
    "build_family",
    "compile_topo",
    "family_for_ranks",
    "from_topo",
    "small_family_machine",
]
