"""Dragonfly generator: all-to-all groups joined by a circulant global plane.

Node ``n`` sits under router ``R = (n // hosts_per_router) % a`` of group
``G = n // (a * hosts_per_router)``. Link inventory:

* host up/down lanes onto the router;
* a full directed local mesh inside every group;
* the global plane: each group's ``a*h`` global ports are paired across
  groups by a circulant schedule — offsets ``d = 1, 2, ...`` each
  contribute the edge set ``{(i, i+d mod g)}`` (two ports per group), with
  the antipodal offset ``g/2`` contributing one port per group. The walk
  covers *every* offset once (cost ``g-1`` ports, affordable by the spec's
  ``a*h >= g-1`` check) before recycling into extra copies, so the group
  graph is complete — every pair of groups has a direct edge.

Each group's incident edges, sorted by (peer group, copy), map onto its
global ports in order; port ``p`` lives on router ``p // h`` — the stable
port assignment the conformance tests pin down.

Minimal routing: up, local hop to the exporting router (if needed), one
global hop, local hop to the destination router (if needed), down. Among
multiple global copies for a group pair, ``(src + dst) % copies`` picks
one deterministically.
"""

from __future__ import annotations

from repro.topo.compile import CompiledTopology, TopoLink
from repro.topo.spec import DragonflySpec


def global_edges(spec: DragonflySpec) -> list[tuple[int, int, int]]:
    """The circulant global plane: ``(group_a, group_b, copy)`` edges.

    Deterministic walk over offsets; every group ends with exactly
    ``group_degree`` incident edge-endpoints (its exported global links).
    """
    g, degree = spec.groups, spec.group_degree
    copies: dict[tuple[int, int], int] = {}
    edges: list[tuple[int, int, int]] = []

    def add(i: int, j: int) -> None:
        pair = (min(i, j), max(i, j))
        c = copies.get(pair, 0)
        copies[pair] = c + 1
        edges.append((pair[0], pair[1], c))

    def add_antipodal() -> None:
        # The self-paired offset g/2: one port per group (g even).
        for i in range(g // 2):
            add(i, i + g // 2)

    # One full round of offsets (1 .. (g-1)//2, plus the antipodal g/2 when
    # g is even) makes the group graph *complete* — minimal routing needs a
    # direct edge for every group pair, so the round must finish before any
    # offset recycles into extra copies. A paired offset consumes two
    # endpoints per group, the antipodal one; a round costs g-1, which the
    # spec's ``degree >= g-1`` check guarantees is affordable.
    paired = list(range(1, (g - 1) // 2 + 1))
    schedule = paired + ([g // 2] if g % 2 == 0 else [])
    need = degree  # per-group endpoints still to place
    pos = 0
    while need > 0:
        d = schedule[pos % len(schedule)]
        pos += 1
        if g % 2 == 0 and d == g // 2:
            add_antipodal()
            need -= 1
        elif need >= 2:
            for i in range(g):
                add(i, (i + d) % g)
            need -= 2
        else:
            # One endpoint left but the scheduled offset needs two: spend
            # it on the antipodal half-round (g is even here — odd g forces
            # an even degree through the spec's parity check).
            assert g % 2 == 0, "spec validation should prevent this"
            add_antipodal()
            need -= 1
    return edges


def _port_tables(
    spec: DragonflySpec, edges: list[tuple[int, int, int]]
) -> dict[tuple[int, int, int], tuple[int, int]]:
    """Map each global edge to its (router_a, router_b) endpoints.

    A group's incident edges, sorted by (peer, copy), take its ports in
    order; port ``p`` belongs to router ``p // global_per_router``.
    """
    incident: dict[int, list[tuple[int, int, tuple[int, int, int]]]] = {
        i: [] for i in range(spec.groups)
    }
    for edge in edges:
        a, b, c = edge
        incident[a].append((b, c, edge))
        incident[b].append((a, c, edge))
    router_of: dict[tuple[int, tuple[int, int, int]], int] = {}
    for group, rows in incident.items():
        rows.sort(key=lambda r: (r[0], r[1]))
        for port, (_, _, edge) in enumerate(rows):
            router_of[(group, edge)] = port // spec.global_per_router
    return {
        edge: (router_of[(edge[0], edge)], router_of[(edge[1], edge)])
        for edge in edges
    }


def _locate(spec: DragonflySpec, node: int) -> tuple[int, int]:
    """Node -> (group, router-within-group)."""
    router_global = node // spec.hosts_per_router
    return router_global // spec.routers_per_group, router_global % spec.routers_per_group


def compile_dragonfly(spec: DragonflySpec) -> CompiledTopology:
    host, local, glob = spec.host_link, spec.local_link, spec.global_link
    links: list[TopoLink] = []
    for node in range(spec.nodes):
        group, router = _locate(spec, node)
        rid = f"g{group}r{router}"
        links.append(TopoLink(f"df:n{node}>{rid}", f"n{node}", rid,
                              "host-up", host.bandwidth, host.alpha))
        links.append(TopoLink(f"df:{rid}>n{node}", rid, f"n{node}",
                              "host-down", host.bandwidth, 0.0))
    for group in range(spec.groups):
        for ra in range(spec.routers_per_group):
            for rb in range(spec.routers_per_group):
                if ra == rb:
                    continue
                links.append(TopoLink(
                    f"df:g{group}r{ra}>r{rb}", f"g{group}r{ra}", f"g{group}r{rb}",
                    "local", local.bandwidth, local.alpha,
                ))
    edges = global_edges(spec)
    ports = _port_tables(spec, edges)
    edge_router: dict[tuple[int, int, int], tuple[int, int]] = {}
    for edge in sorted(edges):
        ga, gb, c = edge
        ra, rb = ports[edge]
        edge_router[edge] = (ra, rb)
        ea, eb = f"g{ga}r{ra}", f"g{gb}r{rb}"
        links.append(TopoLink(f"df:{ea}>{eb}:c{c}", ea, eb,
                              "global", glob.bandwidth, glob.alpha))
        links.append(TopoLink(f"df:{eb}>{ea}:c{c}", eb, ea,
                              "global", glob.bandwidth, glob.alpha))
    switches = [
        f"g{g}r{r}"
        for g in range(spec.groups)
        for r in range(spec.routers_per_group)
    ]
    # Pair -> ordered copies, for deterministic copy selection in routing.
    pair_edges: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
    for edge in sorted(edges):
        pair_edges.setdefault((edge[0], edge[1]), []).append(edge)

    def path_fn(src: int, dst: int, src_slot: int, dst_slot: int) -> tuple[str, ...]:
        gs, rs = _locate(spec, src)
        gd, rd = _locate(spec, dst)
        up = f"df:n{src}>g{gs}r{rs}"
        down = f"df:g{gd}r{rd}>n{dst}"
        if (gs, rs) == (gd, rd):
            return (up, down)
        if gs == gd:
            return (up, f"df:g{gs}r{rs}>r{rd}", down)
        pair = (min(gs, gd), max(gs, gd))
        copies = pair_edges[pair]
        edge = copies[(src + dst) % len(copies)]
        ra, rb = edge_router[edge]
        # Orient the edge from the source side.
        if gs == edge[0]:
            exp_s, exp_d = ra, rb
        else:
            exp_s, exp_d = rb, ra
        hops = [up]
        if rs != exp_s:
            hops.append(f"df:g{gs}r{rs}>r{exp_s}")
        hops.append(f"df:g{gs}r{exp_s}>g{gd}r{exp_d}:c{edge[2]}")
        if exp_d != rd:
            hops.append(f"df:g{gd}r{exp_d}>r{rd}")
        hops.append(down)
        return tuple(hops)

    return CompiledTopology(spec, switches, links, path_fn)
