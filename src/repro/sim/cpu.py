"""Per-rank CPU model.

Every simulated MPI rank owns one :class:`Cpu`: a serial, non-preemptive
resource on which all of that rank's software activity runs — posting sends
and recvs, protocol handling, completion callbacks, reduction arithmetic, and
injected noise. Serializing these on one resource is what makes noise
*matter*: a rank whose CPU is busy cannot post the next segment, match an
incoming message, or run an ADAPT callback, exactly like a real MPI process
descheduled by an OS daemon.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine


class Cpu:
    """Serial FIFO work executor with occupancy accounting.

    Work submitted with :meth:`execute` starts when all previously submitted
    work (including noise intervals) has finished, runs for its stated
    duration, then fires its completion callback.
    """

    __slots__ = (
        "engine",
        "name",
        "_busy_until",
        "busy_time",
        "noise_time",
        "work_items",
        "halted",
        "obs",
        "obs_rank",
        "_shadow_busy_until",
        "noise_absorbed_seconds",
    )

    def __init__(self, engine: Engine, name: str = "cpu"):
        self.engine = engine
        self.name = name
        self._busy_until = 0.0
        self.busy_time = 0.0  # total seconds of real work executed
        self.noise_time = 0.0  # total seconds of injected noise
        self.work_items = 0
        self.halted = False  # fail-stopped: queued and future work is dropped
        # Observability hook (repro.obs): an ObsRecorder, or None (the
        # default, costing one pointer test per execute/inject_noise). When
        # attached, the CPU also keeps a *shadow* clock advanced by work but
        # not by noise: the real-vs-shadow lag measures how much injected
        # noise actually displaced work (the noise-absorption metric).
        self.obs = None
        self.obs_rank = -1
        self._shadow_busy_until = 0.0
        self.noise_absorbed_seconds = 0.0

    @property
    def shadow_busy_until(self) -> float:
        """Where the busy clock would be had no noise ever been injected."""
        return self._shadow_busy_until

    @property
    def busy_until(self) -> float:
        """Absolute time at which all currently queued work completes."""
        return self._busy_until

    def available_at(self) -> float:
        """Earliest time new work could start."""
        return max(self.engine.now, self._busy_until)

    def execute(
        self,
        duration: float,
        fn: Optional[Callable[..., Any]] = None,
        *args: Any,
    ) -> float:
        """Queue ``duration`` seconds of work; call ``fn(*args)`` when done.

        Returns the absolute completion time.
        """
        if duration < 0:
            raise ValueError(f"negative work duration {duration}")
        if self.halted:
            # A fail-stopped rank executes nothing; callers see time stand
            # still and completion callbacks simply never fire.
            return self._busy_until
        busy = self._busy_until
        now = self.engine.now
        start = busy if busy > now else now
        end = start + duration
        if self.obs is not None:
            # Shadow clock: same update as the real one, minus noise. Lag
            # between the clocks that closes across an idle gap is noise the
            # schedule absorbed (the CPU would have idled anyway).
            lag_before = max(0.0, self._busy_until - self._shadow_busy_until)
            shadow_start = max(self.engine.now, self._shadow_busy_until)
            self._shadow_busy_until = shadow_start + duration
            lag_after = start - shadow_start
            if lag_before > lag_after:
                self.noise_absorbed_seconds += lag_before - lag_after
            if duration > 0.0:
                self.obs.add("cpu", "work", ("rank", self.obs_rank), start, end)
        self._busy_until = end
        self.busy_time += duration
        self.work_items += 1
        if fn is not None:
            # Dispatch through the halt gate: work queued before a fail-stop
            # whose completion lands after it must not run. Handle-free post:
            # CPU completions are never cancelled, only halt-gated. (An
            # inline fast path for zero-duration work on an idle CPU was
            # tried and rejected: it reorders same-instant callbacks, which
            # the schedule analysis reads as synchronization edges.)
            self.engine.post_at(end, self._dispatch, fn, args)
        return end

    def _dispatch(self, fn: Callable[..., Any], args: tuple) -> None:
        if self.halted:
            return
        fn(*args)

    def halt(self) -> None:
        """Fail-stop this CPU: drop queued work and refuse new work.

        Models a crashed process: events already scheduled on the engine for
        this CPU are silently discarded when they fire.
        """
        self.halted = True

    def when_available(self, fn: Callable[..., Any], *args: Any) -> float:
        """Run ``fn`` as soon as the CPU is free (zero-duration work item)."""
        return self.execute(0.0, fn, *args)

    def inject_noise(self, duration: float) -> float:
        """Inject a busy interval (noise) starting as soon as possible.

        Models an OS daemon / interference event stealing the core: all work
        submitted afterwards is pushed back by ``duration``.
        """
        if duration < 0:
            raise ValueError(f"negative noise duration {duration}")
        start = self.available_at()
        self._busy_until = start + duration
        self.noise_time += duration
        if self.obs is not None and duration > 0.0:
            # The shadow clock does not advance: the real-vs-shadow lag this
            # opens is the noise that must be absorbed or paid for.
            self.obs.add("noise", "noise", ("rank", self.obs_rank), start, self._busy_until)
        return self._busy_until
