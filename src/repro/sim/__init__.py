"""Discrete-event simulation substrate.

The engine is the foundation everything else in :mod:`repro` is built on: the
contention network (:mod:`repro.network`), the per-rank CPUs with noise
injection (:mod:`repro.sim.cpu`, :mod:`repro.noise`), and the simulated MPI
runtime (:mod:`repro.mpi`) all schedule and cancel events here.
"""

from repro.sim.engine import Engine, EventHandle, SimulationError
from repro.sim.cpu import Cpu
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Engine",
    "EventHandle",
    "SimulationError",
    "Cpu",
    "TraceRecorder",
    "TraceEvent",
]
