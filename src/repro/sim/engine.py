"""Discrete-event engine with epoch-based batch draining.

The schedule is a two-level structure (DESIGN.md §23): a binary heap of
*distinct timestamps* plus a bucket (list) of entries per timestamp. All
events sharing an instant — an *epoch* — drain in one loop over their
bucket, so the per-event cost at a crowded timestamp is a list append on
the way in and one dispatch on the way out, with no heap traffic. Large
collective simulations are exactly that regime: the deterministic Hockney
model lands whole waves of completions on bit-identical timestamps.

All simulated time is in **seconds** (float). Determinism: events scheduled
for the same instant fire in scheduling order (buckets are append-only and
drained front to back), so a fixed seed yields an identical timeline on
every run — the exact tie-break rule of the earlier ``(time, seq)`` heap.

Three entry kinds share a bucket, distinguished by ``type``:

* ``list``  — ``[fn, args]``, a cancellable event backed by an
  :class:`EventHandle` (``cancel`` blanks ``fn`` in place);
* ``tuple`` — ``(fn, args)``, a fire-and-forget post with arguments;
* anything else is a bare zero-argument callable (the cheapest kind —
  :meth:`Engine.post_batch` extends a bucket with thousands of them in one
  C-level call).

Cancellation is lazy; a compaction pass rewrites the buckets in place when
cancelled entries outnumber live ones (heavy flow rescheduling used to grow
the old heap without bound).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

#: Compaction trigger: at least this many cancelled entries *and* more
#: cancelled than live. Small schedules never pay the rebuild.
_COMPACT_MIN = 512


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle to a cancellable scheduled event; supports O(1) cancellation.

    Cancellation is lazy: the bucket entry stays in place (blanked) and is
    discarded when its epoch drains or a compaction pass rewrites the
    bucket. ``fn`` is dropped on cancel so captured state can be collected.
    """

    __slots__ = ("time", "seq", "cancelled", "_entry", "_engine")

    def __init__(self, engine: "Engine", time: float, seq: int, entry: list):
        self._engine = engine
        self.time = time
        self.seq = seq
        self._entry = entry
        self.cancelled = False

    @property
    def fn(self) -> Optional[Callable[..., Any]]:
        """The pending callback, or None once fired or cancelled."""
        return self._entry[0]

    @property
    def args(self) -> tuple:
        return self._entry[1]

    def cancel(self) -> None:
        """Cancel the event. Idempotent; safe after the event has fired."""
        self.cancelled = True
        entry = self._entry
        if entry[0] is not None:
            entry[0] = None
            entry[1] = ()
            engine = self._engine
            engine._live -= 1
            engine._cancelled += 1
            if (
                engine._cancelled > _COMPACT_MIN
                and engine._cancelled > engine._live
            ):
                engine._compact()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else (
            "pending" if self._entry[0] is not None else "fired"
        )
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Epoch-draining discrete-event scheduler.

    Usage::

        eng = Engine()
        eng.call_at(1e-6, callback, arg)
        eng.run()

    ``call_at``/``call_after`` return a cancellable :class:`EventHandle`;
    ``post_at``/``post_after``/``post_batch`` are the handle-free fast path
    for events that are never cancelled (completion dispatch, protocol
    steps), skipping the handle allocation entirely.
    """

    __slots__ = (
        "_times",
        "_buckets",
        "_seq",
        "_now",
        "_running",
        "_events_processed",
        "_live",
        "_cancelled",
    )

    def __init__(self) -> None:
        # Heap of bare floats (distinct scheduled timestamps; float
        # comparison runs in C) + dict time -> bucket list of entries.
        self._times: list[float] = []
        self._buckets: dict[float, list] = {}
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._live = 0        # scheduled, not yet fired or cancelled
        self._cancelled = 0   # cancelled entries still parked in buckets

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    # -- scheduling ---------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        self._seq += 1
        entry = [fn, args]
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [entry]
            heapq.heappush(self._times, time)
        else:
            bucket.append(entry)
        self._live += 1
        return EventHandle(self, time, self._seq, entry)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time`` with no cancellation handle.

        The hot-path variant of :meth:`call_at`: no :class:`EventHandle` is
        allocated, so the entry is a bare callable (no args) or one tuple.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        entry = (fn, args) if args else fn
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [entry]
            heapq.heappush(self._times, time)
        else:
            bucket.append(entry)
        self._live += 1

    def post_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Handle-free :meth:`call_after`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.post_at(self._now + delay, fn, *args)

    def post_batch(self, time: float, fns: Iterable[Callable[[], Any]]) -> None:
        """Schedule many zero-argument callables at one instant.

        One heap touch for the whole batch (the bucket is extended at C
        speed); the callables fire in iteration order within the epoch.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = list(fns)
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
            self._live += len(bucket)
        else:
            before = len(bucket)
            bucket.extend(fns)
            self._live += len(bucket) - before

    # -- introspection ------------------------------------------------------

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return self._live

    def stats(self) -> dict[str, float]:
        """Engine-level counters (the observability layer's engine hook)."""
        return {
            "now": self._now,
            "events_processed": float(self._events_processed),
            "pending": float(self._live),
            "cancelled_parked": float(self._cancelled),
        }

    # -- maintenance --------------------------------------------------------

    def _compact(self) -> None:
        """Drop cancelled entries and empty buckets; rebuild the time heap.

        Mutates the existing containers in place (``run`` holds local
        references to them). The bucket currently being drained was already
        popped from the map, so the drain loop's iterator never shifts.
        """
        buckets = self._buckets
        for t in list(buckets):
            bucket = buckets[t]
            live = [
                e for e in bucket
                if type(e) is not list or e[0] is not None
            ]
            if live:
                if len(live) != len(bucket):
                    bucket[:] = live
            else:
                del buckets[t]
        self._times[:] = buckets.keys()
        heapq.heapify(self._times)
        # Cancelled entries parked in a bucket being drained right now (if
        # any) were not collected; the drain loop's clamped decrement makes
        # the counter self-correct as they vanish with their epoch.
        self._cancelled = 0

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the final simulated time."""
        if self._running:
            raise SimulationError("engine already running (reentrant run())")
        self._running = True
        try:
            if max_events is None:
                self._run_fast(until)
            else:
                self._run_counted(until, max_events)
        finally:
            self._running = False
        return self._now

    def _run_fast(self, until: Optional[float]) -> None:
        # Hot loop: locals avoid repeated attribute/global lookups; the
        # container objects are stable (compaction mutates them in place).
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        pop_bucket = self._buckets.pop
        tup = tuple
        lst = list
        processed = 0
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    self._now = until
                    return
                heappop(times)
                bucket = pop_bucket(t, None)
                if bucket is None:
                    continue  # stale heap entry left behind by _compact
                self._now = t
                # Epoch drain: everything at this instant in one loop. An
                # event scheduled *at* now mid-drain lands in a fresh bucket
                # for the same timestamp and drains immediately after — the
                # scheduling-order tie-break of the old (time, seq) heap.
                for e in bucket:
                    kind = type(e)
                    if kind is tup:
                        e[0](*e[1])
                        processed += 1
                    elif kind is lst:
                        fn = e[0]
                        if fn is None:
                            # Lazily-cancelled entry vanishing with its epoch.
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        e[0] = None
                        args = e[1]
                        e[1] = ()
                        fn(*args)
                        processed += 1
                    else:
                        e()
                        processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._events_processed += processed
            self._live -= processed

    def _run_counted(self, until: Optional[float], max_events: int) -> None:
        """The bounded variant: may stop mid-epoch and resume later."""
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        tup = tuple
        lst = list
        fired = 0
        try:
            while times and fired < max_events:
                t = times[0]
                if until is not None and t > until:
                    self._now = until
                    return
                heappop(times)
                bucket = buckets.pop(t, None)
                if bucket is None:
                    continue
                self._now = t
                i = 0
                while i < len(bucket) and fired < max_events:
                    e = bucket[i]
                    i += 1
                    kind = type(e)
                    if kind is tup:
                        e[0](*e[1])
                        fired += 1
                    elif kind is lst:
                        fn = e[0]
                        if fn is None:
                            if self._cancelled > 0:
                                self._cancelled -= 1
                            continue
                        e[0] = None
                        args = e[1]
                        e[1] = ()
                        fn(*args)
                        fired += 1
                    else:
                        e()
                        fired += 1
                if i < len(bucket):
                    # Stopped mid-epoch: requeue the unfired suffix ahead of
                    # anything scheduled at this instant mid-drain, so the
                    # next run resumes in the original order.
                    del bucket[:i]
                    later = buckets.get(t)
                    if later is None:
                        buckets[t] = bucket
                        heapq.heappush(times, t)
                    else:
                        bucket.extend(later)
                        buckets[t] = bucket
            if (
                until is not None
                and until > self._now
                and not times
            ):
                self._now = until
        finally:
            self._events_processed += fired
            self._live -= fired

    def step(self) -> bool:
        """Fire the single next event. Returns False if the queue is empty."""
        before = self._events_processed
        self.run(max_events=1)
        return self._events_processed > before
