"""Discrete-event engine.

A minimal, fast event scheduler: a binary heap of ``(time, seq, handle)``
entries with lazy cancellation. All simulated time is in **seconds** (float).
Determinism: events scheduled for the same instant fire in scheduling order
(the monotonically increasing ``seq`` breaks ties), so a fixed seed yields an
identical timeline on every run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class EventHandle:
    """Handle to a scheduled event; supports O(1) cancellation.

    Cancellation is lazy: the heap entry stays in place and is discarded when
    popped. ``fn`` is dropped on cancel so captured state can be collected.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Cancel the event. Idempotent; safe after the event has fired."""
        self.cancelled = True
        self.fn = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


class Engine:
    """Heap-based discrete-event scheduler.

    Usage::

        eng = Engine()
        eng.call_at(1e-6, callback, arg)
        eng.run()
    """

    __slots__ = ("_heap", "_seq", "_now", "_running", "_events_processed")

    def __init__(self) -> None:
        # Heap of (time, seq, handle) tuples: tuple comparison runs in C,
        # which matters at millions of events per run.
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def stats(self) -> dict[str, float]:
        """Engine-level counters (the observability layer's engine hook)."""
        return {
            "now": self._now,
            "events_processed": float(self._events_processed),
            "pending": float(self.pending()),
        }

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the final simulated time."""
        if self._running:
            raise SimulationError("engine already running (reentrant run())")
        self._running = True
        fired = 0
        # Hot loop: locals avoid repeated attribute/global lookups. The heap
        # list object is stable (callbacks push onto it, never rebind it).
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                head_time, _, handle = heap[0]
                if handle.cancelled:
                    heappop(heap)
                    continue
                if until is not None and head_time > until:
                    self._now = until
                    break
                heappop(heap)
                self._now = head_time
                fn = handle.fn
                args = handle.args
                handle.fn = None  # release references
                handle.args = ()
                assert fn is not None
                fn(*args)
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Fire the single next event. Returns False if the queue is empty."""
        before = self._events_processed
        self.run(max_events=1)
        return self._events_processed > before
