"""Timeline tracing.

A :class:`TraceRecorder` collects ``(time, rank, kind, detail)`` tuples from
the MPI runtime when enabled. Tests use it to assert *causal structure* — e.g.
that under a Waitall implementation a delayed child postpones traffic to its
siblings, while under ADAPT it does not (the paper's Figure 2 analysis) — and
the examples use it to print per-rank timelines.

Events are indexed by kind as they arrive, so :meth:`TraceRecorder.of_kind`
and :meth:`TraceRecorder.first` cost O(matches) rather than a scan of the
whole log — large sweeps record hundreds of thousands of events and the
structural assertions only ever look at one kind at a time. A ``max_events``
cap (default one million) guards unbounded growth: once hit, further events
are counted in :attr:`TraceRecorder.dropped` instead of stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

# Default storage cap; a run that exceeds it keeps counting but stops storing.
DEFAULT_MAX_EVENTS = 1_000_000


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded runtime event."""

    time: float
    rank: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.3f} us] rank {self.rank:4d} {self.kind:<12} {self.detail}"


class TraceRecorder:
    """Append-only event log with a per-kind index, cheap to disable."""

    __slots__ = ("enabled", "max_events", "events", "dropped", "_by_kind")

    def __init__(self, enabled: bool = True, max_events: int = DEFAULT_MAX_EVENTS):
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._by_kind: dict[str, list[TraceEvent]] = {}

    def record(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        if not self.enabled:
            return
        events = self.events
        if len(events) >= self.max_events:
            self.dropped += 1
            return
        event = TraceEvent(time, rank, kind, detail)
        events.append(event)
        # Inlined setdefault: skips the throwaway list construction on the
        # (overwhelmingly common) existing-kind path.
        per_kind = self._by_kind.get(kind)
        if per_kind is None:
            self._by_kind[kind] = [event]
        else:
            per_kind.append(event)

    @property
    def truncated(self) -> bool:
        """True when the cap was hit and events were discarded."""
        return self.dropped > 0

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return list(self._by_kind.get(kind, ()))

    def first(self, kind: str, rank: Optional[int] = None) -> Optional[TraceEvent]:
        for e in self._by_kind.get(kind, ()):
            if rank is None or e.rank == rank:
                return e
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
