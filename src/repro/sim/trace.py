"""Timeline tracing.

A :class:`TraceRecorder` collects ``(time, rank, kind, detail)`` tuples from
the MPI runtime when enabled. Tests use it to assert *causal structure* — e.g.
that under a Waitall implementation a delayed child postpones traffic to its
siblings, while under ADAPT it does not (the paper's Figure 2 analysis) — and
the examples use it to print per-rank timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded runtime event."""

    time: float
    rank: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.3f} us] rank {self.rank:4d} {self.kind:<12} {self.detail}"


class TraceRecorder:
    """Append-only event log, cheap to disable."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, rank, kind, detail))

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def first(self, kind: str, rank: Optional[int] = None) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind and (rank is None or e.rank == rank):
                return e
        return None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
