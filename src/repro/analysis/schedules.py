"""Canonical schedules the analyzer knows how to build and record.

Maps CLI/test-friendly names (``bcast-adapt``, ``reduce-blocking``, ...) to
launchable collective schedules on a fresh recording world, plus the
intentionally broken schedules used to exercise the linter: a classic
swapped-send deadlock and a tag-mismatch orphan.

Recording worlds carry no payload data (structure is independent of bytes)
and run on the small test machine — extraction is about the dependency
shape, not timing, so any transport cost model yields the same graph.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.analysis.depgraph import DepGraph, record
from repro.collectives import (
    allgather_adapt,
    allreduce_adapt,
    alltoall_adapt,
    barrier_adapt,
    bcast_adapt,
    bcast_blocking,
    bcast_nonblocking,
    gather_adapt,
    reduce_adapt,
    reduce_blocking,
    reduce_nonblocking,
    reduce_scatter_adapt,
    scatter_adapt,
)
from repro.collectives.base import CollectiveContext
from repro.config import CollectiveConfig, RuntimeConfig
from repro.machine import small_test_machine
from repro.mpi.communicator import Communicator
from repro.mpi.proclet import ProcletDriver
from repro.mpi.runtime import MpiWorld
from repro.trees import binary_tree, binomial_tree, chain_tree, flat_tree
from repro.trees.base import Tree

SCHEDULES: dict[str, Callable[..., Any]] = {
    "bcast-blocking": bcast_blocking,
    "bcast-nonblocking": bcast_nonblocking,
    "bcast-adapt": bcast_adapt,
    "reduce-blocking": reduce_blocking,
    "reduce-nonblocking": reduce_nonblocking,
    "reduce-adapt": reduce_adapt,
    "scatter-adapt": scatter_adapt,
    "gather-adapt": gather_adapt,
    "allreduce-adapt": allreduce_adapt,
    "barrier-adapt": barrier_adapt,
    "allgather-adapt": allgather_adapt,
    "reduce-scatter-adapt": reduce_scatter_adapt,
    "alltoall-adapt": alltoall_adapt,
}

TREES: dict[str, Callable[[int], Tree]] = {
    "chain": chain_tree,
    "binary": binary_tree,
    "binomial": binomial_tree,
    "flat": flat_tree,
}

# Schedule names the CLI accepts beyond the real collectives.
DEMO_SCHEDULES = (
    "deadlock-demo", "tag-mismatch-demo", "recovery-demo", "race-demo",
)


def recording_world(
    nranks: int,
    config: Optional[RuntimeConfig] = None,
    trace: bool = False,
) -> MpiWorld:
    nodes = max(1, -(-nranks // 8))  # 8 cores/node on the test machine
    spec = small_test_machine(nodes=nodes)
    return MpiWorld(spec, nranks, config=config or RuntimeConfig(), trace=trace)


def analyze_schedule(
    name: str,
    nranks: int = 8,
    tree: str = "binary",
    nbytes: int = 512 * 1024,
    config: Optional[CollectiveConfig] = None,
    runtime_config: Optional[RuntimeConfig] = None,
    root: int = 0,
) -> DepGraph:
    """Record one collective schedule and return its dependency graph."""
    if name in DEMO_SCHEDULES:
        return analyze_demo(name, nranks=nranks, nbytes=nbytes)
    try:
        algo = SCHEDULES[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule {name!r}; choose from "
            f"{sorted(SCHEDULES) + list(DEMO_SCHEDULES)}"
        ) from None
    try:
        tree_builder = TREES[tree]
    except KeyError:
        raise ValueError(f"unknown tree {tree!r}; choose from {sorted(TREES)}") from None
    config = config or CollectiveConfig(segment_size=64 * 1024)
    runtime_config = runtime_config or RuntimeConfig()
    world = recording_world(nranks, config=runtime_config)
    comm = Communicator(world)
    shape = tree_builder(nranks).reroot_relabelled(root)
    ctx = CollectiveContext(comm, root, nbytes, config, tree=shape)
    graph = record(
        world,
        lambda: algo(ctx),
        meta={
            "schedule": name,
            "tree": tree,
            "nranks": nranks,
            "nbytes": nbytes,
            "segments": len(config.segments_for(nbytes)),
            "root": root,
            "eager_threshold": runtime_config.eager_threshold,
        },
    )
    graph.stats.posted_recvs_window = config.posted_recvs
    graph.stats.inflight_sends_window = config.inflight_sends
    return graph


def analyze_demo(name: str, nranks: int = 2, nbytes: int = 256 * 1024) -> DepGraph:
    """Record one of the intentionally broken demo schedules."""
    if name == "deadlock-demo":
        return deadlock_demo(nranks=max(2, nranks), nbytes=nbytes)
    if name == "tag-mismatch-demo":
        # Keep the message eager-sized: the demo's point is the *orphaned*
        # completed send, not a rendezvous deadlock.
        return tag_mismatch_demo(nbytes=min(nbytes, 4 * 1024))
    if name == "recovery-demo":
        return recovery_demo(nranks=max(4, nranks), nbytes=nbytes)
    if name == "race-demo":
        return race_demo(nbytes=min(nbytes, 4 * 1024))
    raise ValueError(f"unknown demo schedule {name!r}")


def deadlock_demo(nranks: int = 2, nbytes: int = 256 * 1024) -> DepGraph:
    """The classic head-to-head blocking-send deadlock.

    Every rank in the ring does a *blocking* send to its neighbour before
    posting its receive. With rendezvous-sized messages the send cannot
    complete until the peer posts the matching recv — and every peer is
    itself stuck in its send. The schedule quiesces with all ranks blocked
    in a waits-for cycle, which the linter must flag.
    """
    # Force rendezvous so the sends truly block (eager sends buffer locally).
    rcfg = RuntimeConfig(eager_threshold=min(1024, nbytes - 1))
    world = recording_world(nranks, config=rcfg)

    def program(rank: int, peer: int) -> Iterator[Any]:
        rt = world.ranks[rank]
        yield rt.isend(peer, tag=rank, nbytes=nbytes)       # blocks forever
        yield rt.irecv(peer, tag=peer, nbytes=nbytes)       # never reached

    def launch() -> None:
        for rank in range(nranks):
            peer = (rank + 1) % nranks
            ProcletDriver(world.ranks[rank], program(rank, peer))

    return record(
        world, launch,
        meta={
            "schedule": "deadlock-demo", "nranks": nranks, "nbytes": nbytes,
            "eager_threshold": rcfg.eager_threshold,
        },
    )


def recovery_demo(nranks: int = 8, nbytes: int = 256 * 1024) -> DepGraph:
    """A mid-flight fail-stop with live recovery armed.

    A broadcast loses an interior rank while segments are in flight; the
    membership protocol agrees on the death and the tree re-grafts around
    it. The recorded graph carries ``meta["failed_ranks"]``, so the linter
    excuses the dead rank's stranded edges — and must find **no**
    ``stranded-survivor``: the proof that recovery schedules stay
    deadlock-free (the property the CI lint job asserts).
    """
    from repro.faults import FaultInjector, FaultPlan
    from repro.recovery import launch_recover
    from repro.trees import topology_aware_tree

    world = recording_world(nranks)
    comm = Communicator(world)
    config = CollectiveConfig(segment_size=16 * 1024)
    tree = topology_aware_tree(world.topology, list(comm.ranks), 0)
    ctx = CollectiveContext(comm, 0, nbytes, config, tree=tree)
    victim = min(nranks - 1, 2)
    plan = FaultPlan.single_kill(victim, 2e-4, detect_delay=2e-4)

    def launch() -> None:
        launch_recover("bcast", ctx)
        FaultInjector(world, plan).arm(0.05)

    return record(
        world, launch,
        meta={
            "schedule": "recovery-demo", "nranks": nranks, "nbytes": nbytes,
            "victim": victim,
            "eager_threshold": world.config.eager_threshold,
        },
    )


def tag_mismatch_demo(nbytes: int = 4 * 1024) -> DepGraph:
    """Sender and receiver disagree on the tag: both sides orphan."""
    world = recording_world(2)

    def sender() -> Iterator[Any]:
        yield world.ranks[0].isend(1, tag=7, nbytes=nbytes)  # eager: completes

    def receiver() -> Iterator[Any]:
        yield world.ranks[1].irecv(0, tag=8, nbytes=nbytes)  # never matched

    def launch() -> None:
        ProcletDriver(world.ranks[0], sender())
        ProcletDriver(world.ranks[1], receiver())

    return record(
        world, launch,
        meta={
            "schedule": "tag-mismatch-demo", "nranks": 2, "nbytes": nbytes,
            "eager_threshold": world.config.eager_threshold,
        },
    )


def race_demo(nbytes: int = 4 * 1024) -> DepGraph:
    """Two same-key messages in flight at once: a message race.

    Rank 0 fires two eager sends to rank 1 on the *same* tag back to back;
    rank 1 posts two recvs for that tag. The simulator's in-order fabric
    happens to deliver them in post order, so the run completes and the
    single-interleaving linter sees nothing wrong — but a reordering
    network may swap the payloads. Only exhaustive interleaving exploration
    (``repro verify``) catches this: at some reachable state both sends are
    simultaneously unmatched, so the recv's match is arrival-order-dependent
    and the schedule is not deterministic.
    """
    world = recording_world(2)
    tag = 5

    def sender() -> None:
        rt = world.ranks[0]
        first = rt.isend(1, tag=tag, nbytes=nbytes)
        # Eager: completes locally at once, so the second same-tag send is
        # in flight while the first may still be crossing the fabric.
        first.add_callback(lambda _r: rt.isend(1, tag=tag, nbytes=nbytes))

    def receiver() -> None:
        rt = world.ranks[1]
        rt.irecv(0, tag=tag, nbytes=nbytes)
        rt.irecv(0, tag=tag, nbytes=nbytes)

    def launch() -> None:
        world.ranks[0].cpu.when_available(sender)
        world.ranks[1].cpu.when_available(receiver)

    return record(
        world, launch,
        meta={
            "schedule": "race-demo", "nranks": 2, "nbytes": nbytes,
            "eager_threshold": world.config.eager_threshold,
        },
    )
