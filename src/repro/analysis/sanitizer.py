"""Runtime sanitizer: assert simulator invariants while a world runs.

Opt-in via ``MpiWorld(..., sanitize=True)``. The sanitizer is the dynamic
counterpart of the static linter: instead of proving properties of an
extracted graph, it checks invariants *during* a real (timed, noisy, GPU)
simulation and raises :class:`SanitizerError` at the first violation:

* every request posted is eventually completed, and completion time never
  precedes posting time;
* at world drain (a ``run()`` to quiescence) no request is in flight and no
  matcher queue holds stranded posted recvs or unexpected payloads;
* ADAPT in-flight send windows stay within ``[0, N]`` (a negative or
  over-cap window means the refill accounting broke);
* max-min fair-share allocations conserve link capacity: the flows crossing
  a link never sum above its rate, no flow runs negative or above its cap;
* per-rank trace timestamps are monotonically non-decreasing (the event
  engine must never run a rank backwards in time).

The checks are deliberately cheap (O(1) per event, O(flows) per rebalance)
so sanitized runs stay usable for the full correctness suite.
"""

from __future__ import annotations

from typing import Any, Iterable

# Relative slack for float accumulation in rate sums.
_RATE_TOL = 1e-6


class SanitizerError(AssertionError):
    """An invariant the simulator promised was violated."""


class Sanitizer:
    """Per-world invariant checker (see module docstring)."""

    def __init__(self, world: Any):
        self.world = world
        self._pending: dict[Any, float] = {}  # request -> post time
        self._last_trace: dict[int, float] = {}
        self.checks_run = 0

    # -- request lifecycle -------------------------------------------------------

    def on_post(self, req: Any) -> None:
        self.checks_run += 1
        if req in self._pending:
            raise SanitizerError(f"request posted twice: {req!r}")
        self._pending[req] = self.world.engine.now

    def on_complete(self, req: Any) -> None:
        self.checks_run += 1
        posted = self._pending.pop(req, None)
        if posted is None:
            raise SanitizerError(f"completion of a request never posted: {req!r}")
        now = self.world.engine.now
        if now < posted:
            raise SanitizerError(
                f"request completed at t={now} before its post at t={posted}: {req!r}"
            )

    def check_drained(self) -> None:
        """World ran to quiescence: nothing may remain in flight."""
        self.checks_run += 1
        if self._pending:
            sample = sorted(
                (repr(r) for r in self._pending), key=str
            )[:5]
            raise SanitizerError(
                f"{len(self._pending)} request(s) still in flight at world "
                f"drain, e.g. {sample}"
            )
        for rt in self.world.ranks:
            posted = rt.matcher.pending_posted()
            inbound = rt.matcher.pending_inbound()
            if posted or inbound:
                raise SanitizerError(
                    f"rank {rt.rank} matcher not empty at drain: "
                    f"{posted} posted recv(s), {inbound} stranded arrival(s)"
                )

    # -- collective windows ------------------------------------------------------

    def window(self, rank: int, peer: Any, value: int, cap: int) -> None:
        self.checks_run += 1
        if value < 0:
            raise SanitizerError(
                f"rank {rank}: in-flight window to {peer} went negative ({value})"
            )
        if value > cap:
            raise SanitizerError(
                f"rank {rank}: in-flight window to {peer} exceeds N={cap} ({value})"
            )

    # -- fair-share conservation ---------------------------------------------------

    def check_rates(self, flows: Iterable[Any], links: Iterable[Any]) -> None:
        self.checks_run += 1
        for f in flows:
            if f.done:
                continue
            if f.rate < 0:
                raise SanitizerError(f"flow {f.fid} assigned negative rate {f.rate}")
            if f.rate > f.rate_cap * (1 + _RATE_TOL):
                raise SanitizerError(
                    f"flow {f.fid} rate {f.rate:.6g} exceeds its cap "
                    f"{f.rate_cap:.6g}"
                )
        for link in links:
            total = sum(f.rate for f in link.flows if not f.done)
            if total > link.capacity * (1 + _RATE_TOL):
                raise SanitizerError(
                    f"link {link.name}: allocated {total:.6g} B/s exceeds "
                    f"capacity {link.capacity:.6g} B/s "
                    f"across {len(link.flows)} flow(s)"
                )

    # -- trace monotonicity ---------------------------------------------------------

    def on_trace(self, time: float, rank: int) -> None:
        self.checks_run += 1
        last = self._last_trace.get(rank)
        if last is not None and time < last:
            raise SanitizerError(
                f"rank {rank} trace time went backwards: {time} after {last}"
            )
        self._last_trace[rank] = time
