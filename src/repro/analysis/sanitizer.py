"""Runtime sanitizer: assert simulator invariants while a world runs.

Opt-in via ``MpiWorld(..., sanitize=True)``. The sanitizer is the dynamic
counterpart of the static linter: instead of proving properties of an
extracted graph, it checks invariants *during* a real (timed, noisy, GPU)
simulation and raises :class:`SanitizerError` at the first violation:

* every request posted is eventually completed (or cancelled by the fault
  layer), and completion time never precedes posting time;
* at world drain (a ``run()`` to quiescence) no request is in flight and no
  matcher queue holds stranded posted recvs or unexpected payloads — except
  those a fail-stopped rank explains: requests owned by or targeting a dead
  rank, and arrivals a dead rank sent before it crashed;
* under the reliable transport, messages are conserved: every wire attempt
  (plus every fabric-injected duplicate) is accounted for as a fresh
  delivery, a suppressed duplicate, an injected drop, or a loss at a dead
  rank — and no live rank leaks transport retry state;
* ADAPT in-flight send windows stay within ``[0, N]`` (a negative or
  over-cap window means the refill accounting broke);
* max-min fair-share allocations conserve link capacity: the flows crossing
  a link never sum above its rate, no flow runs negative or above its cap;
* per-rank trace timestamps are monotonically non-decreasing (the event
  engine must never run a rank backwards in time).

The checks are deliberately cheap (O(1) per event, O(flows) per rebalance)
so sanitized runs stay usable for the full correctness suite.
"""

from __future__ import annotations

from typing import Any, Iterable

# Relative slack for float accumulation in rate sums.
_RATE_TOL = 1e-6

# Residual bytes at or below this are "drained" — must match the allocator's
# finish threshold (repro.network.fairshare._EPSILON_BYTES).
_DRAINED_BYTES = 1e-6


class SanitizerError(AssertionError):
    """An invariant the simulator promised was violated."""


class Sanitizer:
    """Per-world invariant checker (see module docstring)."""

    def __init__(self, world: Any) -> None:
        self.world = world
        self._pending: dict[Any, float] = {}  # request -> post time
        self._last_trace: dict[int, float] = {}
        self.checks_run = 0
        self.cancellations = 0

    # -- request lifecycle -------------------------------------------------------

    def on_post(self, req: Any) -> None:
        self.checks_run += 1
        if req in self._pending:
            raise SanitizerError(f"request posted twice: {req!r}")
        self._pending[req] = self.world.engine.now

    def on_complete(self, req: Any) -> None:
        self.checks_run += 1
        posted = self._pending.pop(req, None)
        if posted is None:
            raise SanitizerError(f"completion of a request never posted: {req!r}")
        now = self.world.engine.now
        if now < posted:
            raise SanitizerError(
                f"request completed at t={now} before its post at t={posted}: {req!r}"
            )

    def on_cancel(self, req: Any) -> None:
        """The fault layer abandoned a request; it is accounted for."""
        self.checks_run += 1
        self.cancellations += 1
        self._pending.pop(req, None)

    def check_drained(self) -> None:
        """World ran to quiescence: nothing may remain in flight.

        A fail-stop excuses exactly the wreckage it explains: requests owned
        by or addressed to a dead rank, posted recvs waiting on a dead peer,
        and arrivals the dead rank sent before crashing. Anything else left
        over is still a leak.

        Confirmed failures excuse the same wreckage (DESIGN.md S22): a rank
        the detector *ever* declared failed — even one that is ground-truth
        alive and later retracted — had its in-flight work written off by
        every survivor while the confirmation stood, so requests it owns or
        is peered with can stay incomplete by design, not by leak.
        """
        self.checks_run += 1
        failed = set(getattr(self.world, "failed_ranks", None) or set())
        detector = getattr(self.world, "failure_detector", None)
        if detector is not None:
            failed |= detector.ever_confirmed
        leaked = [
            req
            for req in self._pending
            if getattr(req, "rank", None) not in failed
            and getattr(req, "peer", None) not in failed
        ]
        if leaked:
            sample = sorted((repr(r) for r in leaked), key=str)[:5]
            raise SanitizerError(
                f"{len(leaked)} request(s) still in flight at world "
                f"drain, e.g. {sample}"
            )
        for rt in self.world.ranks:
            if rt.rank in failed:
                continue  # a dead rank's matcher froze mid-operation
            stranded_posted = [
                req
                for queue in rt.matcher.posted.values()
                for req in queue
                if req.peer not in failed
            ]
            stranded_inbound = [
                msg
                for queue in rt.matcher.inbound.values()
                for msg in queue
                if msg.src not in failed
            ]
            if stranded_posted or stranded_inbound:
                raise SanitizerError(
                    f"rank {rt.rank} matcher not empty at drain: "
                    f"{len(stranded_posted)} posted recv(s), "
                    f"{len(stranded_inbound)} stranded arrival(s)"
                )
        if getattr(self.world.config, "reliable", False):
            self._check_transport_conservation(failed)
        frontier = getattr(self.world, "staleness_frontier", None)
        if frontier is not None:
            # Drain time is the end of the line for parked stragglers:
            # resolve each into an accounted discard before balancing.
            frontier.flush_pending()
            self._check_contribution_conservation(frontier, failed)

    def _check_transport_conservation(self, failed: set[int]) -> None:
        """Reliable transport: wire attempts must all be accounted for."""
        self.checks_run += 1
        world = self.world
        for rt in world.ranks:
            if rt.rank not in failed and rt._reliable_pending:
                raise SanitizerError(
                    f"rank {rt.rank} leaked {len(rt._reliable_pending)} "
                    f"reliable-transport send state(s) at drain"
                )
        stats = world.transport_stats()
        faults = getattr(world.fabric, "faults", None)
        injector = faults._injector if faults is not None else None
        dropped = injector.dropped if injector is not None else 0
        duplicated = injector.duplicated if injector is not None else 0
        # Severed ≠ leaked: a data-plane launch cut by a network partition
        # never entered the wire, but the sender *did* count the attempt.
        severed = injector.severed if injector is not None else 0
        sent = stats["transmissions"] + duplicated
        accounted = (
            stats["fresh_deliveries"]
            + stats["duplicates_suppressed"]
            + stats["msgs_lost_dead"]
            + dropped
            + severed
            + stats["checksum_rejects"]
        )
        if sent != accounted:
            raise SanitizerError(
                "reliable transport conservation violated at drain: "
                f"{stats['transmissions']} transmission(s) + {duplicated} "
                f"injected duplicate(s) != {stats['fresh_deliveries']} fresh "
                f"+ {stats['duplicates_suppressed']} suppressed "
                f"+ {dropped} dropped + {severed} severed "
                f"+ {stats['msgs_lost_dead']} lost-at-dead "
                f"+ {stats['checksum_rejects']} checksum-rejected"
            )

    def _check_contribution_conservation(
        self, frontier: Any, failed: set[int]
    ) -> None:
        """Quorum collectives: no contribution is ever silently lost.

        Every contribution a quorum collective opened must end merged
        on-time, merged late, or explicitly discarded (DESIGN.md S25). An
        entry still open at drain is excused only if its owning rank is dead
        or was ever confirmed failed — the contribution then never arrived,
        and the failure detector explains why. The ledger's per-entry states
        and aggregate counters are cross-checked as a double-entry book, so
        a code path that updates one but not the other is caught here.
        """
        self.checks_run += 1
        ledger = frontier.ledger
        lost = [
            (epoch, rank)
            for epoch, rank in ledger.open_entries()
            if rank not in failed
        ]
        if lost:
            raise SanitizerError(
                f"{len(lost)} quorum contribution(s) from live ranks "
                f"silently lost at drain (neither merged on-time, merged "
                f"late, nor discarded), e.g. (epoch, rank) {lost[:5]}"
            )
        still_open = sum(1 for st in ledger.entries.values() if st == "open")
        if ledger.opened != (
            ledger.on_time + ledger.late + ledger.discarded + still_open
        ):
            raise SanitizerError(
                "contribution conservation violated at drain: "
                f"{ledger.opened} opened != {ledger.on_time} on-time "
                f"+ {ledger.late} late-merged + {ledger.discarded} "
                f"discarded + {still_open} open-at-dead"
            )

    # -- collective windows ------------------------------------------------------

    def window(self, rank: int, peer: Any, value: int, cap: int) -> None:
        self.checks_run += 1
        if value < 0:
            raise SanitizerError(
                f"rank {rank}: in-flight window to {peer} went negative ({value})"
            )
        if value > cap:
            raise SanitizerError(
                f"rank {rank}: in-flight window to {peer} exceeds N={cap} ({value})"
            )

    # -- fair-share conservation ---------------------------------------------------

    def check_rates(self, flows: Iterable[Any], links: Iterable[Any]) -> None:
        self.checks_run += 1
        for f in flows:
            if f.done:
                continue
            if f.rate < 0:
                raise SanitizerError(f"flow {f.fid} assigned negative rate {f.rate}")
            if f.rate > f.rate_cap * (1 + _RATE_TOL):
                raise SanitizerError(
                    f"flow {f.fid} rate {f.rate:.6g} exceeds its cap "
                    f"{f.rate_cap:.6g}"
                )
        for link in links:
            # A fully drained flow awaiting its _finish callback still sits
            # in link.flows with its last rate, but carries no further
            # bytes — its stale rate is not a capacity claim.
            total = sum(
                f.rate for f in link.flows
                if not f.done and f.remaining > _DRAINED_BYTES
            )
            if total > link.capacity * (1 + _RATE_TOL):
                raise SanitizerError(
                    f"link {link.name}: allocated {total:.6g} B/s exceeds "
                    f"capacity {link.capacity:.6g} B/s "
                    f"across {len(link.flows)} flow(s)"
                )

    # -- trace monotonicity ---------------------------------------------------------

    def on_trace(self, time: float, rank: int) -> None:
        self.checks_run += 1
        last = self._last_trace.get(rank)
        if last is not None and time < last:
            raise SanitizerError(
                f"rank {rank} trace time went backwards: {time} after {last}"
            )
        self._last_trace[rank] = time
