"""Schedule linter: prove properties of an extracted dependency graph.

Rules, per Section 2 of the paper and standard MPI hygiene:

* ``deadlock-cycle`` — the world quiesced with proclets blocked in a
  waits-for cycle (rank A waits on a message only rank B can produce, and
  vice versa). Error; this is the bug class blocking schedules admit.
* ``unmatched-send`` / ``unmatched-recv`` — a posted operation whose pair
  never appeared: the payload is stranded in the unexpected queue, or the
  recv never completes. Both are reported with the rank/peer/tag triple.
* ``tag-mismatch`` / ``peer-mismatch`` — an unmatched send and an unmatched
  recv that agree on the endpoints but disagree on the tag (or agree on the
  tag but cross peers): almost always a schedule authoring bug.
* ``leaked-request`` — an incomplete request not owned by any blocked
  waiter: an event-driven schedule posted it and lost track (its callback
  can never fire).
* ``unexpected-risk`` — static form of the Section 2.2.1 rule: the recv
  window ``M`` must exceed the send window ``N`` or segments can arrive
  before their recv is posted and pay the extra unexpected-queue copy.
* ``unexpected-messages`` — the dynamic counterpart: the run actually
  buffered eager messages in the unexpected queue.
* ``graph-cycle`` — the happens-before graph itself has a cycle (recorder
  or runtime bug; happens-before must be a DAG).
* ``stranded-survivor`` — in a run where ranks fail-stopped (the graph's
  ``meta["failed_ranks"]``, captured automatically by ``record``), unmatched
  operations touching a dead rank are *excused* as repair debris, but an
  unmatched operation strictly between survivors means the recovery left a
  live rank waiting on a message that can never arrive — the invariant the
  tree re-grafting engine (DESIGN.md S20) must uphold.

``certify`` summarizes the dependency census the paper's Figure 2 argument
is about: ADAPT schedules must show **zero** synchronization edges while
blocking/Waitall schedules show the sibling-coupling edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.depgraph import DepGraph, OpNode
from repro.harness.report import format_findings, format_table

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One lint result, structured for programmatic assertion."""

    rule: str
    severity: str
    message: str
    rank: Optional[int] = None
    peer: Optional[int] = None
    tag: Optional[int] = None
    path: tuple[str, ...] = ()

    def as_row(self) -> tuple[str, ...]:
        def cell(v: object) -> str:
            return "-" if v is None else str(v)

        return (self.severity, self.rule, cell(self.rank), cell(self.peer),
                cell(self.tag), self.message)


@dataclass
class Certification:
    """Dependency census of one schedule (the Figure 2 summary)."""

    schedule: str
    data_edges: int
    sync_edges: int
    flow_edges: int
    sibling_coupling: int
    sync_by_via: dict[str, int]
    nodes_by_kind: dict[str, int]

    @property
    def zero_sync(self) -> bool:
        return self.sync_edges == 0

    def verdict(self) -> str:
        if self.zero_sync:
            return (
                "CERTIFIED: 0 synchronization dependencies "
                "(only data and flow-control edges remain)"
            )
        return (
            f"{self.sync_edges} synchronization dependencies "
            f"({self.sibling_coupling} sibling-coupling)"
        )


@dataclass
class LintReport:
    graph: DepGraph
    findings: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def render(self) -> str:
        return render_report(self.graph, self.findings)


def certify(graph: DepGraph) -> Certification:
    sync = graph.sync_edges()
    by_via: dict[str, int] = {}
    for e in sync:
        by_via[e.via] = by_via.get(e.via, 0) + 1
    by_kind: dict[str, int] = {}
    for n in graph.nodes.values():
        by_kind[n.kind] = by_kind.get(n.kind, 0) + 1
    return Certification(
        schedule=str(graph.meta.get("schedule", "?")),
        data_edges=len(graph.data_edges()),
        sync_edges=len(sync),
        flow_edges=len(graph.flow_edges()),
        sibling_coupling=len(graph.sibling_coupling_edges()),
        sync_by_via=by_via,
        nodes_by_kind=by_kind,
    )


# -- rules ---------------------------------------------------------------------


def _find_deadlock(graph: DepGraph) -> list[Finding]:
    """Cycle detection on the rank-level waits-for graph at quiescence."""
    if not graph.blocked:
        return []
    waits_for: dict[int, set[int]] = {}
    detail: dict[int, list[str]] = {}
    for b in graph.blocked:
        for nid in b.pending:
            node = graph.nodes[nid]
            if node.peer is None:
                continue
            waits_for.setdefault(b.rank, set()).add(node.peer)
            detail.setdefault(b.rank, []).append(node.describe())
    # Iterative DFS for a cycle in the small rank digraph.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {r: WHITE for r in waits_for}
    cycle: Optional[list[int]] = None
    for root in sorted(waits_for):
        if color.get(root, WHITE) != WHITE or cycle:
            continue
        path = [root]
        stack = [(root, iter(sorted(waits_for.get(root, ()))))]
        color[root] = GREY
        while stack and cycle is None:
            rank, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, WHITE) == GREY:
                    cycle = path[path.index(nxt):] + [nxt]
                    break
                if color.get(nxt, WHITE) == WHITE and nxt in waits_for:
                    color[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(waits_for.get(nxt, ())))))
                    advanced = True
                    break
            if cycle or advanced:
                continue
            color[rank] = BLACK
            path.pop()
            stack.pop()
    if cycle is None:
        return []
    ranks = cycle[:-1]
    path_desc = tuple(
        f"rank {r} blocked on {', '.join(detail.get(r, ['?']))}" for r in ranks
    )
    return [
        Finding(
            rule="deadlock-cycle",
            severity=ERROR,
            message=(
                "waits-for cycle at quiescence: "
                + " -> ".join(str(r) for r in cycle)
            ),
            rank=ranks[0],
            path=path_desc,
        )
    ]


def _find_unmatched(graph: DepGraph) -> list[Finding]:
    findings: list[Finding] = []
    # Resolution is by request identity (the recorder's op_cancelled hook):
    # a request completed or withdrawn inside a callback — even one
    # registered after a wait already sampled its gates — is accounted for
    # and must never be re-counted here from post-order bookkeeping.
    sends = [
        n for n in (graph.nodes[i] for i in graph.unmatched_sends)
        if not n.cancelled
    ]
    recvs = [
        n for n in (graph.nodes[i] for i in graph.unmatched_recvs)
        if not n.cancelled
    ]
    blocked_ids = {nid for b in graph.blocked for nid in b.pending}
    # Recovery semantics (DESIGN.md S20): in a run where ranks fail-stopped,
    # an unmatched operation *touching* a dead rank is expected debris (the
    # repair re-routed around it); one strictly between survivors means the
    # recovery left a live rank waiting on a message that can never come —
    # the exact invariant the re-grafting engine must uphold.
    failed = set(graph.meta.get("failed_ranks", ()))
    if failed:
        def strands(node: OpNode) -> bool:
            if node.rank in failed or node.peer in failed:
                return False
            # A zero-byte survivor-to-survivor send is repair debris (a
            # barrier release replayed to a rank that already exited):
            # always eager, completes locally, strands nobody.
            return not (node.kind == "send" and node.nbytes == 0)

        findings.extend(
            Finding(
                rule="stranded-survivor", severity=ERROR,
                message=(
                    "survivor-to-survivor operation stranded after recovery "
                    f"(failed ranks: {sorted(failed)})"
                ),
                rank=node.rank, peer=node.peer, tag=node.tag,
                path=(node.describe(),),
            )
            for node in sends + recvs
            if strands(node)
        )
        return findings
    paired: set[int] = set()
    for s in sends:
        partner = next(
            (r for r in recvs
             if r.nid not in paired and r.rank == s.peer and r.peer == s.rank
             and r.tag != s.tag),
            None,
        )
        if partner is not None:
            paired.add(partner.nid)
            paired.add(s.nid)
            findings.append(Finding(
                rule="tag-mismatch", severity=ERROR,
                message=(
                    f"send tag {s.tag} vs posted recv tag {partner.tag} "
                    f"between ranks {s.rank} and {s.peer}"
                ),
                rank=s.rank, peer=s.peer, tag=s.tag,
                path=(s.describe(), partner.describe()),
            ))
            continue
        crossed = next(
            (r for r in recvs
             if r.nid not in paired and r.rank == s.peer and r.tag == s.tag
             and r.peer != s.rank),
            None,
        )
        if crossed is not None:
            paired.add(crossed.nid)
            paired.add(s.nid)
            findings.append(Finding(
                rule="peer-mismatch", severity=ERROR,
                message=(
                    f"send from rank {s.rank} but rank {s.peer} expects the "
                    f"message from rank {crossed.peer} (tag {s.tag})"
                ),
                rank=s.rank, peer=s.peer, tag=s.tag,
                path=(s.describe(), crossed.describe()),
            ))
    for s in sends:
        if s.nid in paired:
            continue
        findings.append(Finding(
            rule="unmatched-send", severity=ERROR,
            message="no matching recv ever consumed this message",
            rank=s.rank, peer=s.peer, tag=s.tag, path=(s.describe(),),
        ))
    for r in recvs:
        if r.nid in paired:
            continue
        rule = "unmatched-recv" if r.nid in blocked_ids else "leaked-request"
        msg = (
            "posted recv never matched by any send"
            if rule == "unmatched-recv"
            else "incomplete request with no waiter: its callback can never fire"
        )
        findings.append(Finding(
            rule=rule, severity=ERROR, message=msg,
            rank=r.rank, peer=r.peer, tag=r.tag, path=(r.describe(),),
        ))
    return findings


def _find_unexpected(graph: DepGraph) -> list[Finding]:
    findings: list[Finding] = []
    m = graph.stats.posted_recvs_window
    n = graph.stats.inflight_sends_window
    if m is not None and n is not None and m <= n:
        findings.append(Finding(
            rule="unexpected-risk", severity=WARNING,
            message=(
                f"recv window M={m} <= send window N={n}: Section 2.2.1 "
                "requires M > N or segments arrive before their recv is posted"
            ),
        ))
    if graph.stats.unexpected_eager > 0:
        findings.append(Finding(
            rule="unexpected-messages", severity=WARNING,
            message=(
                f"{graph.stats.unexpected_eager} eager message(s) arrived "
                "unexpected and paid the buffered-copy penalty"
            ),
        ))
    return findings


def _find_graph_cycle(graph: DepGraph) -> list[Finding]:
    cycle = graph.has_cycle()
    if cycle is None:
        return []
    path = tuple(graph.nodes[n].describe() for n in cycle)
    return [Finding(
        rule="graph-cycle", severity=ERROR,
        message="happens-before graph contains a cycle (must be a DAG)",
        path=path,
    )]


def lint(graph: DepGraph) -> LintReport:
    """Run every rule against one extracted graph."""
    findings: list[Finding] = []
    findings.extend(_find_deadlock(graph))
    findings.extend(_find_unmatched(graph))
    findings.extend(_find_unexpected(graph))
    findings.extend(_find_graph_cycle(graph))
    order = {ERROR: 0, WARNING: 1}
    findings.sort(key=lambda f: (order.get(f.severity, 2), f.rule, f.rank or -1))
    return LintReport(graph=graph, findings=findings)


# -- rendering ------------------------------------------------------------------


def render_report(graph: DepGraph, findings: list[Finding]) -> str:
    cert = certify(graph)
    meta = graph.meta
    title = "Schedule analysis: " + " ".join(
        f"{k}={meta[k]}" for k in ("schedule", "tree", "nranks", "nbytes", "segments")
        if k in meta
    )
    kinds = sorted(cert.nodes_by_kind)
    census_rows = [
        ("nodes", " ".join(f"{k}={cert.nodes_by_kind[k]}" for k in kinds)),
        ("data edges", str(cert.data_edges)),
        ("flow-control edges", str(cert.flow_edges)),
        ("synchronization edges", str(cert.sync_edges)),
        ("  sibling-coupling", str(cert.sibling_coupling)),
    ]
    for via, count in sorted(cert.sync_by_via.items()):
        census_rows.append((f"  via {via}", str(count)))
    out = [format_table(title, ["dependency census", "count"], census_rows), ""]
    sibling = graph.sibling_coupling_edges()
    if sibling:
        out.append("Sibling-coupling edges (Figure 2), first 8:")
        for e in sibling[:8]:
            out.append("  " + graph.describe_edge(e))
        out.append("")
    if findings:
        out.append(format_findings([f.as_row() for f in findings]))
        for f in findings:
            if f.path:
                out.append(f"  {f.rule}:")
                for step in f.path:
                    out.append(f"    {step}")
        out.append("")
    else:
        out.append("No lint findings.")
        out.append("")
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        # A schedule with error findings is broken regardless of its
        # dependency census; don't let it read as certified.
        out.append(
            f"NOT CERTIFIED: {len(errors)} error finding(s) "
            f"({cert.sync_edges} synchronization dependencies)"
        )
    else:
        out.append(cert.verdict())
    return "\n".join(out)
