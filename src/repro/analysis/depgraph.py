"""Dependency-graph extraction from collective schedules.

A :class:`GraphRecorder` attaches to an :class:`~repro.mpi.runtime.MpiWorld`
as its ``observer`` and logs every posted send/recv, wait, completion
callback, and reduction as a graph node while the schedule runs. Transport
timing is irrelevant to the extracted structure, so recording runs are cheap:
no payloads are carried and the smallest test machine suffices.

Happens-before edges are classified the way Section 2 of the paper reasons
about them:

* ``data`` — the consumer uses the producer's bytes: the cross-rank
  send->recv match edge, a recv (or reduction) feeding a same-segment send or
  reduction, and provenance edges recovered by tag matching.
* ``sync`` — completion of one operation gates the posting of another that
  does *not* consume its data: the blocking-order edges of Section 2.1.1 and
  the ``Waitall`` barrier edges of Section 2.1.2. These are exactly the
  dependencies ADAPT's callback design removes; the linter certifies ADAPT
  schedules as having zero of them.
* ``flow`` — same-kind, same-peer window refills (the next send to a child
  posted when an earlier send to that child completes; the ``M``-deep recv
  window). These are resource constraints, not synchronization: they never
  couple siblings and appear in every pipelined schedule including ADAPT's.

Wait and callback nodes are linked into the graph with ``order`` edges so
lint findings can show the full causal path; certification counts only the
classified op->op dependency edges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.mpi.request import Request

# Dependency-edge kinds (op -> op, what certification counts).
DATA = "data"
SYNC = "sync"
FLOW = "flow"
# Structural kind linking wait/callback nodes into the happens-before graph.
ORDER = "order"

_SYNC_VIA = {
    "wait": "blocking-order",
    "waitall": "waitall-barrier",
    "waitany": "blocking-order",
    "callback": "callback-order",
    "compute": "compute-order",
}


@dataclass
class OpNode:
    """One recorded runtime event (operation, wait, or callback)."""

    nid: int
    kind: str  # send|recv|reduce|compute|wait|waitall|waitany|callback
    rank: int
    peer: Optional[int] = None
    tag: Optional[int] = None
    nbytes: int = 0
    posted_at: float = 0.0
    completed_at: Optional[float] = None
    # True when the request was withdrawn (MPI_Cancel-like) rather than
    # delivered: resolved by identity, never counted as unmatched/leaked.
    cancelled: bool = False

    def describe(self) -> str:
        if self.kind == "send":
            return f"send[{self.rank}->{self.peer} tag={self.tag} {self.nbytes}B]"
        if self.kind == "recv":
            return f"recv[{self.rank}<-{self.peer} tag={self.tag} {self.nbytes}B]"
        if self.kind == "reduce":
            tag = "" if self.tag is None else f" tag={self.tag}"
            return f"reduce[rank {self.rank}{tag} {self.nbytes}B]"
        if self.kind == "compute":
            return f"compute[rank {self.rank}]"
        return f"{self.kind}[rank {self.rank}]"


@dataclass(frozen=True)
class DepEdge:
    """A happens-before edge between two graph nodes."""

    src: int
    dst: int
    kind: str  # data|sync|flow|order
    via: str   # match|provenance|blocking-order|waitall-barrier|...


@dataclass(frozen=True)
class BlockedWait:
    """A proclet left waiting at quiescence (deadlock/lint input)."""

    rank: int
    via: str
    waited_on: tuple[int, ...]   # node ids of every request in the gate
    pending: tuple[int, ...]     # the subset that never completed


@dataclass
class GraphStats:
    """World-level facts the linter folds into findings."""

    nranks: int = 0
    unexpected_eager: int = 0
    leftover_posted_recvs: int = 0
    leftover_inbound: int = 0
    posted_recvs_window: Optional[int] = None   # M
    inflight_sends_window: Optional[int] = None  # N


@dataclass
class DepGraph:
    """The extracted dependency DAG of one schedule."""

    nodes: dict[int, OpNode] = field(default_factory=dict)
    dep_edges: list[DepEdge] = field(default_factory=list)
    order_edges: list[DepEdge] = field(default_factory=list)
    blocked: list[BlockedWait] = field(default_factory=list)
    unmatched_sends: list[int] = field(default_factory=list)
    unmatched_recvs: list[int] = field(default_factory=list)
    stats: GraphStats = field(default_factory=GraphStats)
    meta: dict[str, Any] = field(default_factory=dict)

    # -- views ----------------------------------------------------------------

    def ops(self, kind: Optional[str] = None) -> list[OpNode]:
        return [n for n in self.nodes.values() if kind is None or n.kind == kind]

    def edges(self, kind: str) -> list[DepEdge]:
        return [e for e in self.dep_edges if e.kind == kind]

    def data_edges(self) -> list[DepEdge]:
        return self.edges(DATA)

    def sync_edges(self) -> list[DepEdge]:
        return self.edges(SYNC)

    def flow_edges(self) -> list[DepEdge]:
        return self.edges(FLOW)

    def sibling_coupling_edges(self) -> list[DepEdge]:
        """Sync edges coupling two transfers of one rank to *different* peers.

        These are the Figure 2 edges: under blocking or Waitall schedules a
        late sibling delays traffic to its peers; ADAPT has none.
        """
        out = []
        for e in self.sync_edges():
            a, b = self.nodes[e.src], self.nodes[e.dst]
            if (
                a.rank == b.rank
                and a.peer is not None
                and b.peer is not None
                and a.peer != b.peer
            ):
                out.append(e)
        return out

    def describe_edge(self, e: DepEdge) -> str:
        return (
            f"{self.nodes[e.src].describe()} -> {self.nodes[e.dst].describe()}"
            f" [{e.kind}/{e.via}]"
        )

    def has_cycle(self) -> Optional[list[int]]:
        """Return one cycle (node ids) in the happens-before graph, if any."""
        adj: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for e in self.dep_edges + self.order_edges:
            adj[e.src].append(e.dst)
        WHITE, GREY, BLACK = 0, 1, 2
        color = dict.fromkeys(adj, WHITE)
        for root in adj:
            if color[root] != WHITE:
                continue
            stack: list[tuple[int, Iterable[int]]] = [(root, iter(adj[root]))]
            color[root] = GREY
            path = [root]
            while stack:
                nid, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GREY:
                        return path[path.index(nxt):] + [nxt]
                    if color[nxt] == WHITE:
                        color[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, iter(adj[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[nid] = BLACK
                    path.pop()
                    stack.pop()
        return None


class GraphRecorder:
    """Observer that assembles a :class:`DepGraph` while a world runs.

    Attach with ``world.observer = recorder`` before launching the schedule;
    call :meth:`finalize` after the world quiesces.
    """

    def __init__(self, world: Any) -> None:
        self.world = world
        self.nodes: dict[int, OpNode] = {}
        self.dep_edges: list[DepEdge] = []
        self.order_edges: list[DepEdge] = []
        self._dep_seen: set[tuple[int, int]] = set()
        self._next_id = 0
        # Current posting context: (holder node id | None, via, gate node ids).
        self._ctx: list[tuple[Optional[int], str, tuple[int, ...]]] = []
        self._req_node: dict[Request, int] = {}
        # FIFO of unpaired send nodes per (src, dst, tag) for match edges.
        self._send_queue: dict[tuple[int, int, int], deque[int]] = {}
        self._matched_sends: set[int] = set()
        # Proclets still waiting (driver id -> (rank, via, requests)).
        self._waiting: dict[int, tuple[int, str, tuple[Request, ...]]] = {}

    # -- node/edge plumbing ----------------------------------------------------

    def _new_node(self, kind: str, rank: int, **kw: Any) -> OpNode:
        self._next_id += 1
        node = OpNode(
            nid=self._next_id, kind=kind, rank=rank,
            posted_at=self.world.engine.now, **kw,
        )
        self.nodes[node.nid] = node
        return node

    def _add_dep(self, src: int, dst: int, kind: str, via: str) -> None:
        if src == dst or (src, dst) in self._dep_seen:
            return
        self._dep_seen.add((src, dst))
        self.dep_edges.append(DepEdge(src, dst, kind, via))

    def _classify(self, g: OpNode, b: OpNode, via: str) -> tuple[str, str]:
        """Label the dependency of newly posted ``b`` on completed gate ``g``."""
        if (
            g.kind == b.kind
            and g.kind in ("send", "recv")
            and g.rank == b.rank
            and g.peer == b.peer
        ):
            return FLOW, "window"
        if g.kind in ("recv", "reduce", "compute") and b.kind in (
            "send", "reduce", "compute",
        ):
            consumes = (
                via == "callback"          # event-driven: callback forwards its payload
                or g.kind == "compute"
                or b.kind == "compute"
                or (g.tag is not None and g.tag == b.tag)
            )
            if consumes:
                return DATA, via
        return SYNC, _SYNC_VIA.get(via, via)

    def _link_from_context(self, b: OpNode) -> None:
        if not self._ctx:
            return
        holder, via, gates = self._ctx[-1]
        if holder is not None:
            self.order_edges.append(DepEdge(holder, b.nid, ORDER, "program"))
        for g in gates:
            gnode = self.nodes.get(g)
            if gnode is None:
                continue
            kind, subvia = self._classify(gnode, b, via)
            self._add_dep(g, b.nid, kind, subvia)

    def _gate_ids(self, items: Sequence[Any]) -> tuple[int, ...]:
        ids = []
        for item in items:
            if isinstance(item, Request):
                nid = self._req_node.get(item)
                if nid is not None:
                    ids.append(nid)
            elif isinstance(item, int):
                ids.append(item)
        return tuple(ids)

    # -- runtime-facing hooks ---------------------------------------------------

    def op_posted(self, req: Request) -> None:
        """A send or recv was posted on its owning rank."""
        node = self._new_node(
            req.kind, req.rank, peer=req.peer, tag=req.tag, nbytes=req.nbytes
        )
        self._req_node[req] = node.nid
        self._link_from_context(node)
        if req.kind == "send":
            key = (req.rank, req.peer, req.tag)
            self._send_queue.setdefault(key, deque()).append(node.nid)

    def op_completed(self, req: Request) -> None:
        nid = self._req_node.get(req)
        if nid is None:
            return
        node = self.nodes[nid]
        node.completed_at = self.world.engine.now
        if req.kind == "recv":
            # Pair with the oldest unpaired send of the same (src, dst, tag):
            # the runtime matcher is FIFO within a key, so this mirrors it.
            queue = self._send_queue.get((req.peer, req.rank, req.tag))
            if queue:
                send_nid = queue.popleft()
                self._matched_sends.add(send_nid)
                self._add_dep(send_nid, nid, DATA, "match")

    def op_cancelled(self, req: Request) -> None:
        """A request was withdrawn (e.g. a recovery re-graft cancelling a
        recv from inside another request's completion callback).

        Resolution is by request identity: whatever schedule position the
        cancel happens at — including inside a callback registered after a
        wait already sampled its gates — the same node is marked resolved,
        so the linter never misreads the request as leaked.
        """
        nid = self._req_node.get(req)
        if nid is None:
            return
        node = self.nodes[nid]
        node.completed_at = self.world.engine.now
        node.cancelled = True
        if req.kind == "send":
            queue = self._send_queue.get((req.rank, req.peer, req.tag))
            if queue and nid in queue:
                queue.remove(nid)

    def run_callback(self, req: Request, fn: Callable[[Request], None]) -> None:
        """Execute a user completion callback inside a recorded context."""
        req_nid = self._req_node.get(req)
        cb = self._new_node("callback", req.rank)
        if req_nid is not None:
            self.order_edges.append(DepEdge(req_nid, cb.nid, ORDER, "callback"))
        gates = (req_nid,) if req_nid is not None else ()
        self._ctx.append((cb.nid, "callback", gates))
        try:
            fn(req)
        finally:
            self._ctx.pop()
            cb.completed_at = self.world.engine.now

    def wrap_reduce(
        self,
        rank: int,
        nbytes: int,
        tag: Optional[int],
        fn: Optional[Callable[..., Any]],
        args: tuple[Any, ...],
    ) -> Callable[[], None]:
        """Record a local reduction; returns the wrapped continuation."""
        node = self._new_node("reduce", rank, tag=tag, nbytes=nbytes)
        self._link_from_context(node)

        def _done() -> None:
            node.completed_at = self.world.engine.now
            self._ctx.append((node.nid, "callback", (node.nid,)))
            try:
                if fn is not None:
                    fn(*args)
            finally:
                self._ctx.pop()

        return _done

    # -- proclet-facing hooks ----------------------------------------------------

    def compute_posted(
        self, rank: int, gate: Optional[tuple[str, tuple[Any, ...]]]
    ) -> int:
        """A proclet yielded Compute; returns the compute node id."""
        node = self._new_node("compute", rank)
        if gate is not None:
            via, items = gate
            for g in self._gate_ids(items):
                gnode = self.nodes.get(g)
                if gnode is not None:
                    kind, subvia = self._classify(gnode, node, via)
                    self._add_dep(g, node.nid, kind, subvia)
        return node.nid

    def proclet_waiting(
        self, driver: Any, rank: int, via: str, requests: Sequence[Request]
    ) -> None:
        self._waiting[id(driver)] = (rank, via, tuple(requests))

    def proclet_not_waiting(self, driver: Any) -> None:
        self._waiting.pop(id(driver), None)

    def proclet_resume(self, rank: int, via: str, items: Sequence[Any]) -> bool:
        """Push the resumption context of a proclet wait. Returns a token
        (truthy) that must be passed to :meth:`proclet_pop`."""
        gates = self._gate_ids(items)
        if via in ("wait", "waitall", "waitany"):
            node = self._new_node(via, rank)
            node.completed_at = node.posted_at
            for g in gates:
                self.order_edges.append(DepEdge(g, node.nid, ORDER, via))
            self._ctx.append((node.nid, via, gates))
        elif via == "compute":
            for g in gates:
                gnode = self.nodes.get(g)
                if gnode is not None and gnode.completed_at is None:
                    gnode.completed_at = self.world.engine.now
            holder = gates[0] if gates else None
            self._ctx.append((holder, "compute", gates))
        else:  # sleep or unknown: no dependency carried across
            self._ctx.append((None, via, ()))
        return True

    def proclet_pop(self, token: bool) -> None:
        if token:
            self._ctx.pop()

    # -- finalization -------------------------------------------------------------

    def _augment_data_edges(self) -> None:
        """Recover provenance edges the posting context missed.

        A send (or reduction) of segment tag ``t`` on rank ``r`` consumes
        every recv/reduction of tag ``t`` on ``r`` that completed before it
        was posted — even when the *posting* was triggered by an unrelated
        window refill (ADAPT's send window is the common case).
        """
        producers: dict[tuple[int, int], list[OpNode]] = {}
        for n in self.nodes.values():
            if n.kind in ("recv", "reduce") and n.tag is not None and n.completed_at is not None:
                producers.setdefault((n.rank, n.tag), []).append(n)
        for b in self.nodes.values():
            if b.kind not in ("send", "reduce") or b.tag is None:
                continue
            for g in producers.get((b.rank, b.tag), ()):
                if g.nid != b.nid and g.completed_at <= b.posted_at:
                    self._add_dep(g.nid, b.nid, DATA, "provenance")

    def finalize(self, meta: Optional[dict[str, Any]] = None) -> DepGraph:
        """Freeze recording into a :class:`DepGraph` (world must be quiescent)."""
        self._augment_data_edges()
        blocked = []
        for rank, via, reqs in self._waiting.values():
            ids = self._gate_ids(reqs)
            pending = tuple(
                self._req_node[r] for r in reqs
                if not r.completed and r in self._req_node
            )
            blocked.append(BlockedWait(rank=rank, via=via, waited_on=ids, pending=pending))
        unmatched_sends = [
            nid for queue in self._send_queue.values() for nid in queue
        ]
        unmatched_recvs = [
            nid for n in self.nodes.values()
            if n.kind == "recv" and n.completed_at is None
            for nid in (n.nid,)
        ]
        stats = GraphStats(nranks=self.world.nranks)
        stats.unexpected_eager = sum(
            rt.matcher.unexpected_eager_count for rt in self.world.ranks
        )
        stats.leftover_posted_recvs = sum(
            rt.matcher.pending_posted() for rt in self.world.ranks
        )
        stats.leftover_inbound = sum(
            rt.matcher.pending_inbound() for rt in self.world.ranks
        )
        return DepGraph(
            nodes=self.nodes,
            dep_edges=self.dep_edges,
            order_edges=self.order_edges,
            blocked=sorted(blocked, key=lambda b: b.rank),
            unmatched_sends=sorted(unmatched_sends),
            unmatched_recvs=sorted(unmatched_recvs),
            stats=stats,
            meta=dict(meta or {}),
        )


def record(
    world: Any, launch: Callable[[], Any], meta: Optional[dict[str, Any]] = None
) -> DepGraph:
    """Attach a recorder to ``world``, run ``launch()``, drive to quiescence,
    and return the extracted graph. The world must not already have an
    observer; recording composes with (but does not require) the sanitizer."""
    if world.observer is not None:
        raise RuntimeError("world already has an observer attached")
    recorder = GraphRecorder(world)
    world.observer = recorder
    try:
        launch()
        world.run()
    finally:
        world.observer = None
    meta = dict(meta or {})
    # Fault runs: the linter excuses operations stranded by fail-stopped
    # ranks (and flags survivor-to-survivor strands as recovery bugs).
    failed = getattr(world, "failed_ranks", None)
    if failed:
        meta.setdefault("failed_ranks", sorted(failed))
    return recorder.finalize(meta)
