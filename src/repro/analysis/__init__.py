"""Static/semi-static analysis of simulated MPI communication schedules.

Three layers (see DESIGN.md S16):

* :mod:`repro.analysis.depgraph` — run a schedule on an instrumented
  recording world and extract its happens-before DAG, with every edge
  classified as a data dependency, a synchronization dependency (the ones
  ADAPT eliminates, Section 2), or window flow control.
* :mod:`repro.analysis.lint` — prove/lint properties of the extracted
  graph: deadlock cycles, unmatched or mismatched operations, leaked
  requests, the ``M > N`` unexpected-message rule, and the Figure 2
  certification (`python -m repro lint`).
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant assertions
  for real simulations (``MpiWorld(..., sanitize=True)``).
"""

from repro.analysis.depgraph import (
    DATA,
    FLOW,
    ORDER,
    SYNC,
    BlockedWait,
    DepEdge,
    DepGraph,
    GraphRecorder,
    OpNode,
    record,
)
from repro.analysis.lint import (
    Certification,
    Finding,
    LintReport,
    certify,
    lint,
    render_report,
)
from repro.analysis.sanitizer import Sanitizer, SanitizerError
from repro.analysis.schedules import (
    DEMO_SCHEDULES,
    SCHEDULES,
    TREES,
    analyze_schedule,
    deadlock_demo,
    tag_mismatch_demo,
)

__all__ = [
    "DATA",
    "FLOW",
    "ORDER",
    "SYNC",
    "BlockedWait",
    "Certification",
    "DepEdge",
    "DepGraph",
    "DEMO_SCHEDULES",
    "Finding",
    "GraphRecorder",
    "LintReport",
    "OpNode",
    "SCHEDULES",
    "Sanitizer",
    "SanitizerError",
    "TREES",
    "analyze_schedule",
    "certify",
    "deadlock_demo",
    "lint",
    "record",
    "render_report",
    "tag_mismatch_demo",
]
