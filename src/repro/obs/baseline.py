"""Metric snapshots and drift detection.

``repro metrics`` distills a small fixed-seed noise scenario into a nested
dict of rounded numbers (the *snapshot*).  A checked-in copy lives at
``src/repro/harness/metrics_baseline.json``; CI re-collects the snapshot
and diffs it against the baseline, so a change that silently shifts
sync-wait fractions, link utilization, or the critical path fails the
build instead of drifting unnoticed.

Comparison is tolerant (relative tolerance on numeric leaves) because the
snapshot, while deterministic on one platform, rounds floats whose last
digit may differ across libm builds.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Optional

#: Checked-in baseline consumed by ``repro metrics --check`` and CI.
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "harness",
    "metrics_baseline.json",
)


def load_baseline(path: Optional[str] = None) -> dict:
    with open(path or BASELINE_PATH, encoding="utf-8") as f:
        return json.load(f)


def save_baseline(snapshot: dict, path: Optional[str] = None) -> str:
    path = path or BASELINE_PATH
    with open(path, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def compare_snapshots(
    current: Any,
    baseline: Any,
    *,
    rel_tol: float = 0.05,
    abs_tol: float = 1e-6,
    _path: str = "",
) -> list[str]:
    """Structural diff of two snapshots; one line per drifted leaf.

    Numeric leaves compare with ``math.isclose``; everything else compares
    for equality.  Missing and unexpected keys are drift too — a metric
    disappearing is exactly the regression this guards against.
    """
    where = _path or "<root>"
    drift: list[str] = []
    if isinstance(current, dict) and isinstance(baseline, dict):
        for key in sorted(set(current) | set(baseline)):
            sub = f"{_path}.{key}" if _path else str(key)
            if key not in baseline:
                drift.append(f"{sub}: unexpected (not in baseline)")
            elif key not in current:
                drift.append(f"{sub}: missing (in baseline, not in current)")
            else:
                drift.extend(compare_snapshots(
                    current[key], baseline[key],
                    rel_tol=rel_tol, abs_tol=abs_tol, _path=sub,
                ))
        return drift
    if isinstance(current, (list, tuple)) and isinstance(baseline, (list, tuple)):
        if len(current) != len(baseline):
            return [f"{where}: length {len(current)} != {len(baseline)}"]
        for i, (c, b) in enumerate(zip(current, baseline)):
            drift.extend(compare_snapshots(
                c, b, rel_tol=rel_tol, abs_tol=abs_tol, _path=f"{where}[{i}]",
            ))
        return drift
    num = (int, float)
    if (isinstance(current, num) and isinstance(baseline, num)
            and not isinstance(current, bool) and not isinstance(baseline, bool)):
        if not math.isclose(current, baseline, rel_tol=rel_tol, abs_tol=abs_tol):
            return [f"{where}: {current} != {baseline} (rel_tol={rel_tol})"]
        return []
    if current != baseline:
        return [f"{where}: {current!r} != {baseline!r}"]
    return []
