"""Critical path through a recorded dependency graph.

Operates on the :class:`~repro.analysis.depgraph.DepGraph` the analyzer
extracts: the critical path is the heaviest chain of operations connected by
dependency edges, where each node weighs its own duration
(``completed_at - posted_at``). Over data edges alone this is the paper's
"longest data-dependency chain" — the lower bound no schedule of the same
tree can beat; sync edges added on top show how much of a blocking
schedule's makespan is self-inflicted ordering rather than data movement.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.depgraph import DepGraph


def _node_weight(graph: DepGraph, nid: int) -> float:
    node = graph.nodes[nid]
    if node.completed_at is None:
        return 0.0
    return max(0.0, node.completed_at - node.posted_at)


def critical_path(
    graph: DepGraph,
    kinds: tuple[str, ...] = ("data",),
) -> tuple[float, list[int]]:
    """Longest dependency chain, weighted by node durations.

    ``kinds`` selects which dependency-edge classes participate (any of
    ``data``/``sync``/``flow``). Returns ``(length_seconds, [nid, ...])``
    with the path in execution order. Raises :class:`ValueError` on a
    cyclic graph (a deadlocked schedule has no critical path).
    """
    wanted = set(kinds)
    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    indeg: dict[int, int] = {nid: 0 for nid in graph.nodes}
    for e in graph.dep_edges:
        if e.kind not in wanted:
            continue
        succs[e.src].append(e.dst)
        indeg[e.dst] += 1

    # Kahn topological order; deterministic via sorted node ids.
    ready = sorted(nid for nid, d in indeg.items() if d == 0)
    order: list[int] = []
    best: dict[int, float] = {}
    pred: dict[int, Optional[int]] = {}
    for nid in ready:
        best[nid] = _node_weight(graph, nid)
        pred[nid] = None
    i = 0
    while i < len(ready):
        nid = ready[i]
        i += 1
        order.append(nid)
        base = best[nid]
        for dst in succs[nid]:
            cand = base + _node_weight(graph, dst)
            if dst not in best or cand > best[dst] or (
                cand == best[dst] and pred[dst] is not None
                and nid < pred[dst]  # deterministic tie-break
            ):
                best[dst] = cand
                pred[dst] = nid
            indeg[dst] -= 1
            if indeg[dst] == 0:
                ready.append(dst)
    if len(order) != len(graph.nodes):
        raise ValueError(
            "dependency graph has a cycle; no critical path "
            f"({len(graph.nodes) - len(order)} nodes unreachable)"
        )
    if not best:
        return 0.0, []
    end = max(best, key=lambda nid: (best[nid], -nid))
    path: list[int] = []
    cur: Optional[int] = end
    while cur is not None:
        path.append(cur)
        cur = pred[cur]
    path.reverse()
    return best[end], path


def describe_path(graph: DepGraph, path: list[int]) -> list[str]:
    """Human-readable rendering of a critical path's nodes."""
    out = []
    for nid in path:
        node = graph.nodes[nid]
        out.append(f"#{nid} {node.describe()} [{_node_weight(graph, nid) * 1e6:.1f} us]")
    return out
