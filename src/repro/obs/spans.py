"""Structured spans and monotonic counters.

A :class:`Span` is one closed time interval attributed to a *track* — either
a rank (``("rank", 3)``) or a fabric link (``("link", "nic-out:n0")``) — with
a category, a human-readable name, and optional key/value arguments. Spans
are recorded retrospectively at the instant their end time is known (request
completion, flow drain, CPU work submission), so recording never perturbs
the event timeline: the simulation schedules exactly the same events with
and without a recorder attached.

Categories double as the metrics engine's grouping key: ``wait`` spans sum
into the sync-wait fraction, ``noise`` spans into the injected-noise total,
``flow`` spans into per-link busy intervals.
"""

from __future__ import annotations

from typing import Any, Optional

# Span categories. Kept as plain strings (they travel through JSON).
CAT_SEND = "send"            # request lifetime: isend post -> completion
CAT_RECV = "recv"            # request lifetime: irecv post -> completion
CAT_WAIT = "wait"            # proclet blocked in Wait/Waitall/Waitany
CAT_SLEEP = "sleep"          # proclet idle without occupying the CPU
CAT_CPU = "cpu"              # work occupying the rank's CPU
CAT_NOISE = "noise"          # injected noise occupying the rank's CPU
CAT_COLLECTIVE = "collective"  # one rank's participation in one collective
CAT_FLOW = "flow"            # one transfer occupying one link
CAT_RECOVERY = "recovery"    # one membership repair: first suspicion -> commit
CAT_STALENESS = "staleness"  # one quorum epoch: open -> seal (DESIGN.md S25)

#: Wait kinds that count as synchronization (MPI_Wait*) — a sleeping proclet
#: is idle by choice, not blocked on a peer.
SYNC_WAIT_NAMES = ("wait", "waitall", "waitany")


class Span:
    """One closed interval on one track."""

    __slots__ = ("cat", "name", "track", "begin", "end", "args")

    def __init__(
        self,
        cat: str,
        name: str,
        track: tuple[str, Any],
        begin: float,
        end: float,
        args: Optional[dict] = None,
    ):
        self.cat = cat
        self.name = name
        self.track = track      # ("rank", int) | ("link", str)
        self.begin = begin
        self.end = end
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.begin

    def to_list(self) -> list:
        """Compact JSON form: [cat, name, track_kind, track_id, begin, end, args]."""
        return [
            self.cat, self.name, self.track[0], self.track[1],
            self.begin, self.end, self.args,
        ]

    @classmethod
    def from_list(cls, row: list) -> "Span":
        cat, name, tkind, tid, begin, end, args = row
        return cls(cat, name, (tkind, tid), begin, end, args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tk, tid = self.track
        return (
            f"<Span {self.cat}:{self.name} {tk}={tid} "
            f"[{self.begin:.9f}, {self.end:.9f})>"
        )


class ObsRecorder:
    """Collects spans and monotonic counters for one world.

    Mirrors :class:`~repro.sim.trace.TraceRecorder`'s bounded-buffer
    contract: recording beyond ``max_spans`` drops the tail and sets
    :attr:`truncated`, so a runaway sweep degrades to partial observability
    instead of unbounded memory growth.
    """

    __slots__ = ("enabled", "max_spans", "spans", "dropped", "counters")

    def __init__(self, enabled: bool = True, max_spans: int = 2_000_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self.counters: dict[str, int] = {}

    def add(
        self,
        cat: str,
        name: str,
        track: tuple[str, Any],
        begin: float,
        end: float,
        args: Optional[dict] = None,
    ) -> None:
        """Record one completed span."""
        if not self.enabled:
            return
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(cat, name, track, begin, end, args))

    def count(self, name: str, n: int = 1) -> None:
        """Bump a monotonic counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    @property
    def truncated(self) -> bool:
        """True when the span cap was hit and tail spans were dropped."""
        return self.dropped > 0

    # -- views -----------------------------------------------------------------

    def by_category(self, cat: str) -> list[Span]:
        return [s for s in self.spans if s.cat == cat]

    def tracks(self) -> list[tuple[str, Any]]:
        """Distinct tracks: ranks, then links, then the singleton process
        tracks (recovery, staleness) — deterministic order."""
        ranks = sorted({s.track[1] for s in self.spans if s.track[0] == "rank"})
        links = sorted({s.track[1] for s in self.spans if s.track[0] == "link"})
        other = sorted(
            {s.track for s in self.spans if s.track[0] not in ("rank", "link")},
            key=lambda t: (t[0], str(t[1])),
        )
        return (
            [("rank", r) for r in ranks]
            + [("link", name) for name in links]
            + other
        )

    # -- wire format -----------------------------------------------------------
    #
    # The parallel executor serializes results as JSON between workers and
    # through the on-disk cache; spans ride along as compact lists so a
    # traced run is byte-identical at any --jobs count.

    def to_dict(self) -> dict:
        return {
            "spans": [s.to_list() for s in self.spans],
            "counters": dict(sorted(self.counters.items())),
            "dropped": self.dropped,
            "max_spans": self.max_spans,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ObsRecorder":
        rec = cls(enabled=True, max_spans=d.get("max_spans", 2_000_000))
        rec.spans = [Span.from_list(row) for row in d.get("spans", [])]
        rec.counters = dict(d.get("counters", {}))
        rec.dropped = int(d.get("dropped", 0))
        return rec
