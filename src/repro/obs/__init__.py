"""Observability: structured spans, per-collective metrics, trace export.

The recorder (:class:`~repro.obs.spans.ObsRecorder`) attaches to a world as
``world.obs`` the same way the dependency recorder attaches as
``world.observer``: the attribute defaults to ``None`` and every hot-path
hook guards with a single ``is not None`` test, so a world built without
observation pays one pointer comparison per hook site and allocates nothing.

On top of the recorder:

* :mod:`repro.obs.metrics` — per-run metrics: sync-wait fraction, per-link
  busy fraction and achieved bandwidth, noise-absorption ratio.
* :mod:`repro.obs.critical` — critical path through the dependency graph
  extracted by :mod:`repro.analysis.depgraph`.
* :mod:`repro.obs.chrome` — Chrome trace-event / Perfetto JSON export with
  one track per rank plus link tracks (``repro trace --chrome out.json``).
"""

from repro.obs.baseline import (
    BASELINE_PATH,
    compare_snapshots,
    load_baseline,
    save_baseline,
)
from repro.obs.chrome import (
    chrome_trace_events,
    export_chrome_trace,
    render_chrome_json,
    validate_chrome_trace,
)
from repro.obs.critical import critical_path
from repro.obs.metrics import MetricsReport, compute_metrics
from repro.obs.spans import (
    CAT_COLLECTIVE,
    CAT_CPU,
    CAT_FLOW,
    CAT_NOISE,
    CAT_RECV,
    CAT_SEND,
    CAT_SLEEP,
    CAT_WAIT,
    ObsRecorder,
    Span,
)

__all__ = [
    "BASELINE_PATH",
    "CAT_COLLECTIVE",
    "CAT_CPU",
    "CAT_FLOW",
    "CAT_NOISE",
    "CAT_RECV",
    "CAT_SEND",
    "CAT_SLEEP",
    "CAT_WAIT",
    "MetricsReport",
    "ObsRecorder",
    "Span",
    "chrome_trace_events",
    "compare_snapshots",
    "compute_metrics",
    "critical_path",
    "export_chrome_trace",
    "load_baseline",
    "render_chrome_json",
    "save_baseline",
    "validate_chrome_trace",
]
