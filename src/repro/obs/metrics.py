"""Per-run metrics computed from recorded spans.

Quantifies *why* a schedule performed the way it did:

* **sync-wait fraction** — seconds spent blocked in ``Wait``/``Waitall``/
  ``Waitany`` summed over all ranks, divided by total rank-time
  (``nranks * elapsed``). ADAPT schedules never wait (Algorithm 3 attaches
  callbacks), so their fraction is ~0; Algorithm 1/2 baselines spend a large
  share of their makespan here — the mechanism behind the paper's Figure 7.
* **per-link busy fraction** — the union of each link's flow intervals over
  the measurement window: the share of wall time the link was carrying at
  least one transfer. Contrast with *utilization* (bytes delivered over
  capacity x window): a link can be busy yet underutilized when fair-share
  contention caps its flows below capacity.
* **achieved bandwidth** — bytes the link carried over the window.
* **noise-absorption ratio** — of the noise seconds injected into rank CPUs,
  the share that did *not* translate into delayed work. Each CPU tracks a
  shadow clock advanced by work only; noise opens a lag between the real and
  shadow clocks, and the lag closes only when the CPU would have idled
  anyway — closed lag (plus lag left at quiescence) is absorbed noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.spans import CAT_FLOW, CAT_WAIT, ObsRecorder


def merged_busy_time(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (begin, end) intervals."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    cur_b, cur_e = intervals[0]
    for b, e in intervals[1:]:
        if b > cur_e:
            total += cur_e - cur_b
            cur_b, cur_e = b, e
        else:
            cur_e = max(cur_e, e)
    total += cur_e - cur_b
    return total


@dataclass
class LinkMetrics:
    """One link's share of the measurement window."""

    name: str
    nbytes: float            # bytes carried over the window
    busy_fraction: float     # union of flow intervals / elapsed
    achieved_gbps: float     # nbytes / elapsed, in Gbit/s
    utilization: float       # nbytes / (capacity * elapsed)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nbytes": self.nbytes,
            "busy_fraction": self.busy_fraction,
            "achieved_gbps": self.achieved_gbps,
            "utilization": self.utilization,
        }


@dataclass
class MetricsReport:
    """Metrics of one measurement (JSON-able; rides the result wire format)."""

    elapsed: float = 0.0
    nranks: int = 0
    sync_wait_seconds: float = 0.0
    sync_wait_fraction: float = 0.0
    noise_seconds: float = 0.0
    noise_absorbed_seconds: float = 0.0
    noise_absorption_ratio: Optional[float] = None  # None when no noise ran
    links: list[LinkMetrics] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    span_count: int = 0
    spans_dropped: int = 0
    # Live recovery (repro.recovery): ranks removed by the membership
    # protocol's agreed views, and the worst suspect-to-commit latency
    # (None when no repair ran).
    degraded_ranks: list = field(default_factory=list)
    time_to_repair: Optional[float] = None

    def link(self, name: str) -> LinkMetrics:
        for lm in self.links:
            if lm.name == name:
                return lm
        raise KeyError(name)

    def busiest_link(self) -> Optional[LinkMetrics]:
        if not self.links:
            return None
        return max(self.links, key=lambda lm: (lm.busy_fraction, lm.name))

    def to_dict(self) -> dict:
        return {
            "elapsed": self.elapsed,
            "nranks": self.nranks,
            "sync_wait_seconds": self.sync_wait_seconds,
            "sync_wait_fraction": self.sync_wait_fraction,
            "noise_seconds": self.noise_seconds,
            "noise_absorbed_seconds": self.noise_absorbed_seconds,
            "noise_absorption_ratio": self.noise_absorption_ratio,
            "links": [lm.to_dict() for lm in self.links],
            "counters": dict(sorted(self.counters.items())),
            "span_count": self.span_count,
            "spans_dropped": self.spans_dropped,
            "degraded_ranks": list(self.degraded_ranks),
            "time_to_repair": self.time_to_repair,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsReport":
        d = dict(d)
        d["links"] = [LinkMetrics(**lm) for lm in d.get("links", [])]
        return cls(**d)


def compute_metrics(world: Any, elapsed: Optional[float] = None) -> MetricsReport:
    """Distill a world's recorded spans into a :class:`MetricsReport`.

    ``elapsed`` is the measurement window (defaults to the engine clock —
    correct when the measurement started at t=0, which is how the harness
    runs). Requires the world to have been built with ``observe=True``.
    """
    obs: Optional[ObsRecorder] = world.obs
    if obs is None:
        raise ValueError("world has no ObsRecorder; build it with observe=True")
    if elapsed is None:
        elapsed = world.engine.now
    report = MetricsReport(
        elapsed=elapsed,
        nranks=world.nranks,
        counters=dict(obs.counters),
        span_count=len(obs.spans),
        spans_dropped=obs.dropped,
    )
    membership = getattr(world, "membership", None)
    if membership is not None:
        report.degraded_ranks = sorted(membership.view.failed)
        report.time_to_repair = membership.time_to_repair()
    if elapsed <= 0.0:
        return report

    # Sync-wait fraction over total rank-time.
    report.sync_wait_seconds = sum(
        s.duration for s in obs.spans if s.cat == CAT_WAIT
    )
    report.sync_wait_fraction = report.sync_wait_seconds / (world.nranks * elapsed)

    # Noise absorption from the per-CPU shadow clocks (see sim/cpu.py):
    # recovered lag is noise the schedule absorbed; lag still open at the
    # end delayed nothing that ran, so it is absorbed too.
    noise = absorbed = 0.0
    for rt in world.ranks:
        cpu = rt.cpu
        noise += cpu.noise_time
        absorbed += cpu.noise_absorbed_seconds
        absorbed += max(0.0, cpu.busy_until - cpu.shadow_busy_until)
    report.noise_seconds = noise
    if noise > 0.0:
        report.noise_absorbed_seconds = min(absorbed, noise)
        report.noise_absorption_ratio = report.noise_absorbed_seconds / noise

    # Per-link busy intervals from flow spans; bytes/capacity from the links
    # themselves (flow spans may be truncated, byte counters never are).
    by_link: dict[str, list[tuple[float, float]]] = {}
    for s in obs.spans:
        if s.cat == CAT_FLOW and s.track[0] == "link":
            by_link.setdefault(s.track[1], []).append((s.begin, s.end))
    for name, link in sorted(world.fabric.links().items()):
        if link.bytes_carried <= 0 and name not in by_link:
            continue
        busy = merged_busy_time(by_link.get(name, []))
        report.links.append(LinkMetrics(
            name=name,
            nbytes=link.bytes_carried,
            busy_fraction=min(1.0, busy / elapsed),
            achieved_gbps=link.bytes_carried * 8.0 / elapsed / 1e9,
            utilization=link.bytes_carried / (link.capacity * elapsed),
        ))
    return report
