"""Chrome trace-event / Perfetto JSON export.

Converts recorded spans into the Trace Event Format (the JSON flavor
``chrome://tracing`` and https://ui.perfetto.dev load directly): one thread
track per rank under the "ranks" process, one per fabric link under the
"links" process, complete ("X") events with microsecond timestamps, and
counter ("C") events carrying the monotonic counters at the trace end.

Serialization is deterministic — events are emitted in sorted order and
rendered with fixed separators — so a fixed-seed run exports byte-identical
files regardless of ``--jobs`` (asserted by the golden-file tests).
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.obs.spans import ObsRecorder

_PID_RANKS = 1
_PID_LINKS = 2
_PID_RECOVERY = 3
_PID_STALENESS = 4

#: Keys every complete event must carry (the validator's schema).
_X_REQUIRED = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def _tid(track: tuple[str, Any], link_ids: dict[str, int]) -> tuple[int, int]:
    kind, ident = track
    if kind == "rank":
        return _PID_RANKS, int(ident)
    if kind == "recovery":
        return _PID_RECOVERY, 0
    if kind == "staleness":
        return _PID_STALENESS, 0
    return _PID_LINKS, link_ids[ident]


def chrome_trace_events(obs: Union[ObsRecorder, dict]) -> list[dict]:
    """Spans + counters -> trace-event dicts, deterministically ordered."""
    if isinstance(obs, dict):
        obs = ObsRecorder.from_dict(obs)
    tracks = obs.tracks()
    link_ids = {
        ident: i for i, (kind, ident) in enumerate(tracks) if kind == "link"
    }
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID_RANKS, "tid": 0,
         "args": {"name": "ranks"}},
    ]
    if link_ids:
        events.append(
            {"name": "process_name", "ph": "M", "pid": _PID_LINKS, "tid": 0,
             "args": {"name": "links"}}
        )
    if any(kind == "recovery" for kind, _ in tracks):
        events.append(
            {"name": "process_name", "ph": "M", "pid": _PID_RECOVERY, "tid": 0,
             "args": {"name": "recovery"}}
        )
    if any(kind == "staleness" for kind, _ in tracks):
        events.append(
            {"name": "process_name", "ph": "M", "pid": _PID_STALENESS,
             "tid": 0, "args": {"name": "staleness"}}
        )
    for kind, ident in tracks:
        pid, tid = _tid((kind, ident), link_ids)
        label = f"rank {ident}" if kind == "rank" else str(ident)
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": label}}
        )

    spans = []
    for s in obs.spans:
        pid, tid = _tid(s.track, link_ids)
        ev = {
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": round(s.begin * 1e6, 3),   # microseconds
            "dur": round(s.duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if s.args:
            ev["args"] = s.args
        spans.append(ev)
    # Stable order: by track, then time, then name — monotone ts per track.
    spans.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["dur"], e["name"]))
    events.extend(spans)

    # Counters sit at the trace end; computed from the *rounded* span
    # events so rounding can never place a span past the counter line.
    end_ts = max((e["ts"] + e["dur"] for e in spans), default=0.0)
    for name in sorted(obs.counters):
        events.append({
            "name": name, "cat": "counter", "ph": "C", "ts": end_ts,
            "pid": _PID_RANKS, "tid": 0,
            "args": {"value": obs.counters[name]},
        })
    return events


def render_chrome_json(events: list[dict]) -> str:
    """Trace-event dicts -> the JSON object format, byte-deterministic."""
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def validate_chrome_trace(doc: Union[str, dict]) -> list[str]:
    """Check a trace document against the trace-event schema.

    Returns a list of problems (empty = valid): required keys on every "X"
    event, non-negative durations, and monotone non-decreasing ``ts`` within
    each (pid, tid) track.
    """
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    errors: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["missing top-level traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not an array"]
    last_ts: dict[tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            errors.append(f"event {i}: missing phase (ph)")
            continue
        ph = ev["ph"]
        if ph == "M":
            continue
        if ph == "C":
            if "ts" not in ev or "args" not in ev:
                errors.append(f"event {i}: counter missing ts/args")
            continue
        if ph != "X":
            errors.append(f"event {i}: unexpected phase {ph!r}")
            continue
        missing = [k for k in _X_REQUIRED if k not in ev]
        if missing:
            errors.append(f"event {i}: missing keys {missing}")
            continue
        if ev["dur"] < 0:
            errors.append(f"event {i}: negative duration {ev['dur']}")
        if ev["ts"] < 0:
            errors.append(f"event {i}: negative timestamp {ev['ts']}")
        key = (ev["pid"], ev["tid"])
        prev = last_ts.get(key)
        if prev is not None and ev["ts"] < prev:
            errors.append(
                f"event {i}: ts {ev['ts']} goes backwards on track {key} "
                f"(previous {prev})"
            )
        last_ts[key] = ev["ts"]
    return errors


def export_chrome_trace(obs: Union[ObsRecorder, dict], path: str) -> int:
    """Write a trace file; returns the number of events written."""
    events = chrome_trace_events(obs)
    text = render_chrome_json(events)
    problems = validate_chrome_trace(text)
    if problems:  # pragma: no cover - internal consistency guard
        raise RuntimeError(f"generated an invalid trace: {problems[:3]}")
    with open(path, "w") as fh:
        fh.write(text)
    return len(events)
