"""Hockney's cost model (paper Section 5.2.1).

The paper analyzes its pipelined collectives with Hockney's model [16]: a
message of ``m`` bytes between two processes costs ``T = alpha + beta*m``
(+ ``gamma*m`` of reduction arithmetic), and the pipelined chain over P
processes with ns segments costs

    T_chain = (P + ns - 2) * (alpha + beta*m_seg)        (Pjesivac-Grbovic [29])

which, for enough segments, is ~ ``ns * (alpha + beta*m_seg)`` — independent
of P, the paper's explanation for ADAPT's flat strong-scaling curves
(Figures 10/11b).

These functions give the analytic predictions; the tests drive the simulator
on the same configurations and check the two agree — the simulator is the
measurement, the model is the paper's theory, and their agreement is what
makes the strong-scaling claims interpretable rather than coincidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

from repro.config import CollectiveConfig
from repro.machine.spec import CommLevel, MachineSpec
from repro.trees.base import Tree


@dataclass(frozen=True)
class HockneyParams:
    """alpha/beta(/gamma) of one communication level."""

    alpha: float
    beta: float            # seconds per byte (1 / bandwidth)
    gamma: float = 0.0     # seconds per byte of reduction arithmetic

    @staticmethod
    def of(spec: MachineSpec, level: CommLevel, reduce_: bool = False) -> "HockneyParams":
        lp = spec.level_params(level)
        gamma = 1.0 / spec.cpu_reduce_bandwidth if reduce_ else 0.0
        return HockneyParams(lp.alpha, 1.0 / lp.bandwidth, gamma)


def point_to_point_time(p: HockneyParams, nbytes: int) -> float:
    """T = alpha + beta m (+ gamma m)."""
    return p.alpha + (p.beta + p.gamma) * nbytes


def chain_pipeline_time(p: HockneyParams, nbytes: int, nproc: int, nseg: int) -> float:
    """Pipelined chain: (P + ns - 2)(alpha + beta m_seg) (paper, after [29])."""
    if nproc < 1 or nseg < 1:
        raise ValueError("need at least one process and one segment")
    m_seg = ceil(nbytes / nseg)
    per_hop = point_to_point_time(p, m_seg)
    return (nproc + nseg - 2) * per_hop


def tree_pipeline_time(
    spec: MachineSpec,
    tree: Tree,
    level_of_edge,
    nbytes: int,
    config: CollectiveConfig,
    reduce_: bool = False,
) -> float:
    """Generalize the chain formula to any tree whose edges have levels.

    The pipelined completion time is governed by the deepest root-to-leaf
    path: fill time (sum of per-hop costs along the path, each hop also
    serializing over the fanout of its parent) plus (ns - 1) drains of the
    slowest hop on that path.
    """
    sizes = config.segments_for(nbytes)
    nseg = len(sizes)
    m_seg = sizes[0]

    def hop_cost(a: int, b: int) -> float:
        p = HockneyParams.of(spec, level_of_edge(a, b), reduce_)
        return point_to_point_time(p, m_seg)

    worst = 0.0
    for leaf in range(tree.size):
        if tree.children[leaf]:
            continue
        # Walk up to the root accumulating fill; track the slowest hop.
        fill = 0.0
        slowest = 0.0
        r = leaf
        while tree.parent[r] is not None:
            parent = tree.parent[r]
            cost = hop_cost(parent, r)
            fill += cost
            slowest = max(slowest, cost)
            r = parent
        total = fill + (nseg - 1) * slowest
        worst = max(worst, total)
    return worst


def predict_adapt_bcast(
    spec: MachineSpec,
    tree: Tree,
    level_of_edge,
    nbytes: int,
    config: Optional[CollectiveConfig] = None,
) -> float:
    """Analytic prediction of ADAPT's pipelined topology-aware broadcast."""
    return tree_pipeline_time(
        spec, tree, level_of_edge, nbytes, config or CollectiveConfig(), reduce_=False
    )


def predict_adapt_reduce(
    spec: MachineSpec,
    tree: Tree,
    level_of_edge,
    nbytes: int,
    config: Optional[CollectiveConfig] = None,
) -> float:
    """Analytic prediction of ADAPT's pipelined topology-aware reduce."""
    return tree_pipeline_time(
        spec, tree, level_of_edge, nbytes, config or CollectiveConfig(), reduce_=True
    )
