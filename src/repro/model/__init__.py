"""Analytic cost models (Hockney) used by the paper's Section 5.2.1 analysis."""

from repro.model.hockney import (
    HockneyParams,
    chain_pipeline_time,
    point_to_point_time,
    predict_adapt_bcast,
    predict_adapt_reduce,
    tree_pipeline_time,
)

__all__ = [
    "HockneyParams",
    "point_to_point_time",
    "chain_pipeline_time",
    "tree_pipeline_time",
    "predict_adapt_bcast",
    "predict_adapt_reduce",
]
