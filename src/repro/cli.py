"""Command-line interface: regenerate any experiment or run ad-hoc measurements.

Usage (after installation)::

    python -m repro fig9 --machine cori --operation bcast --jobs 4
    python -m repro fig7 --machine stampede2 --scale small --no-cache
    python -m repro table1
    python -m repro bench --json BENCH_core.json
    python -m repro profile --experiment fig9 --top 10
    python -m repro run --library OMPI-adapt --op reduce --nbytes 4194304 \
        --machine cori --nodes 4
    python -m repro tree --nodes 3 --sockets 2 --cores 4
    python -m repro machines
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.harness.experiments import (
    fig07_noise,
    fig08_topo,
    fig09_msgsize,
    fig10_scaling,
    fig11_gpu,
    figx_faults,
    table1_asp,
)
from repro.harness.runner import run_collective
from repro.machine import Topology, cori, psg_gpu, small_test_machine, stampede2

_MACHINES = {"cori": cori, "stampede2": stampede2, "psg": psg_gpu}

#: Compiled topology families (repro.topo) accepted wherever presets are.
_FAMILY_NAMES = ("fattree", "dragonfly", "railpod")

#: --machine choices for commands that accept either kind of model.
_MACHINE_CHOICES = sorted(_MACHINES) + sorted(_FAMILY_NAMES)


def _machine(name: str, nodes: Optional[int]):
    if name in _FAMILY_NAMES:
        from repro.topo import build_family

        return build_family(name, nodes=nodes)
    try:
        factory = _MACHINES[name]
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {_MACHINE_CHOICES}"
        )
    return factory(nodes) if nodes else factory()


def _add_scale(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="small", choices=["small", "medium", "paper"])


def _add_parallel(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for the sweep "
                   "(default: $REPRO_JOBS or 1; results are byte-identical "
                   "at any worker count)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache "
                   "($REPRO_CACHE_DIR or .repro-cache/)")


def _parallel_kwargs(args) -> dict:
    from repro.parallel import ResultCache

    no_cache = getattr(args, "no_cache", False) or (
        os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")
    )
    return {
        "n_jobs": getattr(args, "jobs", None),
        "cache": None if no_cache else ResultCache(),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADAPT (HPDC'18) reproduction: regenerate the paper's "
        "tables and figures on the simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p7 = sub.add_parser("fig7", help="Figure 7: noise impact")
    p7.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    _add_scale(p7)
    _add_parallel(p7)

    p8 = sub.add_parser("fig8", help="Figure 8: topology-aware algorithms")
    p8.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    p8.add_argument("--operation", default="bcast", choices=["bcast", "reduce"])
    _add_scale(p8)
    _add_parallel(p8)

    p9 = sub.add_parser("fig9", help="Figure 9: end-to-end vs message size")
    p9.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    p9.add_argument("--operation", default="bcast", choices=["bcast", "reduce"])
    p9.add_argument("--chart", action="store_true",
                    help="render an ASCII line chart under the table")
    _add_scale(p9)
    _add_parallel(p9)

    p10 = sub.add_parser("fig10", help="Figure 10: strong scaling")
    _add_scale(p10)
    _add_parallel(p10)

    p11a = sub.add_parser("fig11a", help="Figure 11a: GPU vs message size")
    _add_scale(p11a)
    _add_parallel(p11a)
    p11b = sub.add_parser("fig11b", help="Figure 11b: GPU strong scaling")
    _add_scale(p11b)
    _add_parallel(p11b)

    pt1 = sub.add_parser("table1", help="Table 1: ASP application")
    _add_scale(pt1)
    _add_parallel(pt1)

    pfx = sub.add_parser(
        "figx", help="Figure X (ours): collectives on a faulty fabric"
    )
    _add_scale(pfx)
    _add_parallel(pfx)

    pfxr = sub.add_parser(
        "figxr",
        help="Figure X-R (ours): live recovery across every ADAPT collective",
    )
    pfxr.add_argument("--json", default=None, metavar="PATH",
                      help="also write the rows as deterministic JSON "
                      "(byte-identical at any --jobs count)")
    _add_scale(pfxr)
    _add_parallel(pfxr)

    pfxp = sub.add_parser(
        "figxp",
        help="Figure X-P (ours): partition tolerance, heal time vs "
        "completion and false kills",
    )
    pfxp.add_argument("--json", default=None, metavar="PATH",
                      help="also write the rows as deterministic JSON "
                      "(byte-identical at any --jobs count)")
    _add_scale(pfxp)
    _add_parallel(pfxp)

    pfq = sub.add_parser(
        "figq",
        help="Figure Q (ours): SGD staleness frontier — accuracy vs "
        "latency for the relaxed quorum collectives",
    )
    pfq.add_argument("--json", default=None, metavar="PATH",
                     help="also write the rows as deterministic JSON "
                     "(byte-identical at any --jobs count)")
    _add_scale(pfq)
    _add_parallel(pfq)

    prun = sub.add_parser("run", help="one ad-hoc collective measurement")
    prun.add_argument("--library", default="OMPI-adapt")
    prun.add_argument("--op", dest="operation", default="bcast",
                      choices=["bcast", "reduce"])
    prun.add_argument("--nbytes", type=int, default=4 << 20)
    prun.add_argument("--machine", default="cori", choices=_MACHINE_CHOICES)
    prun.add_argument("--nodes", type=int, default=None)
    prun.add_argument("--nranks", type=int, default=None)
    prun.add_argument("--iterations", type=int, default=5)
    prun.add_argument("--noise", type=float, default=0.0,
                      help="noise duty-cycle percent on one mid-tree rank")
    prun.add_argument("--gpu", action="store_true")
    prun.add_argument("--seed", type=int, default=0)
    _add_parallel(prun)

    pbench = sub.add_parser(
        "bench",
        help="core performance benchmarks (engine, allocator, fig09 sweep)",
        description="Measure engine events/sec, allocator rounds/sec "
        "(optimized vs the pre-optimization reference), and fig09 "
        "cells/sec; --json writes the BENCH_core.json artifact. "
        "Benchmarks never use the result cache.",
    )
    pbench.add_argument("--scale", nargs="?", const="ranks", default=None,
                        metavar="SIZING|RANKS",
                        help="small/medium/paper: bench sizing (default: "
                        "$REPRO_BENCH_SCALE or small). Bare --scale adds "
                        "the rank-count scaling leg (ADAPT bcast/allreduce "
                        "at 1024/4096/16384 ranks); a comma-separated rank "
                        "list (e.g. 1024,4096) picks the world sizes")
    pbench.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="also time the fig09 sweep through N worker "
                        "processes and record the speedup")
    pbench.add_argument("--json", nargs="?", const="BENCH_core.json",
                        default=None, metavar="PATH",
                        help="write results as JSON (default PATH: "
                        "BENCH_core.json)")
    pbench.add_argument("--section", action="append", default=None,
                        choices=["engine", "allocator", "fig09", "scale"],
                        help="run only these sections (repeatable)")
    pbench.add_argument("--machine", default="cori",
                        choices=sorted(["cori", "stampede2", "psg"])
                        + sorted(_FAMILY_NAMES),
                        help="machine for the --scale leg: a flat preset or "
                        "a compiled topology family")

    pprof = sub.add_parser(
        "profile",
        help="per-subsystem time breakdown of one run (cProfile)",
        description="Profile one ad-hoc collective measurement — or a whole "
        "experiment driver with --experiment — and print exclusive time "
        "aggregated by repro subsystem (sim, network, collectives, ...).",
    )
    pprof.add_argument("--experiment", default=None,
                       choices=["fig7", "fig8", "fig9", "fig10", "fig11a",
                                "fig11b", "table1", "figx"],
                       help="profile a whole experiment driver instead of "
                       "one collective")
    _add_scale(pprof)
    pprof.add_argument("--library", default="OMPI-adapt")
    pprof.add_argument("--op", dest="operation", default="bcast",
                       choices=["bcast", "reduce"])
    pprof.add_argument("--nbytes", type=int, default=4 << 20)
    pprof.add_argument("--machine", default="cori", choices=_MACHINE_CHOICES)
    pprof.add_argument("--nodes", type=int, default=None)
    pprof.add_argument("--iterations", type=int, default=5)
    pprof.add_argument("--top", type=int, default=0, metavar="N",
                       help="also list the N hottest functions")

    pchaos = sub.add_parser(
        "chaos",
        help="fault-injection demo: lossy fabric, fail-stop, degraded mode",
        description="Run one collective over a faulty fabric (DESIGN.md "
        "S17): seeded per-link message drops/duplicates with the reliable "
        "ack/retransmit transport, and/or a mid-collective fail-stop of one "
        "rank. By default the same fault plan is also applied to the "
        "Waitall-style comparator, showing ADAPT completing (degraded) "
        "where the blocking schedule hangs. With --recover the live "
        "recovery stack (DESIGN.md S20) is armed instead: membership "
        "agreement plus tree re-grafting/epoch restart complete every "
        "ADAPT collective among the survivors, and --corrupt exercises "
        "the end-to-end checksum/NACK repair path.",
    )
    from repro.libraries.presets import ADAPT_OPERATIONS
    from repro.relaxed import RELAXED_OPERATIONS

    pchaos.add_argument(
        "operation",
        choices=list(ADAPT_OPERATIONS) + list(RELAXED_OPERATIONS),
    )
    pchaos.add_argument("--library", default="OMPI-adapt")
    pchaos.add_argument("--compare", default="OMPI-default-topo",
                        help="second library run under the same plan "
                        "(empty string to skip)")
    pchaos.add_argument("--machine", default="cori", choices=_MACHINE_CHOICES)
    pchaos.add_argument("--nodes", type=int, default=None)
    pchaos.add_argument("--nranks", type=int, default=None)
    pchaos.add_argument("--nbytes", type=int, default=512 << 10)
    pchaos.add_argument("--iterations", type=int, default=4)
    pchaos.add_argument("--drop", type=float, default=0.0,
                        help="per-message drop probability on every link")
    pchaos.add_argument("--duplicate", type=float, default=0.0,
                        help="per-message duplication probability")
    pchaos.add_argument("--corrupt", type=float, default=0.0,
                        help="per-message bit-corruption probability "
                        "(caught by checksums, repaired via NACK)")
    pchaos.add_argument("--recover", action="store_true",
                        help="arm live recovery: membership agreement + "
                        "tree re-graft/epoch restart (DESIGN.md S20)")
    pchaos.add_argument("--stall", action="append", default=[],
                        metavar="RANK:TIME:DURATION",
                        help="freeze RANK's CPU for DURATION seconds "
                        "starting at TIME (seconds; repeatable) — the "
                        "straggler injection the *_quorum operations "
                        "complete around")
    pchaos.add_argument("--quorum", type=float, default=None,
                        help="completion quorum for the *_quorum "
                        "operations: a fraction in (0,1] or a rank count")
    pchaos.add_argument("--min-quorum", type=int, default=1,
                        help="floor below which a shrinking quorum "
                        "degrades instead of completing")
    pchaos.add_argument("--staleness-window", type=int, default=1,
                        help="epochs a straggler contribution may merge "
                        "forward before being discarded")
    pchaos.add_argument("--kill-rank", type=int, default=None,
                        help="fail-stop this rank mid-collective")
    pchaos.add_argument("--kill-at", type=float, default=None,
                        help="kill time in seconds (default: 30%% of the "
                        "fault-free run)")
    pchaos.add_argument("--partition", default=None, metavar="A|B",
                        help="sever the fabric between rank groups, e.g. "
                        "'0-15|16-23' or '0,1|2-23' (groups must cover "
                        "every rank)")
    pchaos.add_argument("--partition-at", type=float, default=None,
                        help="cut time in seconds (default: 30%% of the "
                        "fault-free run)")
    pchaos.add_argument("--heal", type=float, default=None,
                        help="heal time in seconds (default: cut + 4x the "
                        "detection deadline — past the kill-path "
                        "fall-through)")
    pchaos.add_argument("--seed", type=int, default=0)

    plint = sub.add_parser(
        "lint",
        help="extract a schedule's dependency graph and lint/certify it",
        description="Record a collective schedule on an instrumented world, "
        "classify every happens-before edge as data / synchronization / "
        "flow-control (paper Section 2), and run the schedule linter. "
        "Exits non-zero when any error-severity finding fires "
        "(e.g. the deadlock-demo schedule).",
    )
    from repro.analysis.schedules import DEMO_SCHEDULES, SCHEDULES, TREES

    plint.add_argument("schedule",
                       choices=sorted(SCHEDULES) + list(DEMO_SCHEDULES))
    plint.add_argument("--tree", default="binary", choices=sorted(TREES))
    plint.add_argument("--ranks", type=int, default=8)
    plint.add_argument("--nbytes", type=int, default=512 * 1024)
    plint.add_argument("--root", type=int, default=0)
    plint.add_argument("--segment-size", type=int, default=64 * 1024)
    plint.add_argument("--posted-recvs", type=int, default=None,
                       help="recv window M (default: collective config)")
    plint.add_argument("--inflight-sends", type=int, default=None,
                       help="send window N (default: collective config)")

    pverify = sub.add_parser(
        "verify",
        help="model-check a schedule: explore every interleaving (DPOR)",
        description="Extract a recorded schedule as a transition system and "
        "exhaustively explore every inequivalent message-match ordering "
        "(dynamic partial-order reduction; key-unique models collapse to "
        "one representative interleaving, ambiguous ones fall back to full "
        "enumeration). Checks deadlock-freedom, schedule determinism "
        "(wildcard/tag races), and stranded eager sends; --kill-sweep "
        "additionally certifies the recovery path by symbolically killing "
        "each non-root rank at every explored state. Violations print a "
        "step-by-step counterexample and can be saved (--counterexample) "
        "as replayable JSON traces; --replay re-executes a saved trace and "
        "--chrome renders it for chrome://tracing. Exit status: 0 verified "
        "(or a demo produced its expected violation), 1 violations, "
        "2 budget exhausted.",
    )
    from repro.collectives.models import VERIFY_MODELS

    pverify.add_argument("--collective", action="append", default=None,
                         dest="collectives", metavar="NAME",
                         choices=sorted(VERIFY_MODELS),
                         help="schedule to verify (repeatable; default: the "
                         "nine ADAPT collectives)")
    pverify.add_argument("--all", action="store_true",
                         help="verify every registered model, demos included")
    pverify.add_argument("--ranks", type=int, default=6)
    pverify.add_argument("--tree", default="binary", choices=sorted(TREES))
    pverify.add_argument("--nbytes", type=int, default=64 * 1024)
    pverify.add_argument("--segment-size", type=int, default=16 * 1024)
    pverify.add_argument("--root", type=int, default=0)
    pverify.add_argument("--kill-sweep", action="store_true",
                         help="also certify recovery: symbolically kill each "
                         "non-root rank at every explored state")
    pverify.add_argument("--partition-sweep", action="store_true",
                         help="also certify split-brain safety: step the "
                         "quorum/heal state machine over every bipartition "
                         "of the ranks (at most one committed view per "
                         "epoch, heal converges by epoch precedence)")
    pverify.add_argument("--naive", action="store_true",
                         help="force full enumeration (no DPOR) — the "
                         "comparison baseline, capped by --naive-cap")
    pverify.add_argument("--naive-cap", type=int, default=2000,
                         metavar="N",
                         help="state cap for naive-enumeration runs "
                         "(default: 2000)")
    pverify.add_argument("--max-states", type=int, default=200_000,
                         help="explored-state budget per schedule")
    pverify.add_argument("--budget-seconds", type=float, default=60.0,
                         help="wall-clock budget per schedule")
    pverify.add_argument("--counterexample", default=None, metavar="PATH",
                         help="write the first violation as a replayable "
                         "JSON trace")
    pverify.add_argument("--json", default=None, metavar="PATH",
                         help="write the machine-readable verification "
                         "report")
    pverify.add_argument("--replay", default=None, metavar="PATH",
                         help="replay a saved counterexample trace instead "
                         "of verifying")
    pverify.add_argument("--chrome", default=None, metavar="PATH",
                         help="render the (first or replayed) violation as "
                         "a Chrome trace-event file")
    pverify.add_argument("--no-cache", action="store_true",
                         help="bypass the explored-state fingerprint cache "
                         "($REPRO_CACHE_DIR or .repro-cache/)")

    ptrace = sub.add_parser(
        "trace",
        help="record one measurement and export a Chrome/Perfetto trace",
        description="Run one collective with the span recorder attached "
        "(repro.obs) and write a Chrome trace-event JSON file — load it in "
        "chrome://tracing or https://ui.perfetto.dev. One timeline track "
        "per rank (sends, recvs, waits, CPU work, noise, collective spans) "
        "plus one per network link (flow occupancy). Recording is "
        "retrospective: the traced run reports the exact times an untraced "
        "one does.",
    )
    ptrace.add_argument("--chrome", default="trace.json", metavar="PATH",
                        help="output path for the trace JSON "
                        "(default: trace.json)")
    ptrace.add_argument("--library", default="OMPI-adapt")
    ptrace.add_argument("--op", dest="operation", default="bcast",
                        choices=["bcast", "reduce"])
    ptrace.add_argument("--nbytes", type=int, default=1 << 20)
    ptrace.add_argument("--machine", default="testbox",
                        choices=sorted(_MACHINES) + ["testbox"])
    ptrace.add_argument("--nodes", type=int, default=None)
    ptrace.add_argument("--nranks", type=int, default=None)
    ptrace.add_argument("--iterations", type=int, default=3)
    ptrace.add_argument("--noise", type=float, default=0.0,
                        help="noise duty-cycle percent on one mid-tree rank")
    ptrace.add_argument("--seed", type=int, default=0)
    _add_parallel(ptrace)

    pmet = sub.add_parser(
        "metrics",
        help="sync-wait/link/noise metrics + critical path, with baseline check",
        description="Distill a small fixed-seed fig7-style noise scenario "
        "into per-library metrics (sync-wait fraction, noise absorption, "
        "peak link utilization) and the critical path through each "
        "schedule's dependency graph. --check diffs the snapshot against "
        "the checked-in baseline (src/repro/harness/metrics_baseline.json) "
        "and exits non-zero on drift; --update rewrites the baseline.",
    )
    pmet.add_argument("--check", action="store_true",
                      help="compare against the checked-in baseline; exit 1 "
                      "on drift")
    pmet.add_argument("--update", action="store_true",
                      help="rewrite the checked-in baseline with this "
                      "snapshot")
    pmet.add_argument("--baseline", default=None, metavar="PATH",
                      help="alternate baseline file (default: the "
                      "checked-in one)")
    pmet.add_argument("--json", default=None, metavar="PATH",
                      help="also write the snapshot as JSON")
    _add_parallel(pmet)

    ptree = sub.add_parser("tree", help="print a topology-aware tree")
    ptree.add_argument("--nodes", type=int, default=3)
    ptree.add_argument("--sockets", type=int, default=2)
    ptree.add_argument("--cores", type=int, default=4)
    ptree.add_argument("--root", type=int, default=0)

    ptopo = sub.add_parser(
        "topo",
        help="compile a datacenter topology family to its link list",
        description="Compile a high-level topology spec (fat-tree, "
        "dragonfly, rail-optimized GPU pod) into the link list and "
        "placement tables the simulator consumes. Compilation is "
        "deterministic: identical specs produce byte-identical JSON "
        "(the digest printed per family is the receipt).",
    )
    ptopo.add_argument("--build", default="all", metavar="FAMILY",
                       choices=sorted(_FAMILY_NAMES) + ["all"],
                       help="family to compile (default: all three)")
    ptopo.add_argument("--ranks", type=int, default=None,
                       help="resize the family to the smallest shape "
                       "fitting this many ranks")
    ptopo.add_argument("--nodes", type=int, default=None,
                       help="resize the family to this node count")
    ptopo.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="write the compiled topology as canonical JSON "
                       "(single family only; '-' or no value = stdout)")

    sub.add_parser("machines", help="list machine presets")
    return parser


def _cmd_experiment(args) -> str:
    kw = _parallel_kwargs(args)
    if args.command == "fig7":
        return fig07_noise.run(args.machine, args.scale, **kw).table()
    if args.command == "fig8":
        return fig08_topo.run(
            args.machine, args.scale, args.operation, **kw
        ).table()
    if args.command == "fig9":
        res = fig09_msgsize.run(args.machine, args.scale, args.operation, **kw)
        out = res.table()
        if getattr(args, "chart", False):
            from repro.harness.charts import experiment_line_chart

            out += "\n\n" + experiment_line_chart(res)
        return out
    if args.command == "fig10":
        return fig10_scaling.run(args.scale, **kw).table()
    if args.command == "fig11a":
        return fig11_gpu.run_msgsize(args.scale, **kw).table()
    if args.command == "fig11b":
        return fig11_gpu.run_scaling(args.scale, **kw).table()
    if args.command == "table1":
        return table1_asp.run(args.scale, **kw).table()
    if args.command == "figx":
        return figx_faults.run(args.scale, **kw).table()
    if args.command in ("figxr", "figxp", "figq"):
        if args.command == "figxr":
            from repro.harness.experiments import figx_recovery as driver
        elif args.command == "figxp":
            from repro.harness.experiments import figxp_partition as driver
        else:
            from repro.harness.experiments import figq_staleness as driver

        res = driver.run(args.scale, **kw)
        out = res.table()
        if args.json:
            import json
            import math

            payload = {
                "experiment": res.experiment,
                "title": res.title,
                "headers": res.headers,
                "rows": [
                    [None if isinstance(c, float) and not math.isfinite(c)
                     else c for c in row]
                    for row in res.rows
                ],
                "notes": res.notes,
            }
            with open(args.json, "w") as fh:
                fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            out += f"\nwrote {args.json}"
        return out
    raise AssertionError  # pragma: no cover


def _cmd_run(args) -> str:
    from repro.parallel import SimJob, run_jobs

    spec = _machine(args.machine, args.nodes)
    compiled = getattr(spec, "compiled", None)
    gpu = args.gpu or (compiled is not None and compiled.gpu_bound)
    if compiled is not None:
        nranks = args.nranks or compiled.ranks
    else:
        nranks = args.nranks or (spec.total_gpus if gpu else spec.total_cores)
    noisy = (nranks // 3,) if args.noise > 0 else "per-node"
    job = SimJob(
        machine=args.machine, nodes=args.nodes, nranks=nranks,
        library=args.library, operation=args.operation, nbytes=args.nbytes,
        iterations=args.iterations, noise_percent=args.noise,
        noise_ranks=noisy, gpu=gpu, seed=args.seed,
    )
    kw = _parallel_kwargs(args)
    result = run_jobs([job], **kw)[0]
    return str(result)


def _cmd_bench(args) -> str:
    from repro.harness import bench

    # --scale is overloaded: sizing names keep their original meaning, a
    # bare --scale (or a comma-separated rank list) opts into the rank-count
    # scaling leg on top of whatever sections run.
    sizing = None
    scale_ranks = bench.SCALE_RANKS
    want_scale = False
    if args.scale is not None:
        if args.scale in ("small", "medium", "paper"):
            sizing = args.scale
        elif args.scale == "ranks":
            want_scale = True
        else:
            try:
                scale_ranks = tuple(int(tok) for tok in args.scale.split(","))
            except ValueError:
                raise SystemExit(
                    "--scale expects small/medium/paper, a comma-separated "
                    f"rank list, or no value; got {args.scale!r}"
                )
            want_scale = True
    sections = tuple(args.section) if args.section else ("engine", "allocator", "fig09")
    if want_scale and "scale" not in sections:
        sections = sections + ("scale",)
    result = bench.run_core_bench(
        sizing, args.jobs, sections=sections, scale_ranks=scale_ranks,
        scale_preset=args.machine,
    )
    out = bench.render(result)
    if args.json:
        bench.write_json(result, args.json)
        out += f"\nwrote {args.json}"
    return out


def _cmd_profile(args) -> str:
    from repro.harness import profiling

    if args.experiment:
        # Profile the whole driver in-process (sequential, uncached — a
        # process pool would hide the work from the profiler).
        def target():
            exp_args = argparse.Namespace(
                command=args.experiment, machine=args.machine,
                operation=args.operation, scale=args.scale, chart=False,
                jobs=1, no_cache=True,
            )
            return _cmd_experiment(exp_args)

        title = f"profile: {args.experiment} --scale {args.scale}"
    else:
        spec = _machine(args.machine, args.nodes)
        compiled = getattr(spec, "compiled", None)
        nranks = compiled.ranks if compiled is not None else spec.total_cores

        def target():
            return run_collective(
                spec, nranks, args.library, args.operation, args.nbytes,
                iterations=args.iterations,
            )

        title = (
            f"profile: {args.operation} {args.library} {args.nbytes} B, "
            f"{args.machine}, {nranks} ranks, {args.iterations} iterations"
        )
    _, stats = profiling.profile_call(target)
    return profiling.render(stats, top=args.top, title=title)


def _parse_partition(text: str, nranks: int) -> tuple[tuple[int, ...], ...]:
    """Parse ``'0-15|16-23'`` into disjoint rank groups covering the world.

    Each side is a comma-separated list of single ranks or ``a-b`` ranges
    (inclusive). Validation of disjointness/coverage is delegated to
    :class:`PartitionSpec`; here we only reject malformed tokens early with
    a CLI-flavoured error.
    """
    def side(tokens: str) -> tuple[int, ...]:
        ranks: list[int] = []
        for tok in tokens.split(","):
            tok = tok.strip()
            if not tok:
                continue
            try:
                if "-" in tok:
                    lo, hi = tok.split("-", 1)
                    ranks.extend(range(int(lo), int(hi) + 1))
                else:
                    ranks.append(int(tok))
            except ValueError:
                raise SystemExit(
                    f"chaos: bad --partition token {tok!r}; expected a rank "
                    f"or an inclusive range like '16-23'"
                ) from None
        return tuple(ranks)

    sides = [side(s) for s in text.split("|")]
    if len(sides) < 2 or any(not s for s in sides):
        raise SystemExit(
            "chaos: --partition needs at least two non-empty '|'-separated "
            "rank groups, e.g. '0-15|16-23'"
        )
    missing = set(range(nranks)) - {r for s in sides for r in s}
    if missing:
        raise SystemExit(
            f"chaos: --partition groups must cover every rank; "
            f"missing {sorted(missing)} of {nranks}"
        )
    return tuple(sides)


def _cmd_chaos(args) -> str:
    from repro.faults import FaultPlan, KillSpec, LossSpec, PartitionSpec
    from repro.faults.plan import CorruptSpec, StallSpec
    from repro.relaxed import RELAXED_OPERATIONS

    spec = _machine(args.machine, args.nodes)
    compiled = getattr(spec, "compiled", None)
    native = compiled.ranks if compiled is not None else spec.total_cores
    nranks = args.nranks or native
    relaxed = args.operation in RELAXED_OPERATIONS
    if args.quorum is not None and not relaxed:
        raise SystemExit("chaos: --quorum needs a *_quorum operation")
    if relaxed and args.recover:
        raise SystemExit("chaos: --recover and *_quorum operations are "
                         "mutually exclusive (quorum completion already "
                         "is a degraded-completion strategy)")
    stalls = []
    for spec_str in args.stall:
        try:
            rank_s, time_s, dur_s = spec_str.split(":")
            stalls.append(StallSpec(rank=int(rank_s), time=float(time_s),
                                    duration=float(dur_s)))
        except ValueError:
            raise SystemExit(
                f"chaos: bad --stall {spec_str!r}; expected RANK:TIME:DURATION"
            ) from None
    quorum_kw = {}
    if relaxed:
        q = args.quorum if args.quorum is not None else 1.0
        # A count if it is an integral value above 1, else a fraction.
        q = int(q) if q > 1 and float(q).is_integer() else q
        quorum_kw = {"quorum": q, "min_quorum": args.min_quorum,
                     "staleness_window": args.staleness_window}
    lossy = args.drop > 0 or args.duplicate > 0
    if (not lossy and args.corrupt <= 0 and args.kill_rank is None
            and args.partition is None and not stalls):
        raise SystemExit("chaos: nothing to inject; pass --drop, --duplicate, "
                         "--corrupt, --kill-rank, --stall and/or --partition")
    if args.partition is None and (args.partition_at is not None
                                   or args.heal is not None):
        raise SystemExit("chaos: --partition-at/--heal need --partition")
    lines = []

    def fault_free(lib: str):
        return run_collective(
            spec, nranks, lib, args.operation, args.nbytes,
            iterations=args.iterations, seed=args.seed, **quorum_kw,
        )

    base = fault_free(args.library)
    lines.append(f"fault-free  {base}")
    kill_at = None
    if args.kill_rank is not None:
        kill_at = args.kill_at if args.kill_at is not None else (
            0.3 * base.mean_time * args.iterations
        )
    losses = [LossSpec(drop=args.drop, duplicate=args.duplicate)] if lossy else []
    corrupts = [CorruptSpec(rate=args.corrupt)] if args.corrupt > 0 else []
    kills = (
        [KillSpec(rank=args.kill_rank, time=kill_at)]
        if args.kill_rank is not None else []
    )
    partitions = []
    if args.partition is not None:
        from repro.harness.experiments.figxp_partition import detection_deadline

        groups = _parse_partition(args.partition, nranks)
        cut_at = args.partition_at if args.partition_at is not None else (
            0.3 * base.mean_time * args.iterations
        )
        deadline = detection_deadline()
        heal_at = args.heal if args.heal is not None else (
            cut_at + 4.0 * deadline
        )
        try:
            partitions = [PartitionSpec(groups=groups, start=cut_at,
                                        heal=heal_at)]
        except ValueError as exc:
            raise SystemExit(f"chaos: {exc}") from None
    plan = FaultPlan(losses=losses, kills=kills, corrupts=corrupts,
                     partitions=partitions, stalls=stalls, seed=args.seed)
    desc = []
    if stalls:
        desc.append("; ".join(
            f"stall rank {s.rank} at t={s.time * 1e3:.3f} ms for "
            f"{s.duration * 1e3:.3f} ms" for s in stalls
        ))
    if quorum_kw:
        desc.append(
            f"quorum={quorum_kw['quorum']:g} "
            f"min={quorum_kw['min_quorum']} "
            f"window={quorum_kw['staleness_window']}"
        )
    if lossy:
        desc.append(f"drop={args.drop:g} duplicate={args.duplicate:g} per message")
    if corrupts:
        desc.append(f"corrupt={args.corrupt:g} per message")
    if kills:
        desc.append(f"kill rank {args.kill_rank} at t={kill_at * 1e3:.3f} ms")
    if partitions:
        sides = " | ".join(
            f"{len(g)} rank(s)" for g in partitions[0].groups
        )
        rel = "before" if heal_at - cut_at < deadline else "after"
        desc.append(
            f"partition [{sides}] at t={cut_at * 1e3:.3f} ms, heal at "
            f"t={heal_at * 1e3:.3f} ms ({rel} the "
            f"{deadline * 1e3:.1f} ms detection deadline)"
        )
    if args.recover:
        desc.append("recovery armed")
    lines.append(f"fault plan: {'; '.join(desc)} (seed={args.seed})")

    libraries = [args.library]
    if args.compare and args.compare != args.library:
        libraries.append(args.compare)
    for lib in libraries:
        # The comparator shows what the same plan does *without* recovery
        # (and, for the relaxed family, without the quorum: the exact op).
        recover = args.recover and lib == args.library
        primary = lib == args.library
        op = args.operation
        kw = dict(quorum_kw)
        if relaxed and not primary:
            op = args.operation.replace("_quorum", "")
            kw = {}
        r = run_collective(
            spec, nranks, lib, op, args.nbytes,
            iterations=args.iterations, seed=args.seed, fault_plan=plan,
            recover=recover,
            # A hung schedule legitimately leaves wreckage.
            sanitize=not kills and not partitions,
            **kw,
        )
        lines.append(f"faulty      {r}")
        if relaxed and primary and r.staleness_epoch:
            excluded = sorted(set(range(nranks)) - set(r.contributed_ranks))
            merged = sum(1 for m in r.late_merges if m[2] >= 0)
            discarded = sum(1 for m in r.late_merges if m[2] < 0)
            lines.append(
                f"            -> quorum: contributed "
                f"{len(r.contributed_ranks)}/{nranks} rank(s) across "
                f"{r.staleness_epoch} epoch(s); excluded="
                f"{','.join(map(str, excluded)) or '-'}"
            )
            lines.append(
                f"            -> staleness: {merged} late contribution(s) "
                f"merged forward, {discarded} discarded with accounting "
                f"(conservation-checked: none lost silently)"
            )
        if not r.completed:
            lines.append(
                "            -> HUNG: the schedule cannot recover from the "
                "failure (reported inf)"
            )
        elif recover and r.failed_ranks:
            ttr = r.time_to_repair
            ttr_txt = f"{ttr * 1e3:.3f} ms" if ttr is not None else "n/a"
            lines.append(
                "            -> RECOVERED: survivors completed; agreed "
                f"failed={r.failed_ranks}, time-to-repair={ttr_txt}"
            )
        elif r.degraded:
            lines.append(
                "            -> completed DEGRADED: survivors re-routed "
                "around the dead rank"
            )
        nacks = r.transport.get("nacks_sent", 0)
        if nacks:
            lines.append(
                f"            -> integrity: {r.transport.get('checksum_rejects', 0)} "
                f"checksum rejections repaired via {nacks} NACK retransmits"
            )
        if partitions:
            severed = r.transport.get("severed", 0)
            severed_ctl = r.transport.get("severed_control", 0)
            parked = r.transport.get("sends_parked", 0)
            lines.append(
                f"            -> partition: {severed} data / {severed_ctl} "
                f"control launches severed, {parked} send(s) parked, "
                f"false_kills={r.false_kills}, quorum_parks={r.quorum_parks}"
            )
    return "\n".join(lines)


def _cmd_trace(args) -> str:
    from repro.obs import export_chrome_trace
    from repro.parallel import SimJob, run_jobs
    from repro.parallel.worker import _machine_spec

    spec = _machine_spec(SimJob(machine=args.machine, nodes=args.nodes))
    nranks = args.nranks or spec.total_cores
    noisy = (nranks // 3,) if args.noise > 0 else "per-node"
    job = SimJob(
        machine=args.machine, nodes=args.nodes, nranks=nranks,
        library=args.library, operation=args.operation, nbytes=args.nbytes,
        iterations=args.iterations, noise_percent=args.noise,
        noise_ranks=noisy, seed=args.seed, observe="trace",
    )
    result = run_jobs([job], **_parallel_kwargs(args))[0]
    n_events = export_chrome_trace(result.obs, args.chrome)
    spans = len((result.obs or {}).get("spans", []))
    lines = [str(result)]
    if result.trace_truncated:
        lines.append("warning: span buffer cap hit; the trace tail was dropped")
    lines.append(
        f"wrote {args.chrome}: {n_events} trace events from {spans} spans; "
        "open in chrome://tracing or https://ui.perfetto.dev"
    )
    return "\n".join(lines)


#: The fixed ``repro metrics`` scenario: the fig7 noise cell, shrunk.
_METRICS_LIBS = ("OMPI-adapt", "OMPI-default-topo", "Cray MPI")
_METRICS_SCHEDULES = ("bcast-adapt", "bcast-nonblocking")


def _cmd_metrics(args) -> int:
    from repro.analysis.schedules import analyze_schedule
    from repro.harness.experiments.fig07_noise import (
        DURATION_FACTOR,
        _steady_mean,
    )
    from repro.harness.report import format_table
    from repro.obs import baseline as bl
    from repro.obs.critical import critical_path
    from repro.parallel import SimJob, run_jobs

    machine, nodes = "cori", 2
    msg, iters, probe_iters, noise = 1 << 20, 24, 6, 5.0
    nranks = _machine(machine, nodes).total_cores
    noisy_rank = nranks // 3
    kw = _parallel_kwargs(args)

    # Stage 1: noise-free probes size the noise events (fig7 methodology).
    probes = run_jobs(
        [SimJob(machine=machine, nodes=nodes, library=lib, operation="bcast",
                nbytes=msg, iterations=probe_iters, seed=1)
         for lib in _METRICS_LIBS],
        **kw,
    )
    # Stage 2: the observed noisy measurements.
    noisy_jobs = []
    for lib, probe in zip(_METRICS_LIBS, probes):
        max_duration = DURATION_FACTOR * _steady_mean(probe)
        freq = (noise / 100.0) / (max_duration / 2.0)
        noisy_jobs.append(SimJob(
            machine=machine, nodes=nodes, library=lib, operation="bcast",
            nbytes=msg, iterations=iters, noise_percent=noise,
            noise_ranks=(noisy_rank,), noise_frequency=freq, seed=6,
            observe="metrics",
        ))
    runs = run_jobs(noisy_jobs, **kw)

    libs_snap: dict = {}
    rows = []
    for lib, r in zip(_METRICS_LIBS, runs):
        m = r.metrics or {}
        absorb = m.get("noise_absorption_ratio")
        entry = {
            "mean_ms": round(r.mean_time * 1e3, 3),
            "sync_wait_pct": round(100.0 * m.get("sync_wait_fraction", 0.0), 3),
            "noise_absorption": None if absorb is None else round(absorb, 3),
            "peak_link_util_pct": round(100.0 * max(
                (link["busy_fraction"] for link in m.get("links", [])),
                default=0.0,
            ), 1),
        }
        libs_snap[lib] = entry
        rows.append([lib, entry["mean_ms"], entry["sync_wait_pct"],
                     entry["noise_absorption"], entry["peak_link_util_pct"]])

    # Critical path through the dependency graph: the longest chain of
    # data-dependent operations (sync/flow edges excluded), i.e. the time
    # the schedule cannot beat on infinitely fast independent resources.
    crit: dict = {}
    for sched in _METRICS_SCHEDULES:
        graph = analyze_schedule(sched, nranks=8, tree="binary",
                                 nbytes=512 * 1024)
        length, path = critical_path(graph)
        crit[sched] = {"length_ms": round(length * 1e3, 4), "hops": len(path)}

    snapshot = {
        "scenario": {
            "machine": machine, "nodes": nodes, "nranks": nranks,
            "operation": "bcast", "nbytes": msg, "iterations": iters,
            "noise_percent": noise, "noisy_rank": noisy_rank, "seed": 6,
        },
        "libraries": libs_snap,
        "critical_path": crit,
    }

    print(format_table(
        f"repro metrics: bcast {msg >> 20} MB, {machine} x{nodes} nodes "
        f"({nranks} ranks), {noise:g}% noise on rank {noisy_rank}",
        ["library", "mean_ms", "sync_wait%", "noise_absorb", "peak_link_util%"],
        rows,
    ))
    for sched in _METRICS_SCHEDULES:
        c = crit[sched]
        print(f"critical path ({sched}): {c['length_ms']} ms over "
              f"{c['hops']} data-dependent ops (8 ranks, binary tree, 512 KB)")
    adapt = libs_snap["OMPI-adapt"]["sync_wait_pct"]
    waitall = libs_snap["OMPI-default-topo"]["sync_wait_pct"]
    rel = "<" if adapt < waitall else ">="
    print(f"sync-wait: OMPI-adapt {adapt}% {rel} OMPI-default-topo "
          f"{waitall}% (the Waitall schedule on the same tree)")

    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(snapshot, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}")
    if args.update:
        path = bl.save_baseline(snapshot, args.baseline)
        print(f"wrote baseline {path}")
        return 0
    if args.check:
        try:
            base = bl.load_baseline(args.baseline)
        except FileNotFoundError:
            print("metrics baseline not found; run `repro metrics --update`")
            return 1
        drift = bl.compare_snapshots(snapshot, base)
        if drift:
            print("metric drift vs baseline:")
            for line in drift:
                print(f"  {line}")
            return 1
        print("baseline check: OK (no metric drift)")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import lint
    from repro.analysis.schedules import analyze_schedule
    from repro.config import CollectiveConfig

    kw = {}
    if args.posted_recvs is not None:
        kw["posted_recvs"] = args.posted_recvs
    if args.inflight_sends is not None:
        kw["inflight_sends"] = args.inflight_sends
    cfg = CollectiveConfig(segment_size=args.segment_size, **kw)
    graph = analyze_schedule(
        args.schedule, nranks=args.ranks, tree=args.tree,
        nbytes=args.nbytes, config=cfg, root=args.root,
    )
    report = lint(graph)
    print(report.render())
    return 0 if report.ok else 1


def _print_violation(model, violation) -> None:
    print(f"  VIOLATION [{violation.kind}]: {violation.detail}")
    if violation.trace:
        print(f"  interleaving ({len(violation.trace)} match(es)):")
        for i, ev in enumerate(violation.trace):
            print(f"    {i:>3}. {model.describe(ev.send)}  ->  "
                  f"{model.describe(ev.recv)}")
    else:
        print("  interleaving: empty (violated at the initial state)")
    for line in violation.pending:
        print(f"    stuck: {line}")


def _cmd_verify_replay(args) -> int:
    from repro.verify import (
        chrome_counterexample_trace,
        load_counterexample,
        model_from_trace,
        replay,
    )

    data = load_counterexample(args.replay)
    result = replay(data)
    model = model_from_trace(data)
    sched = model.meta.get("schedule", "?")
    print(f"replaying {args.replay}: schedule={sched} "
          f"kind={data['kind']} events={len(data['events'])}")
    print(f"  {'CONFIRMED' if result.ok else 'FAILED'}: {result.message}")
    if result.ok:
        print(f"  detail: {data['detail']}")
        for line in data["pending"][:8]:
            print(f"    stuck: {line}")
    if args.chrome:
        n = chrome_counterexample_trace(data, args.chrome)
        print(f"  wrote {n} Chrome trace events to {args.chrome}")
    return 0 if result.ok else 1


def _cmd_verify(args) -> int:
    import json as _json
    import time as _time

    from repro.collectives.models import ADAPT_VERIFY, VERIFY_MODELS
    from repro.parallel import ResultCache
    from repro.verify import (
        VerifyKey,
        build_model,
        chrome_counterexample_trace,
        counterexample_dict,
        explore,
        exploration_to_summary,
        first_violation,
        kill_sweep,
        save_counterexample,
        summary_to_exploration,
    )

    if args.replay:
        return _cmd_verify_replay(args)
    if args.collectives:
        schedules = list(dict.fromkeys(args.collectives))
    elif args.all:
        schedules = sorted(VERIFY_MODELS)
    else:
        schedules = list(ADAPT_VERIFY)
    no_cache = args.no_cache or (
        os.environ.get("REPRO_NO_CACHE", "") not in ("", "0")
    )
    cache = None if no_cache else ResultCache()
    mode = "naive" if args.naive else "auto"
    report: dict = {"config": {
        "ranks": args.ranks, "tree": args.tree, "nbytes": args.nbytes,
        "segment_size": args.segment_size, "root": args.root, "mode": mode,
    }, "schedules": {}}
    exit_code = 0
    saved_counterexample = False
    rendered_chrome = False
    for schedule in schedules:
        spec = VERIFY_MODELS[schedule]
        t0 = _time.monotonic()
        model = build_model(
            schedule, nranks=args.ranks, tree=args.tree, nbytes=args.nbytes,
            segment_size=args.segment_size, root=args.root,
        )
        max_states = min(args.max_states, args.naive_cap) if args.naive \
            else args.max_states
        key = VerifyKey(model.fingerprint(), mode, max_states)
        exploration = None
        cached = False
        if cache is not None:
            summary = cache.get(key)
            if summary is not None:
                exploration = summary_to_exploration(model, summary)
                cached = exploration is not None
        if exploration is None:
            exploration = explore(
                model, mode=mode, max_states=max_states,
                budget_seconds=args.budget_seconds, keep_states=False,
            )
            if cache is not None and exploration.complete:
                cache.put(key, exploration_to_summary(exploration))
        # The DPOR-vs-naive census: how much the reduction buys on this
        # model (naive leg capped; a capped count is a lower bound).
        naive_note = ""
        if exploration.mode == "dpor":
            naive = explore(
                model, mode="naive", max_states=args.naive_cap,
                budget_seconds=args.budget_seconds, keep_states=False,
            )
            bound = "" if naive.complete else ">="
            naive_note = (
                f"; naive enumeration {bound}{naive.states_explored} states"
            )
        elapsed = _time.monotonic() - t0
        expected = spec.expect
        found_kinds = sorted({v.kind for v in exploration.violations})
        if expected is not None:
            ok = expected in found_kinds
            verdict = (
                f"expected violation {expected!r} "
                f"{'produced' if ok else 'MISSING'} (found: {found_kinds})"
            )
        else:
            ok = exploration.ok
            verdict = exploration.verdict()
        status = "ok " if ok else "FAIL"
        warm = " [cached]" if cached else ""
        print(f"{status} {schedule}: {verdict}{warm}")
        print(f"     mode={exploration.mode} states={exploration.states_explored} "
              f"transitions={exploration.transitions_fired} "
              f"maximal={exploration.maximal_states}{naive_note} "
              f"({elapsed:.2f}s)")
        entry: dict = {
            "ok": ok,
            "mode": exploration.mode,
            "states_explored": exploration.states_explored,
            "transitions_fired": exploration.transitions_fired,
            "complete": exploration.complete,
            "cached": cached,
            "violations": found_kinds,
            "expected": expected,
        }
        violation = first_violation(exploration)
        if violation is not None:
            _print_violation(model, violation)
            if args.counterexample and not saved_counterexample:
                save_counterexample(
                    args.counterexample, model, violation, exploration.mode
                )
                saved_counterexample = True
                print(f"  counterexample written to {args.counterexample}")
            if args.chrome and not rendered_chrome:
                chrome_counterexample_trace(
                    counterexample_dict(model, violation, exploration.mode),
                    args.chrome,
                )
                rendered_chrome = True
                print(f"  violation rendered as Chrome trace: {args.chrome}")
        if args.kill_sweep and spec.family == "adapt" and spec.recovery:
            sweep = kill_sweep(
                schedule, nranks=args.ranks, tree=args.tree,
                nbytes=args.nbytes, segment_size=args.segment_size,
                root=args.root, max_states=max_states,
                budget_seconds=args.budget_seconds,
            )
            sweep_status = "ok " if sweep.ok else "FAIL"
            print(f"{sweep_status} {schedule} kill-sweep: {sweep.verdict()} "
                  f"({sweep.elapsed:.2f}s)")
            for victim in sweep.victims:
                for issue in victim.issues[:4]:
                    print(f"     victim {victim.victim}: {issue}")
            entry["kill_sweep"] = {
                "ok": sweep.ok,
                "mode": sweep.mode,
                "triples": sweep.triples,
                "victims": len(sweep.victims),
                "base_states": sweep.base.states_explored,
            }
            if not sweep.ok:
                ok = False
                entry["ok"] = False
        if args.partition_sweep and spec.family == "adapt" and spec.recovery:
            from repro.verify import partition_sweep

            psweep = partition_sweep(
                schedule, nranks=args.ranks, tree=args.tree,
                nbytes=args.nbytes, segment_size=args.segment_size,
                root=args.root, max_states=max_states,
                budget_seconds=args.budget_seconds,
            )
            psweep_status = "ok " if psweep.ok else "FAIL"
            print(f"{psweep_status} {schedule} partition-sweep: "
                  f"{psweep.verdict()} ({psweep.elapsed:.2f}s)")
            for cut in psweep.cuts:
                for issue in cut.issues[:4]:
                    print(f"     cut {cut.side_a}|{cut.side_b}: {issue}")
            entry["partition_sweep"] = {
                "ok": psweep.ok,
                "mode": psweep.mode,
                "triples": psweep.triples,
                "cuts": len(psweep.cuts),
                "witnessed": psweep.witnessed,
                "base_states": psweep.base.states_explored,
            }
            if not psweep.ok:
                ok = False
                entry["ok"] = False
        report["schedules"][schedule] = entry
        if not ok:
            exit_code = max(exit_code, 2 if not exploration.complete else 1)
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=1, sort_keys=True)
        print(f"report written to {args.json}")
    return exit_code


def _cmd_tree(args) -> str:
    spec = small_test_machine(
        nodes=args.nodes, sockets=args.sockets, cores_per_socket=args.cores
    )
    topo = Topology(spec, spec.total_cores)
    from repro.trees import topology_aware_tree

    tree = topology_aware_tree(topo, list(range(spec.total_cores)), args.root)
    lines = [f"topology-aware tree, root {tree.root}, height {tree.height()}"]

    def walk(rank: int, depth: int) -> None:
        for child in tree.children[rank]:
            level = topo.level(rank, child).name.lower().replace("_", "-")
            lines.append(f"{'  ' * depth}P{rank} -> P{child} [{level}]")
            walk(child, depth + 1)

    walk(tree.root, 0)
    return "\n".join(lines)


def _cmd_machines() -> str:
    lines = []
    for name, factory in _MACHINES.items():
        spec = factory()
        gpus = f", {spec.total_gpus} GPUs" if spec.total_gpus else ""
        lines.append(
            f"{name:<10} {spec.nodes} nodes x {spec.node.sockets} sockets x "
            f"{spec.node.cores_per_socket} cores = {spec.total_cores} ranks{gpus}"
        )
    from repro.topo import FAMILIES, compile_topo

    for name in sorted(FAMILIES):
        topo = compile_topo(FAMILIES[name])
        lines.append(
            f"{name:<10} {topo.nodes} nodes, {len(topo.links)} links, "
            f"{len(topo.switches)} switches = {topo.ranks} ranks "
            f"[topology family]"
        )
    return "\n".join(lines)


def _cmd_topo(args) -> str:
    from repro.topo import FAMILIES, compile_topo

    families = sorted(FAMILIES) if args.build == "all" else [args.build]
    if args.ranks is not None and args.nodes is not None:
        raise SystemExit("topo: pass --ranks or --nodes, not both")
    if args.json is not None and len(families) > 1:
        raise SystemExit("topo: --json needs a single --build FAMILY")
    lines = []
    for name in families:
        spec = FAMILIES[name]
        if args.ranks is not None:
            spec = spec.for_ranks(args.ranks)
        elif args.nodes is not None:
            spec = spec.for_ranks(args.nodes * spec.ranks_per_node)
        topo = compile_topo(spec)
        census = "  ".join(f"{k}={v}" for k, v in topo.link_census().items())
        lines.append(
            f"{name:<10} {topo.nodes} nodes  {topo.ranks} ranks  "
            f"{len(topo.switches)} switches  {len(topo.links)} links  "
            f"sha256:{topo.digest()[:12]}"
        )
        lines.append(f"{'':<10} {census}")
        if args.json is not None:
            text = topo.to_json()
            if args.json == "-":
                lines.append(text.rstrip("\n"))
            else:
                with open(args.json, "w") as fh:
                    fh.write(text)
                lines.append(f"{'':<10} wrote {args.json}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b",
                        "table1", "figx", "figxr", "figxp", "figq"):
        print(_cmd_experiment(args))
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "bench":
        print(_cmd_bench(args))
    elif args.command == "profile":
        print(_cmd_profile(args))
    elif args.command == "chaos":
        print(_cmd_chaos(args))
    elif args.command == "trace":
        print(_cmd_trace(args))
    elif args.command == "metrics":
        return _cmd_metrics(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "verify":
        return _cmd_verify(args)
    elif args.command == "tree":
        print(_cmd_tree(args))
    elif args.command == "topo":
        print(_cmd_topo(args))
    elif args.command == "machines":
        print(_cmd_machines())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
