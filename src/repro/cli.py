"""Command-line interface: regenerate any experiment or run ad-hoc measurements.

Usage (after installation)::

    python -m repro fig9 --machine cori --operation bcast
    python -m repro fig7 --machine stampede2 --scale small
    python -m repro table1
    python -m repro run --library OMPI-adapt --op reduce --nbytes 4194304 \
        --machine cori --nodes 4
    python -m repro tree --nodes 3 --sockets 2 --cores 4
    python -m repro machines
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.harness.experiments import (
    fig07_noise,
    fig08_topo,
    fig09_msgsize,
    fig10_scaling,
    fig11_gpu,
    figx_faults,
    table1_asp,
)
from repro.harness.runner import run_collective
from repro.machine import Topology, cori, psg_gpu, small_test_machine, stampede2

_MACHINES = {"cori": cori, "stampede2": stampede2, "psg": psg_gpu}


def _machine(name: str, nodes: Optional[int]):
    try:
        factory = _MACHINES[name]
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; choose from {sorted(_MACHINES)}")
    return factory(nodes) if nodes else factory()


def _add_scale(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="small", choices=["small", "medium", "paper"])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADAPT (HPDC'18) reproduction: regenerate the paper's "
        "tables and figures on the simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p7 = sub.add_parser("fig7", help="Figure 7: noise impact")
    p7.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    _add_scale(p7)

    p8 = sub.add_parser("fig8", help="Figure 8: topology-aware algorithms")
    p8.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    p8.add_argument("--operation", default="bcast", choices=["bcast", "reduce"])
    _add_scale(p8)

    p9 = sub.add_parser("fig9", help="Figure 9: end-to-end vs message size")
    p9.add_argument("--machine", default="cori", choices=["cori", "stampede2"])
    p9.add_argument("--operation", default="bcast", choices=["bcast", "reduce"])
    p9.add_argument("--chart", action="store_true",
                    help="render an ASCII line chart under the table")
    _add_scale(p9)

    p10 = sub.add_parser("fig10", help="Figure 10: strong scaling")
    _add_scale(p10)

    p11a = sub.add_parser("fig11a", help="Figure 11a: GPU vs message size")
    _add_scale(p11a)
    p11b = sub.add_parser("fig11b", help="Figure 11b: GPU strong scaling")
    _add_scale(p11b)

    pt1 = sub.add_parser("table1", help="Table 1: ASP application")
    _add_scale(pt1)

    pfx = sub.add_parser(
        "figx", help="Figure X (ours): collectives on a faulty fabric"
    )
    _add_scale(pfx)

    prun = sub.add_parser("run", help="one ad-hoc collective measurement")
    prun.add_argument("--library", default="OMPI-adapt")
    prun.add_argument("--op", dest="operation", default="bcast",
                      choices=["bcast", "reduce"])
    prun.add_argument("--nbytes", type=int, default=4 << 20)
    prun.add_argument("--machine", default="cori", choices=sorted(_MACHINES))
    prun.add_argument("--nodes", type=int, default=None)
    prun.add_argument("--nranks", type=int, default=None)
    prun.add_argument("--iterations", type=int, default=5)
    prun.add_argument("--noise", type=float, default=0.0,
                      help="noise duty-cycle percent on one mid-tree rank")
    prun.add_argument("--gpu", action="store_true")
    prun.add_argument("--seed", type=int, default=0)

    pchaos = sub.add_parser(
        "chaos",
        help="fault-injection demo: lossy fabric, fail-stop, degraded mode",
        description="Run one collective over a faulty fabric (DESIGN.md "
        "S17): seeded per-link message drops/duplicates with the reliable "
        "ack/retransmit transport, and/or a mid-collective fail-stop of one "
        "rank. By default the same fault plan is also applied to the "
        "Waitall-style comparator, showing ADAPT completing (degraded) "
        "where the blocking schedule hangs.",
    )
    pchaos.add_argument("operation", choices=["bcast", "reduce"])
    pchaos.add_argument("--library", default="OMPI-adapt")
    pchaos.add_argument("--compare", default="OMPI-default-topo",
                        help="second library run under the same plan "
                        "(empty string to skip)")
    pchaos.add_argument("--machine", default="cori", choices=sorted(_MACHINES))
    pchaos.add_argument("--nodes", type=int, default=None)
    pchaos.add_argument("--nranks", type=int, default=None)
    pchaos.add_argument("--nbytes", type=int, default=512 << 10)
    pchaos.add_argument("--iterations", type=int, default=4)
    pchaos.add_argument("--drop", type=float, default=0.0,
                        help="per-message drop probability on every link")
    pchaos.add_argument("--duplicate", type=float, default=0.0,
                        help="per-message duplication probability")
    pchaos.add_argument("--kill-rank", type=int, default=None,
                        help="fail-stop this rank mid-collective")
    pchaos.add_argument("--kill-at", type=float, default=None,
                        help="kill time in seconds (default: 30%% of the "
                        "fault-free run)")
    pchaos.add_argument("--seed", type=int, default=0)

    plint = sub.add_parser(
        "lint",
        help="extract a schedule's dependency graph and lint/certify it",
        description="Record a collective schedule on an instrumented world, "
        "classify every happens-before edge as data / synchronization / "
        "flow-control (paper Section 2), and run the schedule linter. "
        "Exits non-zero when any error-severity finding fires "
        "(e.g. the deadlock-demo schedule).",
    )
    from repro.analysis.schedules import DEMO_SCHEDULES, SCHEDULES, TREES

    plint.add_argument("schedule",
                       choices=sorted(SCHEDULES) + list(DEMO_SCHEDULES))
    plint.add_argument("--tree", default="binary", choices=sorted(TREES))
    plint.add_argument("--ranks", type=int, default=8)
    plint.add_argument("--nbytes", type=int, default=512 * 1024)
    plint.add_argument("--root", type=int, default=0)
    plint.add_argument("--segment-size", type=int, default=64 * 1024)
    plint.add_argument("--posted-recvs", type=int, default=None,
                       help="recv window M (default: collective config)")
    plint.add_argument("--inflight-sends", type=int, default=None,
                       help="send window N (default: collective config)")

    ptree = sub.add_parser("tree", help="print a topology-aware tree")
    ptree.add_argument("--nodes", type=int, default=3)
    ptree.add_argument("--sockets", type=int, default=2)
    ptree.add_argument("--cores", type=int, default=4)
    ptree.add_argument("--root", type=int, default=0)

    sub.add_parser("machines", help="list machine presets")
    return parser


def _cmd_experiment(args) -> str:
    if args.command == "fig7":
        return fig07_noise.run(args.machine, args.scale).table()
    if args.command == "fig8":
        return fig08_topo.run(args.machine, args.scale, args.operation).table()
    if args.command == "fig9":
        res = fig09_msgsize.run(args.machine, args.scale, args.operation)
        out = res.table()
        if getattr(args, "chart", False):
            from repro.harness.charts import experiment_line_chart

            out += "\n\n" + experiment_line_chart(res)
        return out
    if args.command == "fig10":
        return fig10_scaling.run(args.scale).table()
    if args.command == "fig11a":
        return fig11_gpu.run_msgsize(args.scale).table()
    if args.command == "fig11b":
        return fig11_gpu.run_scaling(args.scale).table()
    if args.command == "table1":
        return table1_asp.run(args.scale).table()
    if args.command == "figx":
        return figx_faults.run(args.scale).table()
    raise AssertionError  # pragma: no cover


def _cmd_run(args) -> str:
    spec = _machine(args.machine, args.nodes)
    nranks = args.nranks or (spec.total_gpus if args.gpu else spec.total_cores)
    noisy = [nranks // 3] if args.noise > 0 else "per-node"
    result = run_collective(
        spec, nranks, args.library, args.operation, args.nbytes,
        iterations=args.iterations, noise_percent=args.noise,
        noise_ranks=noisy, gpu=args.gpu, seed=args.seed,
    )
    return str(result)


def _cmd_chaos(args) -> str:
    from repro.faults import FaultPlan, KillSpec, LossSpec

    spec = _machine(args.machine, args.nodes)
    nranks = args.nranks or spec.total_cores
    lossy = args.drop > 0 or args.duplicate > 0
    if not lossy and args.kill_rank is None:
        raise SystemExit("chaos: nothing to inject; pass --drop, --duplicate "
                         "and/or --kill-rank")
    lines = []

    def fault_free(lib: str):
        return run_collective(
            spec, nranks, lib, args.operation, args.nbytes,
            iterations=args.iterations, seed=args.seed,
        )

    base = fault_free(args.library)
    lines.append(f"fault-free  {base}")
    kill_at = None
    if args.kill_rank is not None:
        kill_at = args.kill_at if args.kill_at is not None else (
            0.3 * base.mean_time * args.iterations
        )
    losses = [LossSpec(drop=args.drop, duplicate=args.duplicate)] if lossy else []
    kills = (
        [KillSpec(rank=args.kill_rank, time=kill_at)]
        if args.kill_rank is not None else []
    )
    plan = FaultPlan(losses=losses, kills=kills, seed=args.seed)
    desc = []
    if lossy:
        desc.append(f"drop={args.drop:g} duplicate={args.duplicate:g} per message")
    if kills:
        desc.append(f"kill rank {args.kill_rank} at t={kill_at * 1e3:.3f} ms")
    lines.append(f"fault plan: {'; '.join(desc)} (seed={args.seed})")

    libraries = [args.library]
    if args.compare and args.compare != args.library:
        libraries.append(args.compare)
    for lib in libraries:
        r = run_collective(
            spec, nranks, lib, args.operation, args.nbytes,
            iterations=args.iterations, seed=args.seed, fault_plan=plan,
            sanitize=not kills,  # a hung schedule legitimately leaves wreckage
        )
        lines.append(f"faulty      {r}")
        if not r.completed:
            lines.append(
                "            -> HUNG: the schedule cannot recover from the "
                "failure (reported inf)"
            )
        elif r.degraded:
            lines.append(
                "            -> completed DEGRADED: survivors re-routed "
                "around the dead rank"
            )
    return "\n".join(lines)


def _cmd_lint(args) -> int:
    from repro.analysis.lint import lint
    from repro.analysis.schedules import analyze_schedule
    from repro.config import CollectiveConfig

    kw = {}
    if args.posted_recvs is not None:
        kw["posted_recvs"] = args.posted_recvs
    if args.inflight_sends is not None:
        kw["inflight_sends"] = args.inflight_sends
    cfg = CollectiveConfig(segment_size=args.segment_size, **kw)
    graph = analyze_schedule(
        args.schedule, nranks=args.ranks, tree=args.tree,
        nbytes=args.nbytes, config=cfg, root=args.root,
    )
    report = lint(graph)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_tree(args) -> str:
    spec = small_test_machine(
        nodes=args.nodes, sockets=args.sockets, cores_per_socket=args.cores
    )
    topo = Topology(spec, spec.total_cores)
    from repro.trees import topology_aware_tree

    tree = topology_aware_tree(topo, list(range(spec.total_cores)), args.root)
    lines = [f"topology-aware tree, root {tree.root}, height {tree.height()}"]

    def walk(rank: int, depth: int) -> None:
        for child in tree.children[rank]:
            level = topo.level(rank, child).name.lower().replace("_", "-")
            lines.append(f"{'  ' * depth}P{rank} -> P{child} [{level}]")
            walk(child, depth + 1)

    walk(tree.root, 0)
    return "\n".join(lines)


def _cmd_machines() -> str:
    lines = []
    for name, factory in _MACHINES.items():
        spec = factory()
        gpus = f", {spec.total_gpus} GPUs" if spec.total_gpus else ""
        lines.append(
            f"{name:<10} {spec.nodes} nodes x {spec.node.sockets} sockets x "
            f"{spec.node.cores_per_socket} cores = {spec.total_cores} ranks{gpus}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("fig7", "fig8", "fig9", "fig10", "fig11a", "fig11b",
                        "table1", "figx"):
        print(_cmd_experiment(args))
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "chaos":
        print(_cmd_chaos(args))
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "tree":
        print(_cmd_tree(args))
    elif args.command == "machines":
        print(_cmd_machines())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
