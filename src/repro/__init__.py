"""repro — reproduction of *ADAPT: An Event-Based Adaptive Collective
Communication Framework* (Luo et al., HPDC 2018).

The paper's system is rebuilt end-to-end on a discrete-event simulated
heterogeneous cluster (see DESIGN.md for the substitution argument):

* :mod:`repro.sim` — event engine, per-rank CPUs, tracing;
* :mod:`repro.machine` — cluster/topology model (Cori/Stampede2/PSG presets);
* :mod:`repro.network` — max-min fair-shared links, routing, PCIe lanes;
* :mod:`repro.mpi` — simulated MPI runtime (eager/rendezvous, matching,
  completion callbacks, blocking-style proclets);
* :mod:`repro.trees` — communication trees incl. the topology-aware tree;
* :mod:`repro.collectives` — blocking / non-blocking+Waitall / **ADAPT
  event-driven** collectives plus the comparators and extensions;
* :mod:`repro.libraries` — behavioural models of the compared MPI libraries;
* :mod:`repro.noise` — noise injection and the propagation microscope;
* :mod:`repro.model` — Hockney analytic cost model;
* :mod:`repro.apps` — the ASP application (Table 1);
* :mod:`repro.harness` — IMB-style runner, per-figure experiment drivers,
  charts, and the ``python -m repro`` CLI.

Quickstart::

    from repro.machine import cori
    from repro.mpi import MpiWorld, Communicator
    from repro.trees import topology_aware_tree
    from repro.collectives import bcast_adapt
    from repro.collectives.base import CollectiveContext
    from repro.config import CollectiveConfig

    world = MpiWorld(cori(nodes=2), nranks=64)
    comm = Communicator(world)
    tree = topology_aware_tree(world.topology, list(comm.ranks), root=0)
    ctx = CollectiveContext(comm, 0, 1 << 20, CollectiveConfig(), tree=tree)
    handle = bcast_adapt(ctx)
    world.run()
    print(handle.elapsed())
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "cli",
    "collectives",
    "config",
    "harness",
    "libraries",
    "machine",
    "model",
    "mpi",
    "network",
    "noise",
    "sim",
    "trees",
]
