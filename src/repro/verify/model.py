"""Transition-model extraction: a recorded schedule as a transition system.

The recording runtime (``repro.analysis.depgraph``) already captures every
operation a schedule posts and the completions that gated each posting. This
module re-reads that graph as an executable model:

* an **op** is a send, recv, or local step (reduction / compute), carrying
  its *guard* — the set of ops whose completion triggered its posting in
  the recorded run (callback gates, wait/waitall barriers, window refills);
* an op **posts** as soon as its whole guard has completed (posting is a
  deterministic, monotone closure — local ops and eager sends complete at
  post, so guard chains collapse without scheduling choices);
* the only nondeterminism is **message matching**: which in-flight send an
  open recv pairs with, the arrival-order freedom a real network has.

Soundness rests on the data-oblivious-schedule contract declared per
schedule in ``repro.collectives.models.VERIFY_MODELS``: what gets posted
(and what gates it) must not depend on payload bytes. Under that contract,
the guards observed in one recorded run are the guards of *every* run, and
exploring all match orders covers all network behaviours (the classic
dynamic-verification argument of ISP/DAMPI). Guards are an
over-approximation of true enabling in one direction only — an op recorded
as gated by the *last* of several sufficient triggers gets the superset —
which can delay posting in the model, never invent it; completions are
monotone, so this cannot mask a deadlock (DESIGN.md S21).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Optional

from repro.analysis.depgraph import DepGraph
from repro.config import DEFAULT_RUNTIME
from repro.mpi.matching import MatchKey, candidate_matches, match_key

#: Dependency-edge provenances that are *not* posting guards: match edges
#: pair a recv with its send after the fact, and provenance edges are
#: recovered data-flow, not the trigger that posted the op.
_NON_GUARD_VIA = ("match", "provenance")

#: Graph node kinds that become local (zero-latency) model steps.
_LOCAL_KINDS = ("reduce", "compute")


@dataclass(frozen=True)
class ModelOp:
    """One operation of the transition system."""

    oid: int
    kind: str  # "send" | "recv" | "local"
    rank: int
    peer: Optional[int]
    tag: Optional[int]
    nbytes: int
    #: Sends only: completes locally at post (below the eager threshold).
    eager: bool
    #: Ops whose completion posts this one (empty = posted at launch).
    guards: frozenset[int]
    label: str

    @property
    def key(self) -> MatchKey:
        """The wire matching key; send/recv ops only."""
        assert self.kind in ("send", "recv") and self.peer is not None
        assert self.tag is not None
        return match_key(self.kind, self.rank, self.peer, self.tag)


@dataclass
class ScheduleModel:
    """An extracted schedule as ops + guards, ready to explore."""

    ops: dict[int, ModelOp]
    meta: dict[str, Any] = field(default_factory=dict)
    eager_threshold: int = DEFAULT_RUNTIME.eager_threshold

    @cached_property
    def sends(self) -> tuple[ModelOp, ...]:
        return tuple(
            op for _, op in sorted(self.ops.items()) if op.kind == "send"
        )

    @cached_property
    def recvs(self) -> tuple[ModelOp, ...]:
        return tuple(
            op for _, op in sorted(self.ops.items()) if op.kind == "recv"
        )

    @cached_property
    def dependents(self) -> dict[int, tuple[int, ...]]:
        """guard oid -> ops it helps post (the closure's worklist edges)."""
        out: dict[int, list[int]] = {}
        for oid, op in sorted(self.ops.items()):
            for g in op.guards:
                out.setdefault(g, []).append(oid)
        return {g: tuple(v) for g, v in out.items()}

    @cached_property
    def key_census(self) -> dict[MatchKey, tuple[list[int], list[int]]]:
        """Wire key -> (send oids, recv oids) over the whole model."""
        return candidate_matches(
            ((s.oid, *s.key) for s in self.sends),
            ((r.oid, *r.key) for r in self.recvs),
        )

    @cached_property
    def key_unique(self) -> bool:
        """True when every wire key has at most one send and one recv.

        Key-unique models have no match ambiguity anywhere: every enabled
        match commutes with every other, the reachable maximal state is
        unique (confluence), and the DPOR persistent set collapses to a
        single representative interleaving. All thirteen real schedules in
        this repository are key-unique — segment tags see to it.
        """
        return all(
            len(ss) <= 1 and len(rr) <= 1
            for ss, rr in self.key_census.values()
        )

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(sorted({op.rank for op in self.ops.values()}))

    def describe(self, oid: int) -> str:
        return self.ops[oid].label

    def fingerprint(self) -> str:
        """Content hash of the transition system (ops, guards, config).

        Two recordings of the same schedule at the same parameters produce
        the same fingerprint; any structural change misses. This is the key
        the explored-state cache is addressed by.
        """
        payload = {
            "eager_threshold": self.eager_threshold,
            "ops": [
                [
                    op.oid, op.kind, op.rank, op.peer, op.tag, op.nbytes,
                    op.eager, sorted(op.guards),
                ]
                for _, op in sorted(self.ops.items())
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def model_from_graph(
    graph: DepGraph, eager_threshold: Optional[int] = None
) -> ScheduleModel:
    """Re-read a recorded dependency graph as a transition system.

    Keeps send/recv/reduce/compute nodes (wait and callback nodes are
    recording scaffolding; their gating is already carried by the dep edges
    into the ops they posted). Cancelled requests were withdrawn, so they
    are neither obligations nor guards.
    """
    if eager_threshold is None:
        eager_threshold = int(
            graph.meta.get("eager_threshold", DEFAULT_RUNTIME.eager_threshold)
        )
    kept: dict[int, str] = {}
    for nid, node in sorted(graph.nodes.items()):
        if node.cancelled:
            continue
        if node.kind in ("send", "recv"):
            kept[nid] = node.kind
        elif node.kind in _LOCAL_KINDS:
            kept[nid] = "local"
    guards: dict[int, set[int]] = {nid: set() for nid in kept}
    for e in graph.dep_edges:
        if e.via in _NON_GUARD_VIA:
            continue
        if e.dst in kept and e.src in kept:
            guards[e.dst].add(e.src)
    ops: dict[int, ModelOp] = {}
    for nid, kind in kept.items():
        node = graph.nodes[nid]
        ops[nid] = ModelOp(
            oid=nid,
            kind=kind,
            rank=node.rank,
            peer=node.peer,
            tag=node.tag,
            nbytes=node.nbytes,
            eager=(kind == "send" and node.nbytes <= eager_threshold),
            guards=frozenset(guards[nid]),
            label=node.describe(),
        )
    return ScheduleModel(
        ops=ops, meta=dict(graph.meta), eager_threshold=eager_threshold
    )


def build_model(
    schedule: str,
    nranks: int = 8,
    tree: str = "binary",
    nbytes: int = 64 * 1024,
    segment_size: int = 16 * 1024,
    root: int = 0,
) -> ScheduleModel:
    """Record ``schedule`` on a fresh instrumented world and extract it.

    Recording is deterministic, so equal parameters yield byte-equal models
    (and therefore equal fingerprints) — counterexample replay depends on
    this.
    """
    from repro.analysis.schedules import DEMO_SCHEDULES, analyze_schedule
    from repro.config import CollectiveConfig

    if schedule in DEMO_SCHEDULES:
        graph = analyze_schedule(schedule, nranks=nranks, nbytes=nbytes)
    else:
        graph = analyze_schedule(
            schedule,
            nranks=nranks,
            tree=tree,
            nbytes=nbytes,
            config=CollectiveConfig(segment_size=segment_size),
            root=root,
        )
    return model_from_graph(graph)
