"""Schedule model checking: exhaustive interleaving exploration.

The single-interleaving linter (:mod:`repro.analysis.lint`) proves
properties of the one execution the simulator happened to run. This
package proves them for *every* execution a reordering network could
produce: the recorded schedule becomes a transition system
(:mod:`repro.verify.model`), the explorer walks all inequivalent match
orders with dynamic partial-order reduction
(:mod:`repro.verify.checker`), the kill-sweep certifies the recovery
path at every explored state (:mod:`repro.verify.recovery_check`), and
every violation ships as a replayable, Chrome-traceable counterexample
(:mod:`repro.verify.counterexample`). ``repro verify`` is the CLI front
door; :mod:`repro.verify.cache` keys warm re-runs by model fingerprint.
"""

from repro.verify.cache import (
    VerifyKey,
    exploration_to_summary,
    summary_to_exploration,
)
from repro.verify.checker import (
    DEADLOCK,
    RACE,
    UNMATCHED_SEND,
    Exploration,
    MatchEvent,
    Violation,
    explore,
)
from repro.verify.counterexample import (
    ReplayResult,
    chrome_counterexample_trace,
    counterexample_dict,
    first_violation,
    load_counterexample,
    model_from_trace,
    replay,
    save_counterexample,
)
from repro.verify.model import (
    ModelOp,
    ScheduleModel,
    build_model,
    model_from_graph,
)
from repro.verify.recovery_check import (
    CutReport,
    KillSweepResult,
    PartitionSweepResult,
    VictimReport,
    kill_sweep,
    partition_sweep,
)

__all__ = [
    "DEADLOCK",
    "RACE",
    "UNMATCHED_SEND",
    "CutReport",
    "Exploration",
    "KillSweepResult",
    "PartitionSweepResult",
    "MatchEvent",
    "ModelOp",
    "ReplayResult",
    "ScheduleModel",
    "VerifyKey",
    "VictimReport",
    "Violation",
    "build_model",
    "chrome_counterexample_trace",
    "counterexample_dict",
    "explore",
    "exploration_to_summary",
    "first_violation",
    "kill_sweep",
    "load_counterexample",
    "partition_sweep",
    "model_from_graph",
    "model_from_trace",
    "replay",
    "save_counterexample",
    "summary_to_exploration",
]
