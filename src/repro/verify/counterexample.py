"""Counterexample traces: save, replay, and render violations.

A violation found by the explorer is only as useful as its witness. This
module makes each one a self-contained artifact:

* :func:`save_counterexample` writes a JSON trace holding the *entire*
  transition model (every op with its guards), the violating match
  sequence, and the violation verdict — no re-recording needed to read it
  back on another machine;
* :func:`replay` deterministically re-executes the trace against the
  embedded model: every event must be enabled when fired, and the final
  state must exhibit exactly the reported violation. A trace that replays
  is a machine-checked proof, not a log line;
* :func:`chrome_counterexample_trace` renders the replay as a Chrome
  ``chrome://tracing`` file on the PR-4 observability pipeline — one track
  per rank, one lane step per fired match (synthetic step-indexed time:
  interleaving *order* is the dimension that matters, not nanoseconds),
  with stuck obligations drawn as marked spans after the last step.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.chrome import export_chrome_trace
from repro.obs.spans import ObsRecorder
from repro.verify.checker import (
    DEADLOCK,
    RACE,
    UNMATCHED_SEND,
    Exploration,
    MatchEvent,
    Violation,
    _closure,
    _enabled,
    _stuck,
)
from repro.verify.model import ModelOp, ScheduleModel

#: Bump when the trace layout changes; replay refuses newer schemas.
TRACE_SCHEMA = 1


@dataclass
class ReplayResult:
    """Outcome of re-executing one saved counterexample."""

    ok: bool
    steps_replayed: int
    kind: str
    message: str


def _op_to_row(op: ModelOp) -> list[Any]:
    return [
        op.oid, op.kind, op.rank, op.peer, op.tag, op.nbytes, op.eager,
        sorted(op.guards), op.label,
    ]


def _op_from_row(row: list[Any]) -> ModelOp:
    oid, kind, rank, peer, tag, nbytes, eager, guards, label = row
    return ModelOp(
        oid=int(oid), kind=str(kind), rank=int(rank),
        peer=None if peer is None else int(peer),
        tag=None if tag is None else int(tag),
        nbytes=int(nbytes), eager=bool(eager),
        guards=frozenset(int(g) for g in guards), label=str(label),
    )


def counterexample_dict(
    model: ScheduleModel, violation: Violation, mode: str
) -> dict[str, Any]:
    return {
        "schema": TRACE_SCHEMA,
        "kind": violation.kind,
        "detail": violation.detail,
        "pending": list(violation.pending),
        "mode": mode,
        "events": [[ev.send, ev.recv] for ev in violation.trace],
        "model": {
            "eager_threshold": model.eager_threshold,
            "meta": {
                k: v for k, v in model.meta.items()
                if isinstance(v, (str, int, float, bool, type(None)))
            },
            "fingerprint": model.fingerprint(),
            "ops": [_op_to_row(op) for _, op in sorted(model.ops.items())],
        },
    }


def save_counterexample(
    path: str, model: ScheduleModel, violation: Violation, mode: str
) -> None:
    """Write one violation as a self-contained, replayable JSON trace."""
    with open(path, "w") as fh:
        json.dump(counterexample_dict(model, violation, mode), fh, indent=1)


def first_violation(exploration: Exploration) -> Optional[Violation]:
    """The violation a single-trace artifact should carry: prefer the one
    kind the model was *expected* to produce is the caller's business; here
    deadlocks outrank races outrank stranded sends (severity order)."""
    for kind in (DEADLOCK, RACE, UNMATCHED_SEND):
        v = exploration.first(kind)
        if v is not None:
            return v
    return None


def load_counterexample(path: str) -> dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"counterexample schema {schema!r} != supported {TRACE_SCHEMA}"
        )
    return data


def model_from_trace(data: dict[str, Any]) -> ScheduleModel:
    ops = [_op_from_row(row) for row in data["model"]["ops"]]
    return ScheduleModel(
        ops={op.oid: op for op in ops},
        meta=dict(data["model"].get("meta", {})),
        eager_threshold=int(data["model"]["eager_threshold"]),
    )


def replay(data: dict[str, Any]) -> ReplayResult:
    """Re-execute a saved trace; succeed only if every step was enabled and
    the final state exhibits the reported violation."""
    model = model_from_trace(data)
    fp = model.fingerprint()
    if fp != data["model"]["fingerprint"]:
        return ReplayResult(
            False, 0, data["kind"],
            "embedded model does not hash to its recorded fingerprint",
        )
    kind = data["kind"]
    state: frozenset[int] = frozenset()
    for i, (send, recv) in enumerate(data["events"]):
        posted, _ = _closure(model, state)
        events, _races = _enabled(model, posted, state)
        if MatchEvent(int(send), int(recv)) not in events:
            return ReplayResult(
                False, i, kind,
                f"step {i}: match (send={send}, recv={recv}) not enabled",
            )
        state = state | {int(send), int(recv)}
    posted, completed = _closure(model, state)
    events, races = _enabled(model, posted, state)
    n = len(data["events"])
    if kind == RACE:
        if not races:
            return ReplayResult(
                False, n, kind,
                "final state has no key with two sends in flight",
            )
        return ReplayResult(
            True, n, kind,
            f"race confirmed: {len(races)} ambiguous key(s) at final state",
        )
    if events:
        return ReplayResult(
            False, n, kind,
            "final state is not maximal: matches still enabled",
        )
    stuck, unconsumed = _stuck(model, posted, completed, state)
    if kind == DEADLOCK:
        if not stuck:
            return ReplayResult(
                False, n, kind, "final state completed every op: no deadlock"
            )
        return ReplayResult(
            True, n, kind,
            f"deadlock confirmed: {len(stuck)} op(s) stuck at final state",
        )
    if kind == UNMATCHED_SEND:
        if stuck or not unconsumed:
            return ReplayResult(
                False, n, kind, "final state has no stranded eager send"
            )
        return ReplayResult(
            True, n, kind,
            f"confirmed: {len(unconsumed)} eager send(s) never consumed",
        )
    return ReplayResult(False, n, kind, f"unknown violation kind {kind!r}")


def chrome_counterexample_trace(data: dict[str, Any], path: str) -> int:
    """Render a saved trace as a Chrome trace; returns events written.

    Synthetic time: each fired match occupies one unit step (the trace's
    x-axis is interleaving order). Completions triggered by a match appear
    on their rank's track at that step; ops completed by the initial
    posting closure sit at step 0; stuck obligations are drawn past the
    final step in a ``stuck`` category so they render highlighted.
    """
    model = model_from_trace(data)
    obs = ObsRecorder()
    step_of: dict[int, int] = {}
    state: frozenset[int] = frozenset()
    _, completed = _closure(model, state)
    for oid in completed:
        step_of[oid] = 0
    events = [MatchEvent(int(s), int(r)) for s, r in data["events"]]
    for i, ev in enumerate(events, start=1):
        state = state | {ev.send, ev.recv}
        _, now_done = _closure(model, state)
        for oid in now_done:
            step_of.setdefault(oid, i)
    posted, completed = _closure(model, state)
    horizon = len(events) + 1
    for oid, op in sorted(model.ops.items()):
        if oid in step_of:
            s = step_of[oid]
            obs.add(
                "verify", op.label, ("rank", op.rank),
                float(s), float(s + 1),
                args={"oid": oid, "kind": op.kind, "step": s},
            )
        else:
            status = "never-posted" if oid not in posted else "stuck"
            obs.add(
                "stuck", f"STUCK {op.label}", ("rank", op.rank),
                float(horizon), float(horizon + 1),
                args={"oid": oid, "kind": op.kind, "status": status},
            )
    # The exporter's track kinds are rank/recovery/link; the match sequence
    # and the verdict banner ride as two extra "link" threads.
    for i, ev in enumerate(events, start=1):
        send = model.ops[ev.send]
        obs.add(
            "match", f"match {send.label}", ("link", "matches"),
            float(i), float(i + 1),
            args={"send": ev.send, "recv": ev.recv},
        )
    obs.add(
        "violation", f"{data['kind']}: {data['detail']}",
        ("link", "verdict"), 0.0, float(horizon + 1),
        args={"pending": list(data["pending"])[:8]},
    )
    return export_chrome_trace(obs, path)
