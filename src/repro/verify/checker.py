"""Exhaustive interleaving exploration with dynamic partial-order reduction.

State abstraction
-----------------
A state is the *set of matched ops* (frozenset of op ids). Posting is a
deterministic monotone closure over that set (``_closure``), so the matched
set determines everything else — which ops are posted, completed, and which
matches are enabled. Two interleavings reaching the same matched set are
Mazurkiewicz-equivalent for every property checked here, which is what
makes memoized search sound.

Transitions
-----------
A transition *fires one match*: an in-flight send and an open recv with the
same wire key ``(src, dst, tag)`` pair up; both complete (an eager send
already completed locally at post — the match consumes its message). The
set of enabled matches at a state is exactly the runtime matcher's
candidate enumeration (``repro.mpi.matching.candidate_matches``).

Partial-order reduction
-----------------------
Two matches conflict iff they share an endpoint — impossible when every
wire key has at most one send and one recv in the whole model
(``ScheduleModel.key_unique``). In that case all enabled matches commute,
enabledness is monotone, the reachable maximal state is unique, and the
persistent set at every state collapses to a single representative match:
DPOR explores one linear path of ``#matches + 1`` states where naive
enumeration walks every down-set of the match order. All thirteen real
schedules are key-unique (their segment tags guarantee it — asserted by
tests); models with ambiguous keys fall back to full memoized enumeration,
which is sound unconditionally and still detects every race.

Verdicts
--------
* **deadlock** — some maximal state (no match enabled) leaves an op
  unposted, an open recv unmatched, or a rendezvous send undrained.
* **race** — at some reachable state two in-flight sends share a wire key
  (arrival order picks the winner: the schedule is not deterministic).
* **unmatched-send** — every rank completes but an eager message is never
  consumed (stranded in the unexpected queue).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.mpi.matching import MatchKey, candidate_matches
from repro.verify.model import ModelOp, ScheduleModel

DEADLOCK = "deadlock"
RACE = "race"
UNMATCHED_SEND = "unmatched-send"


@dataclass(frozen=True)
class MatchEvent:
    """One fired transition: send ``send`` delivered into recv ``recv``."""

    send: int
    recv: int


@dataclass(frozen=True)
class Violation:
    """One property failure with its witnessing interleaving."""

    kind: str  # DEADLOCK | RACE | UNMATCHED_SEND
    trace: tuple[MatchEvent, ...]
    #: Human-readable op descriptions: stuck obligations (deadlock) or the
    #: simultaneously-in-flight candidates (race).
    pending: tuple[str, ...] = ()
    detail: str = ""


@dataclass
class Exploration:
    """The result of exploring one model's state space."""

    model: ScheduleModel
    mode: str  # "dpor" | "naive"
    states_explored: int = 0
    transitions_fired: int = 0
    maximal_states: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: False when the state or time budget stopped the search early.
    complete: bool = True
    elapsed: float = 0.0
    #: Every distinct matched-set reached (the kill-sweep iterates these).
    states: list[frozenset[int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.complete and not self.violations

    @property
    def deadlock_free(self) -> bool:
        return not any(v.kind == DEADLOCK for v in self.violations)

    @property
    def race_free(self) -> bool:
        return not any(v.kind == RACE for v in self.violations)

    def first(self, kind: str) -> Optional[Violation]:
        return next((v for v in self.violations if v.kind == kind), None)

    def verdict(self) -> str:
        if not self.complete:
            return "UNKNOWN (budget exhausted)"
        if not self.violations:
            return "VERIFIED deadlock-free and race-free in all orderings"
        kinds = sorted({v.kind for v in self.violations})
        return f"VIOLATED: {', '.join(kinds)}"


def _closure(
    model: ScheduleModel, matched: frozenset[int]
) -> tuple[set[int], set[int]]:
    """(posted, completed) implied by the matched set — the deterministic
    part of execution, folded to a fixpoint with a worklist."""
    ops = model.ops
    dependents = model.dependents
    remaining = {oid: len(op.guards) for oid, op in ops.items()}
    posted: set[int] = set()
    completed: set[int] = set()
    stack: list[int] = []

    def post(oid: int) -> None:
        posted.add(oid)
        op = ops[oid]
        done = (
            op.kind == "local"
            or (op.kind == "send" and op.eager)
            or oid in matched
        )
        if done:
            stack.append(oid)

    for oid, op in ops.items():
        # Count only guards that are real ops; a guard dropped from the
        # model (cancelled) is vacuously satisfied.
        rem = sum(1 for g in op.guards if g in ops)
        remaining[oid] = rem
        if rem == 0:
            post(oid)
    while stack:
        done_oid = stack.pop()
        if done_oid in completed:
            continue
        completed.add(done_oid)
        for dep in dependents.get(done_oid, ()):
            remaining[dep] -= 1
            if remaining[dep] == 0:
                post(dep)
    return posted, completed


def _enabled(
    model: ScheduleModel, posted: set[int], matched: frozenset[int]
) -> tuple[list[MatchEvent], dict[MatchKey, list[int]]]:
    """Enabled matches at a state, plus keys with racing in-flight sends."""
    flight = [
        s for s in model.sends if s.oid in posted and s.oid not in matched
    ]
    open_recvs = [
        r for r in model.recvs if r.oid in posted and r.oid not in matched
    ]
    cands = candidate_matches(
        ((s.oid, *s.key) for s in flight),
        ((r.oid, *r.key) for r in open_recvs),
    )
    events = [
        MatchEvent(s, r)
        for key in sorted(cands)
        for s in cands[key][0]
        for r in cands[key][1]
    ]
    races = {
        key: ss
        for key, (ss, _) in cands.items()
        if len(ss) >= 2 and model.key_census[key][1]
    }
    return events, races


def _stuck(
    model: ScheduleModel, posted: set[int], completed: set[int],
    matched: frozenset[int],
) -> tuple[list[ModelOp], list[ModelOp]]:
    """(incomplete obligations, unconsumed eager sends) at a maximal state."""
    stuck = [
        op for oid, op in sorted(model.ops.items()) if oid not in completed
    ]
    # Open recvs count as stuck even though `completed` covers them: a recv
    # completes only via a match, so it is already in the first list.
    unconsumed = [
        s for s in model.sends
        if s.eager and s.oid in posted and s.oid not in matched
    ]
    return stuck, unconsumed


def _describe_stuck(
    model: ScheduleModel, op: ModelOp, posted: set[int], completed: set[int]
) -> str:
    if op.oid not in posted:
        waiting = sorted(
            g for g in op.guards if g in model.ops and g not in completed
        )
        gates = ", ".join(model.describe(g) for g in waiting[:3])
        more = "" if len(waiting) <= 3 else f" (+{len(waiting) - 3} more)"
        return f"{op.label} never posted: waiting on {gates}{more}"
    if op.kind == "recv":
        return f"{op.label} posted but no matching send ever in flight"
    return f"{op.label} posted but never drained (rendezvous, no recv)"


def explore(
    model: ScheduleModel,
    mode: str = "auto",
    max_states: int = 200_000,
    budget_seconds: Optional[float] = None,
    keep_states: bool = True,
) -> Exploration:
    """Explore every inequivalent interleaving of ``model``.

    ``mode``: ``"auto"`` picks DPOR when the model is key-unique and full
    enumeration otherwise; ``"naive"`` forces full enumeration (the
    comparison baseline the CLI reports); ``"dpor"`` asserts key-uniqueness.
    """
    t0 = time.monotonic()
    if mode == "auto":
        mode = "dpor" if model.key_unique else "naive"
    elif mode == "dpor" and not model.key_unique:
        raise ValueError(
            "DPOR's singleton persistent set is only sound for key-unique "
            "models; this model has ambiguous wire keys (use mode='naive')"
        )
    elif mode not in ("dpor", "naive"):
        raise ValueError(f"unknown exploration mode {mode!r}")

    out = Exploration(model=model, mode=mode)
    visited: set[frozenset[int]] = set()
    raced_keys: set[MatchKey] = set()
    #: DFS over (matched-set, path); path reconstructs the counterexample.
    frontier: list[tuple[frozenset[int], tuple[MatchEvent, ...]]] = [
        (frozenset(), ())
    ]
    while frontier:
        if len(visited) >= max_states or (
            budget_seconds is not None
            and time.monotonic() - t0 > budget_seconds
        ):
            out.complete = False
            break
        state, path = frontier.pop()
        if state in visited:
            continue
        visited.add(state)
        if keep_states:
            out.states.append(state)
        posted, completed = _closure(model, state)
        events, races = _enabled(model, posted, state)
        for key in sorted(races):
            if key in raced_keys:
                continue
            raced_keys.add(key)
            src, dst, tag = key
            labels = tuple(
                model.describe(s) for s in races[key]
            ) + tuple(
                f"open {model.describe(r)}"
                for r in model.key_census[key][1]
            )
            out.violations.append(Violation(
                kind=RACE,
                trace=path,
                pending=labels,
                detail=(
                    f"{len(races[key])} sends simultaneously in flight on "
                    f"key (src={src}, dst={dst}, tag={tag}): the recv's "
                    "match depends on arrival order"
                ),
            ))
        if not events:
            out.maximal_states += 1
            stuck, unconsumed = _stuck(model, posted, completed, state)
            if stuck:
                pending = tuple(
                    _describe_stuck(model, op, posted, completed)
                    for op in stuck[:16]
                )
                ranks = sorted({op.rank for op in stuck})
                out.violations.append(Violation(
                    kind=DEADLOCK,
                    trace=path,
                    pending=pending,
                    detail=(
                        f"maximal execution after {len(path)} matches leaves "
                        f"{len(stuck)} operation(s) incomplete on rank(s) "
                        f"{ranks}"
                    ),
                ))
            elif unconsumed:
                out.violations.append(Violation(
                    kind=UNMATCHED_SEND,
                    trace=path,
                    pending=tuple(op.label for op in unconsumed[:16]),
                    detail=(
                        f"{len(unconsumed)} eager message(s) never consumed "
                        "by any recv (stranded in the unexpected queue)"
                    ),
                ))
            continue
        if mode == "dpor":
            # Key-unique: every enabled match is independent of every other
            # and stays enabled until fired — one representative suffices.
            chosen = [min(events, key=lambda e: (e.send, e.recv))]
        else:
            chosen = events
        for ev in chosen:
            out.transitions_fired += 1
            nxt = state | {ev.send, ev.recv}
            if nxt not in visited:
                frontier.append((nxt, path + (ev,)))
    out.states_explored = len(visited)
    out.elapsed = time.monotonic() - t0
    return out
