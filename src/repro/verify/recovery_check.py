"""Recovery-path verification: the symbolic kill-sweep.

For an ADAPT collective the checker has already certified fault-free, this
module certifies the *recovery* path: at every explored state of the base
transition system, symbolically kill each non-root rank and verify the
repair machinery reaches a safe completion. Four obligations per
(collective, victim) pair, the middle two re-checked at every state:

1. **membership agreement** — stepping the pure transition functions the
   live :class:`~repro.recovery.membership.MembershipService` runs
   (``merge_suspicions`` → ``ring_walk`` → ``agreed_view``) from the
   pre-kill view must commit a bumped epoch whose failed set contains
   exactly the victim and whose members are exactly the survivors;
2. **re-graft soundness** — ``regraft_tree`` around the victim must leave
   no live rank orphaned (``Regraft.check``) and, with the root alive,
   strand nobody (``lost`` empty);
3. **stale-epoch safety, per state** — a message already in flight when
   the kill hits must never be accepted by the recovery path. Restart
   collectives get this from tag disjointness (every stale message carries
   a base-epoch tag, the relaunch allocates strictly larger ones); in-place
   collectives get it from exact-source matching (every in-flight victim
   message's wire key names the victim, so post-commit arrivals are
   attributable and droppable — no wildcard recv exists to swallow one);
4. **survivor completion witness** — restart collectives: record the
   actual relaunch among the survivors on the re-grafted structure (fresh
   tag block, exactly as :class:`~repro.recovery.restart.EpochRestart`
   builds it) and explore *that* model to completion; in-place
   collectives: record a live faulted run (``launch_recover`` plus a
   seeded fail-stop) and require the schedule linter to pass — no
   stranded survivor, every survivor done or excused.

The triple count the CI budget is phrased in is
``sum over victims of (base states re-checked)`` — every
(collective, killed-rank, state) combination the sweep visited.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.collectives.models import VERIFY_MODELS
from repro.recovery.membership import (
    SurvivorView,
    agreed_view,
    merge_suspicions,
    ring_walk,
)
from repro.trees.regraft import regraft_tree
from repro.verify.checker import Exploration, explore
from repro.verify.model import ScheduleModel, build_model, model_from_graph


@dataclass
class VictimReport:
    """One symbolic kill: obligations 1-4 for a single victim rank."""

    victim: int
    membership_ok: bool = False
    regraft_ok: bool = False
    adoptions: dict[int, int] = field(default_factory=dict)
    #: Base states at which stale-epoch safety was re-checked.
    states_checked: int = 0
    stale_ok: bool = False
    #: "restart-model" | "in-place-live" | "skipped"
    witness: str = "skipped"
    witness_ok: bool = False
    #: States of the relaunch model's own exploration (restart only).
    witness_states: int = 0
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.membership_ok
            and self.regraft_ok
            and self.stale_ok
            and self.witness_ok
            and not self.issues
        )


@dataclass
class KillSweepResult:
    """The sweep verdict for one (collective, nranks, tree) configuration."""

    schedule: str
    collective: str
    mode: str  # "in-place" | "restart"
    nranks: int
    tree: str
    root: int
    base: Exploration
    victims: list[VictimReport] = field(default_factory=list)
    complete: bool = True
    elapsed: float = 0.0

    @property
    def triples(self) -> int:
        """(collective, killed-rank, state) combinations actually checked."""
        return sum(v.states_checked for v in self.victims)

    @property
    def ok(self) -> bool:
        return (
            self.complete
            and self.base.ok
            and bool(self.victims)
            and all(v.ok for v in self.victims)
        )

    def verdict(self) -> str:
        if not self.base.ok:
            return f"BASE NOT SAFE: {self.base.verdict()}"
        if not self.complete:
            return "UNKNOWN (budget exhausted mid-sweep)"
        bad = [v.victim for v in self.victims if not v.ok]
        if bad:
            return f"RECOVERY UNSAFE for victim(s) {bad}"
        return (
            f"RECOVERY CERTIFIED ({self.mode}): {len(self.victims)} "
            f"victim(s) x {self.base.states_explored} state(s) = "
            f"{self.triples} kill points, all safe"
        )


def _base_max_tag(model: ScheduleModel) -> int:
    tags = [
        op.tag for op in model.ops.values()
        if op.kind in ("send", "recv") and op.tag is not None
    ]
    return max(tags) if tags else -1


def _check_membership(victim: int, nranks: int) -> tuple[bool, list[str]]:
    """Step the pure agreement functions for a single-victim round."""
    issues: list[str] = []
    view0 = SurvivorView(0, frozenset(), tuple(range(nranks)))
    proposed = merge_suspicions(view0.failed, [victim])
    responsive = [r for r in range(nranks) if r != victim]
    failed = ring_walk(view0.members, proposed, responsive)
    view1 = agreed_view(view0, failed, nranks)
    if view1.epoch != view0.epoch + 1:
        issues.append(f"epoch not bumped: {view0.epoch} -> {view1.epoch}")
    if failed != frozenset({victim}):
        issues.append(f"agreed failed set {sorted(failed)} != [{victim}]")
    if victim in view1.members:
        issues.append(f"victim {victim} still a member after commit")
    if set(view1.members) != set(range(nranks)) - {victim}:
        issues.append(f"members {view1.members} are not the survivors")
    # Convergence: a second round over the same suspicion is a no-op view
    # change (same members, epoch keeps counting) — re-suspecting the dead
    # must never shrink the survivors further.
    again = ring_walk(
        view1.members, merge_suspicions(view1.failed, [victim]),
        view1.members,
    )
    view2 = agreed_view(view1, again, nranks)
    if view2.members != view1.members or view2.failed != view1.failed:
        issues.append("agreement not convergent: re-suspecting moved the view")
    return not issues, issues


def _check_stale_restart(
    model: ScheduleModel, base: Exploration, tag_floor: int
) -> tuple[int, bool, list[str]]:
    """Every op the base epoch ever posts carries a tag below ``tag_floor``.

    Checked per explored state over the ops in flight there: any message
    crossing the wire when the kill lands is numerically incapable of
    matching a relaunch-epoch recv (which tags from ``tag_floor`` up).
    """
    issues: list[str] = []
    checked = 0
    from repro.verify.checker import _closure

    for state in base.states:
        checked += 1
        posted, _ = _closure(model, state)
        hot = [
            op for op in model.sends
            if op.oid in posted and op.oid not in state
        ]
        for op in hot:
            if op.tag is not None and op.tag >= tag_floor:
                issues.append(
                    f"stale-epoch hazard: {op.label} in flight with tag "
                    f"{op.tag} >= relaunch tag floor {tag_floor}"
                )
        if len(issues) > 8:
            break
    return checked, not issues, issues


def _check_stale_inplace(
    model: ScheduleModel, base: Exploration, victim: int
) -> tuple[int, bool, list[str]]:
    """Every message the victim could leave in flight is attributable.

    In-place repair drops post-commit arrivals from the dead: that needs
    (a) no wildcard recv anywhere (exact-source matching only — a wildcard
    could swallow a stale victim message into a live exchange), and (b) at
    every state, each in-flight victim send's wire key names the victim as
    source, so the transport can identify and discard it after the commit.
    """
    issues: list[str] = []
    for r in model.recvs:
        if r.peer is None:
            issues.append(f"wildcard recv breaks attributability: {r.label}")
    checked = 0
    from repro.verify.checker import _closure

    for state in base.states:
        checked += 1
        posted, _ = _closure(model, state)
        for op in model.sends:
            if op.rank != victim:
                continue
            if op.oid in posted and op.oid not in state and op.key[0] != victim:
                issues.append(
                    f"in-flight victim message not attributable: {op.label}"
                )
        if len(issues) > 8:
            break
    return checked, not issues, issues


def _record_restart_witness(
    schedule: str,
    collective: str,
    victim: int,
    nranks: int,
    tree: str,
    nbytes: int,
    segment_size: int,
    root: int,
    tag_floor: int,
):
    """Record the survivors' relaunch exactly as ``EpochRestart`` builds it:
    same communicator, original tree re-grafted around the victim, fresh
    tag block strictly above the base epoch's."""
    from repro.analysis.depgraph import record
    from repro.analysis.schedules import TREES, recording_world
    from repro.collectives import (
        allreduce_adapt,
        gather_adapt,
        reduce_adapt,
    )
    from repro.config import CollectiveConfig
    from repro.mpi.communicator import Communicator
    from repro.recovery.restart import (
        allgather_ring_members,
        reduce_scatter_ring_members,
    )

    world = recording_world(nranks)
    world.allocate_tags(tag_floor)  # push the floor: relaunch tags disjoint
    comm = Communicator(world)
    shape = TREES[tree](nranks).reroot_relabelled(root)
    rg = regraft_tree(shape, {victim})
    from repro.collectives.base import CollectiveContext

    ctx = CollectiveContext(
        comm, root, nbytes, CollectiveConfig(segment_size=segment_size),
        tree=rg.survivor,
    )
    members = sorted(set(range(nranks)) - {victim})
    relaunchers = {
        "reduce": lambda: reduce_adapt(ctx, ranks=members),
        "gather": lambda: gather_adapt(ctx, ranks=members),
        "allreduce": lambda: allreduce_adapt(ctx, ranks=members),
        "allgather": lambda: allgather_ring_members(ctx, members),
        "reduce_scatter": lambda: reduce_scatter_ring_members(ctx, members),
    }
    launch = relaunchers[collective]
    graph = record(
        world,
        launch,
        meta={
            "schedule": f"{schedule}-relaunch",
            "nranks": nranks,
            "nbytes": nbytes,
            "victim": victim,
            "eager_threshold": world.config.eager_threshold,
        },
    )
    return graph, members


def _witness_restart(
    rep: VictimReport,
    schedule: str,
    collective: str,
    nranks: int,
    tree: str,
    nbytes: int,
    segment_size: int,
    root: int,
    tag_floor: int,
    max_states: int,
) -> None:
    rep.witness = "restart-model"
    graph, members = _record_restart_witness(
        schedule, collective, rep.victim, nranks, tree, nbytes,
        segment_size, root, tag_floor,
    )
    wmodel = model_from_graph(graph)
    wexp = explore(wmodel, max_states=max_states, keep_states=False)
    rep.witness_states = wexp.states_explored
    ok = True
    if not wexp.ok:
        ok = False
        rep.issues.append(f"relaunch model: {wexp.verdict()}")
    if rep.victim in wmodel.ranks:
        ok = False
        rep.issues.append(
            f"dead rank {rep.victim} participates in the relaunch"
        )
    stray = set(wmodel.ranks) - set(members)
    if stray:
        ok = False
        rep.issues.append(f"non-member rank(s) {sorted(stray)} in relaunch")
    low = [
        op.label for op in wmodel.ops.values()
        if op.kind in ("send", "recv")
        and op.tag is not None and op.tag < tag_floor
    ]
    if low:
        ok = False
        rep.issues.append(
            f"relaunch tag(s) below the stale floor {tag_floor}: {low[:4]}"
        )
    rep.witness_ok = ok


def _witness_inplace(
    rep: VictimReport,
    schedule: str,
    collective: str,
    nranks: int,
    tree: str,
    nbytes: int,
    segment_size: int,
    root: int,
) -> None:
    """Record a live faulted run and require a clean lint + full completion."""
    from repro.analysis.depgraph import record
    from repro.analysis.lint import lint
    from repro.analysis.schedules import TREES, recording_world
    from repro.collectives.base import CollectiveContext
    from repro.config import CollectiveConfig
    from repro.faults import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.mpi.communicator import Communicator
    from repro.recovery import launch_recover

    rep.witness = "in-place-live"
    world = recording_world(nranks)
    comm = Communicator(world)
    shape = TREES[tree](nranks).reroot_relabelled(root)
    ctx = CollectiveContext(
        comm, root, nbytes, CollectiveConfig(segment_size=segment_size),
        tree=shape,
    )
    plan = FaultPlan.single_kill(rep.victim, 2e-4, detect_delay=2e-4)
    handles: list[Any] = []

    def launch() -> None:
        handles.append(launch_recover(collective, ctx))
        FaultInjector(world, plan).arm(0.05)

    graph = record(
        world,
        launch,
        meta={
            "schedule": f"{schedule}-kill{rep.victim}",
            "nranks": nranks,
            "nbytes": nbytes,
            "victim": rep.victim,
            "eager_threshold": world.config.eager_threshold,
        },
    )
    report = lint(graph)
    ok = True
    if not report.ok:
        ok = False
        rules = sorted({f.rule for f in report.errors})
        rep.issues.append(
            f"live kill run fails lint: {rules} "
            f"({len(report.errors)} error finding(s))"
        )
    handle = handles[0]
    missing = [
        r for r in range(nranks)
        if r != rep.victim
        and r not in handle.done_time
        and r not in handle.excused
    ]
    if missing:
        ok = False
        rep.issues.append(f"survivor(s) {missing} never completed or excused")
    agreed = handle.report.agreed_failed
    if agreed and rep.victim not in agreed:
        ok = False
        rep.issues.append(
            f"membership agreed {sorted(agreed)} without the victim"
        )
    rep.witness_ok = ok


@dataclass
class CutReport:
    """One symbolic bipartition: split-brain obligations for a single cut."""

    side_a: tuple[int, ...]
    side_b: tuple[int, ...]
    #: "a" | "b" | None — which side's proposal reaches quorum.
    committer: Optional[str] = None
    quorum_ok: bool = False
    reconcile_ok: bool = False
    ringwalk_ok: bool = False
    #: Base states at which stale-epoch safety was re-checked.
    states_checked: int = 0
    stale_ok: bool = False
    #: "partition-live" | "skipped"
    witness: str = "skipped"
    witness_ok: bool = True
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.quorum_ok
            and self.reconcile_ok
            and self.ringwalk_ok
            and self.stale_ok
            and self.witness_ok
            and not self.issues
        )


@dataclass
class PartitionSweepResult:
    """The sweep verdict for one (collective, nranks, tree) configuration."""

    schedule: str
    collective: str
    mode: str  # "in-place" | "restart"
    nranks: int
    tree: str
    root: int
    base: Exploration
    cuts: list[CutReport] = field(default_factory=list)
    complete: bool = True
    elapsed: float = 0.0

    @property
    def triples(self) -> int:
        """(collective, cut, state) combinations actually checked."""
        return sum(c.states_checked for c in self.cuts)

    @property
    def witnessed(self) -> int:
        return sum(1 for c in self.cuts if c.witness != "skipped")

    @property
    def ok(self) -> bool:
        return (
            self.complete
            and self.base.ok
            and bool(self.cuts)
            and all(c.ok for c in self.cuts)
        )

    def verdict(self) -> str:
        if not self.base.ok:
            return f"BASE NOT SAFE: {self.base.verdict()}"
        if not self.complete:
            return "UNKNOWN (budget exhausted mid-sweep)"
        bad = [
            f"{list(c.side_a)}|{list(c.side_b)}"
            for c in self.cuts if not c.ok
        ]
        if bad:
            return f"PARTITION UNSAFE for cut(s) {bad[:4]}"
        return (
            f"PARTITION CERTIFIED ({self.mode}): {len(self.cuts)} cut(s) x "
            f"{self.base.states_explored} state(s) = {self.triples} "
            f"split points, {self.witnessed} live witness(es), all safe"
        )


def _bipartitions(nranks: int):
    """Every nontrivial two-sided cut, rank 0 always on side A.

    Fixing rank 0's side halves the enumeration without losing a cut
    (sides are unordered): 2**(nranks-1) - 1 cuts.
    """
    for mask in range(1, 2 ** (nranks - 1)):
        side_b = tuple(r for r in range(1, nranks) if mask & (1 << (r - 1)))
        side_a = tuple(r for r in range(nranks) if r not in side_b)
        yield side_a, side_b


def _check_cut_agreement(
    rep: CutReport, nranks: int
) -> None:
    """Obligations 1+2: at most one side commits; heal converges by epoch.

    Steps the same pure functions the live service runs, once from each
    side's vantage point: each side proposes the *other* side as failed
    (that is exactly what its detector accrues during the cut) and runs
    the quorum gate. Split-brain safety is the exclusivity of the commit;
    heal-and-merge safety is both sides reconciling to one view.
    """
    from repro.recovery.membership import quorum_commit, reconcile_views

    view0 = SurvivorView(0, frozenset(), tuple(range(nranks)))
    a, b = rep.side_a, rep.side_b
    commit_a = quorum_commit(view0, b, nranks)  # A writes off B
    commit_b = quorum_commit(view0, a, nranks)  # B writes off A
    if commit_a is not None and commit_b is not None:
        rep.issues.append(
            f"split brain: both sides committed epoch "
            f"{commit_a.epoch}/{commit_b.epoch} for one cut"
        )
    expect_a = 2 * len(a) > nranks
    expect_b = 2 * len(b) > nranks
    if (commit_a is not None) != expect_a or (commit_b is not None) != expect_b:
        rep.issues.append(
            f"quorum gate wrong: |A|={len(a)} commit={commit_a is not None}, "
            f"|B|={len(b)} commit={commit_b is not None}, n={nranks}"
        )
    rep.quorum_ok = not rep.issues
    rep.committer = "a" if commit_a is not None else (
        "b" if commit_b is not None else None
    )
    committed = commit_a if commit_a is not None else commit_b
    if committed is not None:
        # The parked side holds view0; the committed side holds epoch 1.
        # Reconciliation must hand *both* sides the committed view,
        # regardless of argument order (epoch precedence is symmetric).
        merged_1 = reconcile_views(committed, view0)
        merged_2 = reconcile_views(view0, committed)
        rep.reconcile_ok = merged_1 == committed and merged_2 == committed
        if not rep.reconcile_ok:
            rep.issues.append(
                f"heal reconciliation lost the committed epoch: "
                f"{merged_1.describe()} / {merged_2.describe()}"
            )
        # Obligation: the committing side's ring walk (its members only
        # responsive) proposes exactly the other side — agreement-as-
        # detection must not write off any member of the quorum side.
        survivors = a if rep.committer == "a" else b
        lost = b if rep.committer == "a" else a
        walked = ring_walk(
            view0.members,
            merge_suspicions(view0.failed, lost),
            survivors,
        )
        rep.ringwalk_ok = walked == frozenset(lost)
        if not rep.ringwalk_ok:
            rep.issues.append(
                f"ring walk wrote off {sorted(walked)} != cut side "
                f"{sorted(lost)}"
            )
    else:
        # Even split: neither side commits, both keep view0 — reconciling
        # two identical epoch-0 views is trivially that view, and no ring
        # walk ever ran to completion (the quorum gate parked it).
        rep.reconcile_ok = (
            reconcile_views(view0, view0) == view0
        )
        rep.ringwalk_ok = True
        if not rep.reconcile_ok:
            rep.issues.append("even-split reconcile mutated the parked view")


def _check_stale_cut(
    model: ScheduleModel, base: Exploration, lost: tuple[int, ...],
    mode: str, tag_floor: int,
) -> tuple[int, bool, list[str]]:
    """Obligation 3 at every base state, with the whole cut side written off.

    Restart collectives: tag disjointness (identical to the kill sweep —
    the floor does not depend on who died). In-place collectives: every
    in-flight message from *any* written-off rank must carry that rank as
    its wire source, so post-commit arrivals from across a healed cut are
    attributable and droppable.
    """
    if mode == "restart":
        return _check_stale_restart(model, base, tag_floor)
    issues: list[str] = []
    for r in model.recvs:
        if r.peer is None:
            issues.append(f"wildcard recv breaks attributability: {r.label}")
    checked = 0
    lost_set = set(lost)
    from repro.verify.checker import _closure

    for state in base.states:
        checked += 1
        posted, _ = _closure(model, state)
        for op in model.sends:
            if op.rank not in lost_set:
                continue
            if op.oid in posted and op.oid not in state \
                    and op.key[0] != op.rank:
                issues.append(
                    f"in-flight cut-side message not attributable: {op.label}"
                )
        if len(issues) > 8:
            break
    return checked, not issues, issues


def _witness_partition(
    rep: CutReport,
    collective: str,
    nranks: int,
    tree: str,
    nbytes: int,
    segment_size: int,
    root: int,
) -> None:
    """Obligation 4, live: drive a real partitioned run through the stack.

    A heal-after-deadline partition over the full recovery stack
    (``launch_recover`` + membership + adaptive detector): the quorum side
    must commit exactly one epoch naming the cut side, every quorum-side
    rank must complete or be excused, and the healed stragglers must be
    evicted — never re-admitted into the committed epoch. For an even
    split the obligations invert: *no* epoch may commit (the round parks
    awaiting quorum), and after the heal everyone completes clean.
    """
    from repro.analysis.schedules import TREES, recording_world
    from repro.collectives.base import CollectiveContext
    from repro.config import CollectiveConfig
    from repro.faults import FaultInjector
    from repro.faults.plan import FaultPlan, PartitionSpec
    from repro.mpi.communicator import Communicator
    from repro.recovery import launch_recover

    rep.witness = "partition-live"
    world = recording_world(nranks)
    comm = Communicator(world)
    shape = TREES[tree](nranks).reroot_relabelled(root)
    ctx = CollectiveContext(
        comm, root, nbytes, CollectiveConfig(segment_size=segment_size),
        tree=shape,
    )
    # Heal far beyond the detection deadline (phi crossing + confirm is
    # ~20 periods); the post-deadline path must behave as a kill.
    plan = FaultPlan(partitions=(
        PartitionSpec(groups=(rep.side_a, rep.side_b), start=1e-4, heal=0.2),
    ))
    handle = launch_recover(collective, ctx)
    injector = FaultInjector(world, plan)
    horizon = 0.05
    while world.engine.now < 0.3:
        injector.arm(horizon)
        t = world.engine.now + horizon
        world.run(until=t)
        if world.engine.now < t:
            break  # quiesced early
        horizon = min(horizon * 2, 0.2)
    world.run()

    even = 2 * len(rep.side_a) == nranks
    quorum_side = rep.side_a if 2 * len(rep.side_a) > nranks else rep.side_b
    lost_side = rep.side_b if quorum_side == rep.side_a else rep.side_a
    svc = world.membership
    ok = True
    if even:
        if svc is not None and svc.view.epoch != 0:
            ok = False
            rep.issues.append(
                f"even split committed epoch {svc.view.epoch}: "
                f"{svc.view.describe()}"
            )
        missing = [
            r for r in range(nranks)
            if r not in handle.done_time and r not in handle.excused
        ]
        if missing:
            ok = False
            rep.issues.append(
                f"rank(s) {missing} never completed after even-split heal"
            )
    else:
        if svc is None or svc.view.epoch == 0:
            ok = False
            rep.issues.append("quorum side never committed an epoch")
        elif svc.view.failed != frozenset(lost_side):
            ok = False
            rep.issues.append(
                f"committed failed set {sorted(svc.view.failed)} != cut "
                f"side {sorted(lost_side)}"
            )
        elif set(svc.view.members) & set(lost_side):
            ok = False
            rep.issues.append("cut-side rank re-admitted into the epoch")
        missing = [
            r for r in quorum_side
            if r not in handle.done_time and r not in handle.excused
        ]
        if missing:
            ok = False
            rep.issues.append(
                f"quorum-side rank(s) {missing} never completed or excused"
            )
        still_live = [r for r in lost_side if r not in world.failed_ranks]
        if still_live:
            ok = False
            rep.issues.append(
                f"healed straggler(s) {still_live} not evicted "
                f"(kill-path fall-through broken)"
            )
    rep.witness_ok = ok


def partition_sweep(
    schedule: str,
    nranks: int = 6,
    tree: str = "binary",
    nbytes: int = 64 * 1024,
    segment_size: int = 16 * 1024,
    root: int = 0,
    max_states: int = 200_000,
    budget_seconds: Optional[float] = None,
    witness: bool = True,
) -> PartitionSweepResult:
    """Certify split-brain safety of one ADAPT collective under partitions.

    Enumerates every nontrivial bipartition of the ranks (``2**(n-1) - 1``
    cuts) and, per cut, steps the pure membership transition functions from
    both sides' vantage points: **no cut may yield two committed views for
    one epoch** (the quorum gate's exclusivity), heal-time reconciliation
    must converge both sides onto the committed view (epoch precedence),
    the committing side's ring walk must write off exactly the cut side,
    and in-flight cross-cut traffic must be stale-safe at every explored
    base state (tag disjointness / source attributability, as in the kill
    sweep). ``witness=True`` additionally drives a live heal-after-deadline
    run through the full stack for each cut along the root's contiguous
    prefix family (one cut per minority size, plus the even split) and
    checks the committed epoch, survivor completion, and straggler
    eviction on the real timeline.
    """
    t0 = time.monotonic()
    spec = VERIFY_MODELS.get(schedule)
    if spec is None or spec.family != "adapt" or spec.recovery is None:
        raise ValueError(
            f"partition-sweep needs an ADAPT collective with a declared "
            f"recovery mode; {schedule!r} is not one"
        )
    assert spec.collective is not None
    model = build_model(
        schedule, nranks=nranks, tree=tree, nbytes=nbytes,
        segment_size=segment_size, root=root,
    )
    base = explore(
        model, max_states=max_states, budget_seconds=budget_seconds,
        keep_states=True,
    )
    result = PartitionSweepResult(
        schedule=schedule,
        collective=spec.collective,
        mode=spec.recovery,
        nranks=nranks,
        tree=tree,
        root=root,
        base=base,
    )
    if not base.ok:
        result.elapsed = time.monotonic() - t0
        return result
    tag_floor = _base_max_tag(model) + 1
    # The live-witness family: contiguous prefix cuts {0..k} | {k+1..n-1}
    # with the root inside the (weak) majority prefix — one witness per
    # minority size, the even split included. Root-in-minority cuts stay
    # symbolic (a bcast whose quorum side lost the root has no completion
    # to witness; the kill sweep already excludes root victims for the
    # same reason).
    witness_cuts = set()
    if witness:
        for k in range((nranks - 1) // 2, nranks - 1):
            witness_cuts.add(tuple(range(k + 1, nranks)))
    for side_a, side_b in _bipartitions(nranks):
        if budget_seconds is not None \
                and time.monotonic() - t0 > budget_seconds:
            result.complete = False
            break
        rep = CutReport(side_a=side_a, side_b=side_b)
        _check_cut_agreement(rep, nranks)
        lost = ()
        if rep.committer == "a":
            lost = side_b
        elif rep.committer == "b":
            lost = side_a
        if lost:
            rep.states_checked, rep.stale_ok, stale_issues = _check_stale_cut(
                model, base, lost, spec.recovery, tag_floor
            )
            rep.issues.extend(stale_issues)
        else:
            # Even split: nothing is written off, so there is no stale
            # epoch to guard against — count the states as trivially safe.
            rep.states_checked = base.states_explored
            rep.stale_ok = True
        if side_b in witness_cuts and root in side_a:
            _witness_partition(
                rep, spec.collective, nranks, tree, nbytes,
                segment_size, root,
            )
        result.cuts.append(rep)
    result.elapsed = time.monotonic() - t0
    return result


def kill_sweep(
    schedule: str,
    nranks: int = 6,
    tree: str = "binary",
    nbytes: int = 64 * 1024,
    segment_size: int = 16 * 1024,
    root: int = 0,
    max_states: int = 200_000,
    budget_seconds: Optional[float] = None,
    witness: bool = True,
) -> KillSweepResult:
    """Certify the recovery path of one ADAPT collective.

    Explores the fault-free model, then runs obligations 1-4 (module
    docstring) for every non-root victim. ``witness=False`` skips the
    (comparatively slow) completion-witness recordings — obligations 1-3
    still run at every state.
    """
    t0 = time.monotonic()
    spec = VERIFY_MODELS.get(schedule)
    if spec is None or spec.family != "adapt" or spec.recovery is None:
        raise ValueError(
            f"kill-sweep needs an ADAPT collective with a declared recovery "
            f"mode; {schedule!r} is not one"
        )
    assert spec.collective is not None
    model = build_model(
        schedule, nranks=nranks, tree=tree, nbytes=nbytes,
        segment_size=segment_size, root=root,
    )
    base = explore(
        model, max_states=max_states, budget_seconds=budget_seconds,
        keep_states=True,
    )
    result = KillSweepResult(
        schedule=schedule,
        collective=spec.collective,
        mode=spec.recovery,
        nranks=nranks,
        tree=tree,
        root=root,
        base=base,
    )
    if not base.ok:
        result.elapsed = time.monotonic() - t0
        return result
    tag_floor = _base_max_tag(model) + 1
    for victim in range(nranks):
        if victim == root:
            continue
        if budget_seconds is not None and time.monotonic() - t0 > budget_seconds:
            result.complete = False
            break
        rep = VictimReport(victim=victim)
        rep.membership_ok, mem_issues = _check_membership(victim, nranks)
        rep.issues.extend(mem_issues)

        from repro.analysis.schedules import TREES

        shape = TREES[tree](nranks).reroot_relabelled(root)
        rg = regraft_tree(shape, {victim})
        try:
            rg.check({victim})
            rep.regraft_ok = not rg.lost
            if rg.lost:
                rep.issues.append(
                    f"re-graft strands live rank(s) {sorted(rg.lost)}"
                )
            rep.adoptions = dict(rg.adoptions)
        except AssertionError as exc:
            rep.regraft_ok = False
            rep.issues.append(f"re-graft check failed: {exc}")

        if spec.recovery == "restart":
            rep.states_checked, rep.stale_ok, stale_issues = (
                _check_stale_restart(model, base, tag_floor)
            )
        else:
            rep.states_checked, rep.stale_ok, stale_issues = (
                _check_stale_inplace(model, base, victim)
            )
        rep.issues.extend(stale_issues)

        if witness:
            if spec.recovery == "restart":
                _witness_restart(
                    rep, schedule, spec.collective, nranks, tree, nbytes,
                    segment_size, root, tag_floor, max_states,
                )
            else:
                _witness_inplace(
                    rep, schedule, spec.collective, nranks, tree, nbytes,
                    segment_size, root,
                )
        else:
            rep.witness_ok = True
        result.victims.append(rep)
    result.elapsed = time.monotonic() - t0
    return result
